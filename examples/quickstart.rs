//! Quickstart: create a table, load it, run energy-metered queries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use haecdb::prelude::*;

fn main() -> DbResult<()> {
    // A database over the default 2013 commodity-server power model.
    let db = Database::new();
    println!(
        "machine: {} cores, idle floor {:.0} W, peak {:.0} W",
        db.machine().cores(),
        db.machine().idle_floor().watts(),
        db.machine().peak_power().watts()
    );

    // Classical, strict-schema table.
    db.create_table(
        "orders",
        &[("id", DataType::Int64), ("region", DataType::Int64), ("amount", DataType::Int64)],
    )?;
    for i in 0..200_000i64 {
        db.insert(
            "orders",
            &Record::new().with("id", i).with("region", i % 8).with("amount", (i * 37) % 1000),
        )?;
    }

    // A filtered group-by, fully metered.
    let result = db.execute(
        &Query::scan("orders")
            .filter("amount", CmpOp::Ge, 500)
            .group_by("region")
            .aggregate(AggKind::Sum, "amount"),
    )?;
    println!("\nrevenue >= 500 by region:");
    for i in 0..result.rows.rows() {
        let row = result.rows.row(i).expect("in range");
        println!("  region {} -> {}", row[0], row[1]);
    }
    println!(
        "\nquery cost: modeled {:.3} ms / {:.3} mJ (wall {:.3} ms)",
        result.modeled_time.as_secs_f64() * 1e3,
        result.energy.joules() * 1e3,
        result.wall_time.as_secs_f64() * 1e3
    );

    // Point queries: create an index and watch the optimizer switch.
    db.create_index("orders", "id", IndexMaintenance::Eager)?;
    let point = db.execute(&Query::scan("orders").filter("id", CmpOp::Eq, 4242))?;
    println!(
        "\npoint lookup used {:?}, returned {} row(s), {:.1} µJ",
        point.access_path,
        point.rows.rows(),
        point.energy.joules() * 1e6
    );

    // The database-wide meter accumulates everything, RAPL-style.
    let meter = db.meter();
    println!("\ncumulative energy by domain:");
    for domain in haec_energy::meter::Domain::ALL {
        println!(
            "  {:8} {:>12.6} J (RAPL reg: {:#x})",
            domain.to_string(),
            meter.total(domain).joules(),
            meter.rapl_read(domain)
        );
    }
    Ok(())
}
