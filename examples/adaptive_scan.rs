//! A reconfigurable operator in action: the adaptive selection kernel
//! re-decides as data characteristics drift (§IV.B, Ross TODS'04).
//!
//! ```text
//! cargo run --release --example adaptive_scan
//! ```

use haec_columnar::value::CmpOp;
use haec_exec::select::AdaptiveSelect;

/// Generates one 64k batch whose selectivity under `v < 0` is `sel`.
fn batch(sel: f64, salt: u64) -> Vec<i64> {
    let n = 65_536usize;
    (0..n)
        .map(|i| {
            let h = (i as u64 ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
            if (h as f64) < sel * ((1u64 << 24) as f64) {
                -1
            } else {
                1
            }
        })
        .collect()
}

fn main() {
    let mut op = AdaptiveSelect::new(CmpOp::Lt, 0);
    println!("phase        batch  observed-sel  kernel-in-use   switches");

    // Three workload phases: almost-nothing matches, half matches,
    // almost-everything matches.
    let phases = [("sparse", 0.002), ("mixed", 0.5), ("dense", 0.995)];
    let mut batch_no = 0;
    for (name, sel) in phases {
        for _ in 0..6 {
            batch_no += 1;
            let data = batch(sel, batch_no);
            let before = op.current_kernel();
            let (hits, stats) = op.run(&data);
            let observed = hits.len() as f64 / data.len() as f64;
            println!(
                "{:<12} {:>5} {:>12.4}  {:<15} {:>7}{}",
                name,
                batch_no,
                observed,
                format!("{before}"),
                op.switches(),
                if op.current_kernel() != before {
                    format!("  -> switching to {}", op.current_kernel())
                } else {
                    String::new()
                }
            );
            let _ = stats;
        }
    }
    println!(
        "\n{} batches, {} reconfigurations, final kernel: {}",
        op.batches(),
        op.switches(),
        op.current_kernel()
    );
    println!("the operator tracked the selectivity drift without any external tuning.");
}
