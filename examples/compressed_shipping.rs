//! "Compressed or uncompressed?" — the paper's worked optimizer example,
//! across the whole link zoo including HAEC-style reconfigurable links.
//!
//! ```text
//! cargo run --release --example compressed_shipping
//! ```

use haec_energy::units::ByteCount;
use haec_net::prelude::*;

fn main() {
    let payload = ByteCount::from_mib(512);
    let codec = CompressorSpec::lightweight(4.0);

    println!("shipping {payload} of intermediates (lightweight codec, 4x):\n");
    println!("  {:<12} {:>14} {:>14} {:>10} {:>10}", "link", "raw", "compressed", "min-time", "min-energy");
    for (name, class) in [
        ("intra-board", LinkClass::IntraBoard),
        ("optical", LinkClass::Optical),
        ("10GbE", LinkClass::Ethernet10G),
        ("wireless", LinkClass::Wireless),
        ("1GbE", LinkClass::Ethernet1G),
    ] {
        let spec = LinkSpec::default_for(class);
        let t = decide(payload, &codec, &spec, Objective::MinTime);
        let e = decide(payload, &codec, &spec, Objective::MinEnergy);
        println!(
            "  {:<12} {:>10.1} ms {:>10.1} ms {:>10} {:>10}",
            name,
            t.raw.time.as_secs_f64() * 1e3,
            t.compressed.time.as_secs_f64() * 1e3,
            if t.compress { "compress" } else { "raw" },
            if e.compress { "compress" } else { "raw" },
        );
    }
    if let Some(bw) = time_crossover_bandwidth(&codec) {
        println!("\ntime-crossover at ~{:.2} GB/s: slower links compress, faster ship raw.", bw / 1e9);
    }

    // Topology reconfiguration: enabling the optical express link
    // changes the optimal decision at runtime (HAEC, §III).
    let mut topo = Topology::new(2);
    topo.connect(NodeId(0), NodeId(1), LinkClass::Ethernet1G);
    let slow = *topo.best_spec(NodeId(0), NodeId(1)).expect("link up");
    let before = decide(payload, &codec, &slow, Objective::MinTime);
    topo.connect(NodeId(0), NodeId(1), LinkClass::Optical); // bring up express link
    let fast = *topo.best_spec(NodeId(0), NodeId(1)).expect("link up");
    let after = decide(payload, &codec, &fast, Objective::MinTime);
    println!(
        "\nHAEC reconfiguration: over 1GbE the optimizer {}; after enabling the optical link it {}.",
        if before.compress { "compresses" } else { "ships raw" },
        if after.compress { "compresses" } else { "ships raw" },
    );
    println!(
        "link idle power rose {:.1} W -> {:.1} W: the express link must earn its keep.",
        LinkSpec::default_for(LinkClass::Ethernet1G).idle_w,
        topo.idle_power().watts()
    );
}
