//! Database conversations (§IV.A): application-private branches of the
//! database, merged back under explicit policies.
//!
//! ```text
//! cargo run --release --example conversations
//! ```

use haec_txn::conversation::{Conversation, MergePolicy};
use haec_txn::mvcc::{CcScheme, TxnManager};

fn main() {
    let db = TxnManager::new(CcScheme::SnapshotIsolation);

    // Seed: product stock levels.
    let mut seed = db.begin();
    for (sku, stock) in [(1, 100), (2, 40), (3, 7)] {
        seed.write(sku, stock);
    }
    db.commit(seed).expect("seed commits");
    println!("main database: sku1=100 sku2=40 sku3=7");

    // A planning session forks its own view and experiments freely.
    let mut planning = Conversation::fork(&db, "q3-planning");
    planning.put(1, 250); // what if we restock heavily?
    planning.put(3, 0); // and discontinue sku3?
    let planning_view = planning.get(&db, 1);
    println!("\n[{}] sees sku1={:?} (main still {:?})", planning.name(), planning_view, db.read_latest(1));

    // Meanwhile production keeps moving: sku2 sells out.
    let mut sale = db.begin();
    sale.write(2, 0);
    db.commit(sale).expect("sale commits");

    // A second conversation touches sku2 — it will conflict.
    let mut risky = Conversation::fork(&db, "risky-promo");
    risky.put(2, 99);
    // (fork happened after the sale, so no conflict for risky... let us
    // make one: another production write to sku2.)
    let mut restock = db.begin();
    restock.write(2, 10);
    db.commit(restock).expect("restock commits");

    // Merge outcomes under the three policies.
    let report = planning.merge(&db, MergePolicy::Abort).expect("no conflicts on sku1/sku3");
    println!("\n[q3-planning] merged cleanly: {} keys applied at {:?}", report.applied, report.commit_ts);

    match risky.merge(&db, MergePolicy::Abort) {
        Err(e) => println!("[risky-promo] abort policy refused: {e}"),
        Ok(_) => unreachable!("sku2 changed under the conversation"),
    }

    // Retry the same idea, but let the database win conflicts.
    let mut retry = Conversation::fork(&db, "promo-retry");
    retry.put(2, 99);
    retry.put(1, 300);
    let mut prod = db.begin();
    prod.write(2, 11);
    db.commit(prod).expect("prod commits");
    let report = retry.merge(&db, MergePolicy::Theirs).expect("theirs never conflicts");
    println!(
        "[promo-retry] merged with policy=theirs: {} applied, {} dropped (sku2 kept production value {:?})",
        report.applied,
        report.dropped,
        db.read_latest(2)
    );

    println!(
        "\nfinal state: sku1={:?} sku2={:?} sku3={:?} — conversations freed the engine from a single point of truth.",
        db.read_latest(1),
        db.read_latest(2),
        db.read_latest(3)
    );
}
