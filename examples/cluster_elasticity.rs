//! Elasticity in the large (§II): a day of diurnal load on a simulated
//! cluster, static vs elastic provisioning.
//!
//! ```text
//! cargo run --release --example cluster_elasticity
//! ```

use haec_energy::machine::MachineSpec;
use haec_sched::elastic::{diurnal_trace, run_cluster_sim, Provisioning};
use std::time::Duration;

fn main() {
    let machine = MachineSpec::commodity_2013();
    let trace = diurnal_trace(96, 800.0); // 24h in 15-min steps, peak 800 q/s
    let step = Duration::from_secs(900);
    let per_node = 100.0;

    println!("simulated day: peak 800 q/s, trough ~160 q/s, nodes serve {per_node} q/s\n");
    println!(
        "{:<22} {:>12} {:>12} {:>10} {:>18}",
        "policy", "energy kWh", "violations", "avg nodes", "trough/peak energy"
    );
    let mut baseline = 0.0;
    for policy in [
        Provisioning::Static(8),
        Provisioning::Static(5),
        Provisioning::Elastic { target_utilization: 0.85, min_nodes: 1, max_nodes: 8, boot_steps: 1 },
    ] {
        let out = run_cluster_sim(&machine, policy, &trace, per_node, step);
        let kwh = out.energy.watt_hours() / 1000.0;
        if matches!(policy, Provisioning::Static(8)) {
            baseline = kwh;
        }
        println!(
            "{:<22} {:>12.2} {:>12} {:>10.1} {:>18.2}",
            format!("{policy}"),
            kwh,
            out.sla_violations,
            out.avg_nodes,
            out.trough_peak_energy_ratio
        );
    }

    let elastic = run_cluster_sim(
        &machine,
        Provisioning::Elastic { target_utilization: 0.85, min_nodes: 1, max_nodes: 8, boot_steps: 1 },
        &trace,
        per_node,
        step,
    );
    println!(
        "\nnode count over the day (one char per step): {}",
        elastic
            .nodes_per_step
            .iter()
            .map(|&n| char::from_digit(n as u32, 10).unwrap_or('+'))
            .collect::<String>()
    );
    println!(
        "\nelastic saves {:.0}% of the peak-static energy bill with zero SLA violations.",
        (1.0 - (elastic.energy.watt_hours() / 1000.0) / baseline) * 100.0
    );
}
