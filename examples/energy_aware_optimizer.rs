//! The Fig. 2 story end to end: candidate plans on the (time, energy)
//! plane, constrained choice, and the server-level consequence of a
//! power cap.
//!
//! ```text
//! cargo run --release --example energy_aware_optimizer
//! ```

use haec_energy::machine::MachineSpec;
use haec_energy::units::{Joules, Watts};
use haec_planner::cost::CostModel;
use haec_planner::optimizer::{choose, pareto_frontier, Goal};
use haec_sched::governor::GovernorPolicy;
use haec_sched::server::{run_server_sim, ServerSimConfig};
use std::time::Duration;

fn main() {
    // --- plan-level: alternatives for one analytical query -------------
    let model = CostModel::new(MachineSpec::commodity_2013());
    let rows = 50_000_000u64;
    let candidates = vec![
        ("full scan", model.scan(rows, 8, 0.02)),
        ("index lookup", model.index_lookup(1_000_000, 8)),
        ("scan + agg", model.scan(rows, 8, 0.02) + model.aggregate(1_000_000, 64)),
        ("hash join path", model.hash_join(1_000_000, rows, 2_000_000)),
    ];
    let costs: Vec<_> = candidates.iter().map(|(_, c)| *c).collect();

    println!("candidate plans (time / energy):");
    for (name, c) in &candidates {
        println!("  {name:16} {c}");
    }
    let frontier = pareto_frontier(&costs);
    println!("\npareto-optimal: {:?}", frontier.iter().map(|&i| candidates[i].0).collect::<Vec<_>>());

    for goal in [
        Goal::MinTime,
        Goal::MinEnergy,
        Goal::MinTimeUnderEnergyBudget(Joules::new(1.0)),
        Goal::MinEnergyUnderDeadline(Duration::from_millis(50)),
    ] {
        match choose(&costs, goal) {
            Ok(i) => println!("  {goal} -> {}", candidates[i].0),
            Err(e) => println!("  {goal} -> {e}"),
        }
    }

    // --- system-level: the same trade-off as a power cap ----------------
    println!("\nenergy-cap sweep on the query server (Fig. 2):");
    println!("  {:>10} {:>12} {:>10} {:>10}", "cap", "throughput", "p95", "J/query");
    let mut cfg = ServerSimConfig::default_mix();
    cfg.arrival_rate = 120.0;
    cfg.mean_work_cycles = 2.0e8;
    cfg.horizon = Duration::from_secs(30);
    let peak = cfg.machine.peak_power().watts();
    for frac in [1.0, 0.6, 0.4, 0.3] {
        cfg.governor = GovernorPolicy::EnergyCap(Watts::new(peak * frac));
        let out = run_server_sim(&cfg);
        println!(
            "  {:>8.0} W {:>10.1}/s {:>8.1}ms {:>9.2}J",
            peak * frac,
            out.throughput,
            out.response.quantile_duration(0.95).unwrap_or_default().as_secs_f64() * 1e3,
            out.energy_per_query.joules()
        );
    }
    println!("\ntighter budget -> same work at lower power but longer tails: the paper's Fig. 2.");
}
