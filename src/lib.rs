//! Reproduction suite umbrella: re-exports every crate of the `haecdb`
//! workspace so integration tests and examples have one import root.
//!
//! See `README.md` for the project overview, `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the paper-vs-measured record.

pub use haec_columnar as columnar;
pub use haec_energy as energy;
pub use haec_exec as exec;
pub use haec_net as net;
pub use haec_planner as planner;
pub use haec_sched as sched;
pub use haec_sim as sim;
pub use haec_storage as storage;
pub use haec_txn as txn;
pub use haecdb as db;
