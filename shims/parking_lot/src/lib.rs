//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Wraps the std synchronization primitives behind `parking_lot`'s
//! non-poisoning API: `lock()` / `read()` / `write()` return guards
//! directly, and a poisoned std lock is transparently recovered (the
//! `parking_lot` semantics — locks are never poisoned).
//!
//! Under `--cfg haec_loom` the wrapped primitives come from the `loom`
//! model-checking shim instead of std, which makes every crate locking
//! through this shim (notably `haecdb`'s `Table`) model-checkable by
//! `loom::model` with **zero changes to the protocol code** — the
//! cfg switch happens here, below the API.

#![forbid(unsafe_code)]
#[cfg(haec_loom)]
use loom::sync as sys;
#[cfg(not(haec_loom))]
use std::sync as sys;

use std::sync::PoisonError;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sys::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sys::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sys::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sys::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sys::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sys::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sys::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
