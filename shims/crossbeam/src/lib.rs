//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::scope` in terms of `std::thread::scope`
//! (available since Rust 1.63). The closure passed to [`Scope::spawn`]
//! receives a placeholder `()` argument where crossbeam passes a nested
//! `&Scope` — every caller in this workspace ignores it (`|_| ...`).

#![forbid(unsafe_code)]
/// Scoped-thread handle mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result or the
    /// payload of its panic.
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread scoped to the enclosing [`scope`] call. The
    /// closure's ignored argument stands in for crossbeam's `&Scope`.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle { inner: self.inner.spawn(move || f(())) }
    }
}

/// Runs `f` with a scope in which borrowing-from-the-stack threads can
/// be spawned; all spawned threads are joined before this returns.
///
/// Always returns `Ok` — with `std::thread::scope`, a panic in an
/// unjoined child propagates to the caller instead of surfacing here.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_stack() {
        let data = vec![1u64, 2, 3, 4];
        let data = &data;
        let total: u64 = super::scope(|scope| {
            let handles: Vec<_> =
                (0..2).map(|i| scope.spawn(move |_| data[i * 2] + data[i * 2 + 1])).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
