//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate provides
//! the subset of the `rand 0.8` API the workspace uses: [`StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen`] / [`Rng::gen_range`]
//! over the integer and float range types that appear in the code.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 of the real `StdRng`, but statistically strong enough for
//! the workload-generation and distribution tests in this repository.

#![forbid(unsafe_code)]
pub mod rngs {
    /// A deterministic pseudo-random generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

pub use rngs::StdRng;

/// Sources of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng { s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)] }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly distributed value in `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
