//! Minimal offline stand-in for the `criterion` crate.
//!
//! Implements enough of the criterion API for the workspace's
//! `benches/kernels.rs`: [`criterion_group!`] / [`criterion_main!`],
//! benchmark groups with throughput annotations, and a timing loop that
//! prints mean wall-clock per iteration (no statistics, plots or
//! baselines). Runs are short by design so `cargo bench` stays usable
//! in CI.

#![forbid(unsafe_code)]
use std::time::{Duration, Instant};

/// Top-level benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement_time: Duration::from_millis(500) }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup { criterion: self, name, throughput: None }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let budget = self.measurement_time;
        run_one(name, None, budget, f);
    }
}

/// Units processed per iteration, used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (rows, tuples) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{param}") }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId { id: param.to_string() }
    }
}

/// A named collection of benchmarks sharing throughput/size settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the units-per-iteration used in the report.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Accepted for API compatibility; this shim sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) {}

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) {
        self.criterion.measurement_time = d;
    }

    /// Benchmarks `f`, passing it `input` each iteration.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        let budget = self.criterion.measurement_time;
        run_one(&label, self.throughput, budget, |b| f(b, input));
    }

    /// Benchmarks a zero-input closure.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        let budget = self.criterion.measurement_time;
        run_one(&label, self.throughput, budget, f);
    }

    /// Ends the group (separator line only in this shim).
    pub fn finish(self) {
        println!();
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive so the optimizer
    /// cannot delete the measured work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(label: &str, throughput: Option<Throughput>, budget: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: grow the iteration count until one batch is long enough
    // to time reliably, then spend the measurement budget.
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
            break b.elapsed / iters.max(1) as u32;
        }
        iters *= 4;
    };
    let target = (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
    let mut b = Bencher { iters: target, elapsed: Duration::ZERO };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / b.iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!(" ({:.1} Melem/s)", n as f64 / mean / 1e6),
        Some(Throughput::Bytes(n)) => format!(" ({:.1} MiB/s)", n as f64 / mean / (1 << 20) as f64),
        None => String::new(),
    };
    println!("  {label}: {:.3} us/iter{rate}", mean * 1e6);
}

/// Declares a function that runs each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a benchmark binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { measurement_time: Duration::from_millis(5) };
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::from_parameter("sum"), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        c.bench_function("free", |b| b.iter(|| 2 + 2));
    }
}
