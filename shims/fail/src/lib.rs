//! Offline stand-in for the crates.io `fail` failpoint crate.
//!
//! A **failpoint** is a named hook compiled into production code at a
//! spot where something could go wrong — a publish swap, an allocation,
//! a worker picking up a job. Tests arm a failpoint by name with an
//! *action string* (`fail::cfg("merge::publish", "panic")`) and then
//! drive the real code path; the hook fires the action exactly where
//! the fault would occur, letting the suite prove the surrounding
//! recovery logic (unwind safety, lock hygiene, meter monotonicity)
//! against injected faults it could never trigger organically.
//!
//! ## cfg gating
//!
//! The entire runtime is gated behind `--cfg haec_fail` (set via
//! `RUSTFLAGS`, mirroring the workspace's `haec_loom` convention).
//! Without the cfg, [`fail_point!`] expands to **nothing** — not an
//! empty function call, literally no tokens — so instrumented hot paths
//! carry zero overhead in normal builds. The registry functions
//! ([`cfg()`], [`remove`], [`teardown`], [`list`], [`seed`]) always exist
//! so harness code typechecks under both cfgs, but degrade to no-ops.
//!
//! ## Action strings
//!
//! An action string is a `->`-chained sequence of terms, each
//! `[P%][N*]action[(arg)]`, evaluated left to right on every hit:
//!
//! * `off` — do nothing (still consumes a count if `N*` given).
//! * `panic` / `panic(msg)` — panic at the failpoint.
//! * `return` / `return(msg)` — make the enclosing function return an
//!   error; only valid at sites instrumented with the two-argument
//!   [`fail_point!`] form.
//! * `sleep(ms)` — sleep the calling thread for `ms` milliseconds.
//! * `yield` — yield the calling thread once.
//! * `N*action` — a countdown trigger: the term fires `N` times, then
//!   evaluation advances to the next term. `2*off->1*panic` runs two
//!   hits clean and panics on the third — deterministic replay of
//!   "fail on the k-th merge".
//! * `P%action` — fire with probability `P`% per hit, drawn from a
//!   seeded linear-congruential generator ([`seed`] or the
//!   `HAEC_FAIL_SEED` env var) so probabilistic runs replay exactly.
//!
//! A term without a count persists forever once reached; when every
//! term is exhausted the failpoint is inert.
//!
//! ## Example
//!
//! ```
//! fail::seed(42);
//! fail::cfg("demo::hook", "1*off->panic").unwrap();
//! // First hit: no-op. Second and later hits: panic (under
//! // `--cfg haec_fail`; without it the macro vanishes entirely).
//! fn hook() {
//!     fail::fail_point!("demo::hook");
//! }
//! hook();
//! fail::teardown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(haec_fail)]
mod imp {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    /// What a term does when it fires.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum Task {
        /// Do nothing.
        Off,
        /// Panic with an optional message.
        Panic(Option<String>),
        /// Ask the enclosing function to early-return an error.
        Return(Option<String>),
        /// Sleep for the given number of milliseconds.
        Sleep(u64),
        /// Yield the thread once.
        Yield,
    }

    /// One `[P%][N*]action` term of an action string.
    #[derive(Debug, Clone)]
    struct Term {
        /// Fire probability in percent (100 = always).
        freq: u32,
        /// Remaining fires; `None` = unlimited.
        count: Option<usize>,
        task: Task,
    }

    fn registry() -> &'static Mutex<HashMap<String, Vec<Term>>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Vec<Term>>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn rng_state() -> &'static AtomicU64 {
        static STATE: OnceLock<AtomicU64> = OnceLock::new();
        STATE.get_or_init(|| {
            let seed = std::env::var("HAEC_FAIL_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0x5DEECE66D);
            AtomicU64::new(seed)
        })
    }

    /// Reseed the deterministic generator behind `P%` terms.
    pub fn seed(s: u64) {
        rng_state().store(s, Ordering::SeqCst);
    }

    /// One LCG step; returns a value in `0..100`.
    fn roll() -> u32 {
        let state = rng_state();
        let mut cur = state.load(Ordering::SeqCst);
        loop {
            let next = cur.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            match state.compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return ((next >> 33) % 100) as u32,
                Err(seen) => cur = seen,
            }
        }
    }

    fn parse_term(term: &str) -> Result<Term, String> {
        let term = term.trim();
        let mut rest = term;
        let mut freq = 100u32;
        if let Some((p, tail)) = rest.split_once('%') {
            freq =
                p.trim().parse::<u32>().map_err(|_| format!("bad probability in failpoint term {term:?}"))?;
            if freq > 100 {
                return Err(format!("probability > 100% in failpoint term {term:?}"));
            }
            rest = tail;
        }
        let mut count = None;
        if let Some((n, tail)) = rest.split_once('*') {
            count =
                Some(n.trim().parse::<usize>().map_err(|_| format!("bad count in failpoint term {term:?}"))?);
            rest = tail;
        }
        let rest = rest.trim();
        let (name, arg) = match rest.split_once('(') {
            Some((name, tail)) => {
                let arg = tail
                    .strip_suffix(')')
                    .ok_or_else(|| format!("unclosed argument in failpoint term {term:?}"))?;
                (name.trim(), Some(arg.to_string()))
            }
            None => (rest, None),
        };
        let task = match (name, arg) {
            ("off", None) => Task::Off,
            ("panic", arg) => Task::Panic(arg),
            ("return", arg) => Task::Return(arg),
            ("sleep", Some(ms)) => {
                Task::Sleep(ms.trim().parse::<u64>().map_err(|_| format!("bad sleep millis in {term:?}"))?)
            }
            ("yield", None) => Task::Yield,
            _ => return Err(format!("unknown failpoint action {term:?}")),
        };
        Ok(Term { freq, count, task })
    }

    /// Arm failpoint `name` with `actions`; replaces any prior config.
    pub fn cfg(name: &str, actions: &str) -> Result<(), String> {
        let terms = actions.split("->").map(parse_term).collect::<Result<Vec<_>, String>>()?;
        registry().lock().unwrap().insert(name.to_string(), terms);
        Ok(())
    }

    /// Disarm failpoint `name` (no-op if not armed).
    pub fn remove(name: &str) {
        registry().lock().unwrap().remove(name);
    }

    /// Disarm every failpoint.
    pub fn teardown() {
        registry().lock().unwrap().clear();
    }

    /// The armed failpoints and how many terms each still carries.
    pub fn list() -> Vec<(String, usize)> {
        let mut out: Vec<(String, usize)> =
            registry().lock().unwrap().iter().map(|(k, v)| (k.clone(), v.len())).collect();
        out.sort();
        out
    }

    /// Pick the task to run for one hit of `name`, honoring counts and
    /// probabilities. Counts are consumed under the registry lock;
    /// blocking tasks (sleep) run *after* the lock is released.
    fn next_task(name: &str) -> Option<Task> {
        let mut reg = registry().lock().unwrap();
        let terms = reg.get_mut(name)?;
        for term in terms.iter_mut() {
            if term.count == Some(0) {
                continue; // exhausted: fall through to the next term
            }
            if term.freq < 100 && roll() >= term.freq {
                continue; // roll failed: try the next term this hit
            }
            if let Some(n) = term.count.as_mut() {
                *n -= 1;
            }
            return Some(term.task.clone());
        }
        None
    }

    /// Run one hit of failpoint `name`. Returns `Some(msg)` when a
    /// `return` action fired (the macro early-returns with it).
    pub fn eval(name: &str) -> Option<Option<String>> {
        match next_task(name)? {
            Task::Off => None,
            Task::Panic(msg) => {
                let msg = msg.unwrap_or_else(|| format!("failpoint {name} panic"));
                panic!("{msg}");
            }
            Task::Return(msg) => Some(msg),
            Task::Sleep(ms) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                None
            }
            Task::Yield => {
                std::thread::yield_now();
                None
            }
        }
    }
}

#[cfg(haec_fail)]
pub use imp::{cfg, eval, list, remove, seed, teardown};

// Without `--cfg haec_fail` the registry degrades to no-ops so harness
// code typechecks under both cfgs; `fail_point!` expands to nothing.
#[cfg(not(haec_fail))]
mod noop {
    /// Arm a failpoint (no-op without `--cfg haec_fail`).
    pub fn cfg(_name: &str, _actions: &str) -> Result<(), String> {
        Ok(())
    }

    /// Disarm a failpoint (no-op without `--cfg haec_fail`).
    pub fn remove(_name: &str) {}

    /// Disarm every failpoint (no-op without `--cfg haec_fail`).
    pub fn teardown() {}

    /// Armed failpoints (always empty without `--cfg haec_fail`).
    pub fn list() -> Vec<(String, usize)> {
        Vec::new()
    }

    /// Reseed (no-op without `--cfg haec_fail`).
    pub fn seed(_s: u64) {}
}

#[cfg(not(haec_fail))]
pub use noop::{cfg, list, remove, seed, teardown};

/// Mark a failpoint in production code.
///
/// One-argument form: the point can `panic`, `sleep`, or `yield` but
/// not `return` (arming `return` here panics, flagging the misuse).
/// Two-argument form `fail_point!("name", |msg| expr)`: a `return`
/// action makes the enclosing function return `expr`, with `msg` the
/// optional `return(msg)` payload.
///
/// Without `--cfg haec_fail` both forms expand to no tokens.
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {{
        #[cfg(haec_fail)]
        if let Some(_msg) = $crate::eval($name) {
            panic!("failpoint {} cannot `return` here (no error path)", $name);
        }
    }};
    ($name:expr, $ret:expr) => {{
        #[cfg(haec_fail)]
        if let Some(msg) = $crate::eval($name) {
            let msg: Option<String> = msg;
            #[allow(clippy::redundant_closure_call)]
            return ($ret)(msg);
        }
    }};
}

#[cfg(all(test, haec_fail))]
mod tests {
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The registry is process-global, so tests that assert on its full
    /// contents must not interleave.
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn countdown_chain_replays() {
        let _serial = serial();
        super::teardown();
        super::cfg("t::count", "2*off->1*return(x)->off").unwrap();
        assert_eq!(super::eval("t::count"), None);
        assert_eq!(super::eval("t::count"), None);
        assert_eq!(super::eval("t::count"), Some(Some("x".into())));
        assert_eq!(super::eval("t::count"), None); // trailing `off` persists
        assert_eq!(super::eval("t::count"), None);
        super::teardown();
    }

    #[test]
    fn unarmed_is_inert() {
        assert_eq!(super::eval("t::nothing"), None);
    }

    #[test]
    fn seeded_probability_replays() {
        let _serial = serial();
        super::teardown();
        super::cfg("t::prob", "50%return").unwrap();
        super::seed(7);
        let a: Vec<bool> = (0..32).map(|_| super::eval("t::prob").is_some()).collect();
        super::seed(7);
        let b: Vec<bool> = (0..32).map(|_| super::eval("t::prob").is_some()).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x), "50% should mix: {a:?}");
        super::teardown();
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(super::cfg("t::bad", "explode").is_err());
        assert!(super::cfg("t::bad", "12x*panic").is_err());
        assert!(super::cfg("t::bad", "sleep(abc)").is_err());
        assert!(super::cfg("t::bad", "150%panic").is_err());
        assert!(super::list().iter().all(|(name, _)| name != "t::bad"));
    }

    #[test]
    fn remove_and_list() {
        let _serial = serial();
        super::teardown();
        super::cfg("t::a", "off").unwrap();
        super::cfg("t::b", "panic->off").unwrap();
        assert_eq!(super::list(), vec![("t::a".into(), 1), ("t::b".into(), 2)]);
        super::remove("t::a");
        assert_eq!(super::list(), vec![("t::b".into(), 2)]);
        super::teardown();
        assert!(super::list().is_empty());
    }
}
