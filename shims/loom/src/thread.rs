//! Model-checked stand-ins for `std::thread` spawning.
//!
//! Inside [`crate::model`], [`spawn`] (and [`Builder::spawn`]) creates a
//! real OS thread that registers with the execution's scheduler and then
//! parks until the baton is handed to it — so the closure only ever runs
//! when the explorer schedules it. [`JoinHandle::join`] is a blocking
//! scheduler operation like a lock acquire. Outside a model execution
//! everything delegates to plain `std::thread`.

use crate::rt::{self, Mode};
use std::sync::{Arc, PoisonError};

enum Imp<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        sched: Arc<rt::Scheduler>,
        tid: usize,
        /// Filled by the child just before it finishes (normal return).
        slot: Arc<std::sync::Mutex<Option<T>>>,
        /// The real OS thread hosting the model thread.
        os: Option<std::thread::JoinHandle<()>>,
    },
}

/// Handle to a spawned thread, mirroring `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    imp: Imp<T>,
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle").finish_non_exhaustive()
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. Inside a
    /// model this parks the calling thread on the target's completion,
    /// which is a scheduling point like any other blocking acquire.
    pub fn join(self) -> std::thread::Result<T> {
        match self.imp {
            Imp::Std(h) => h.join(),
            Imp::Model { sched, tid, slot, mut os } => {
                match rt::mode() {
                    Mode::Model(_, me) => {
                        while !sched.is_finished(tid) {
                            sched.block(me, rt::join_resource(tid));
                        }
                    }
                    // Teardown of an aborted execution (or a join from
                    // outside the model, which only happens during such
                    // teardown): make sure nothing stays parked, then
                    // wait for the real thread in real time.
                    Mode::Force(s) => s.abort_no_payload(),
                    Mode::Passthrough => sched.abort_no_payload(),
                }
                if let Some(os) = os.take() {
                    let _ = os.join();
                }
                let value = slot.lock().unwrap_or_else(PoisonError::into_inner).take();
                match value {
                    Some(v) => Ok(v),
                    // The child unwound. In a healthy model execution the
                    // abort wakes us with a sentinel inside `block`, so
                    // reaching here means we are tearing down; report a
                    // generic panic like std would.
                    None => Err(Box::new("model thread panicked")),
                }
            }
        }
    }
}

/// Builder mirroring `std::thread::Builder` (the subset this workspace
/// uses: `new`, `name`, `spawn`).
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// Creates a builder with no name set.
    pub fn new() -> Builder {
        Builder { name: None }
    }

    /// Names the thread (threads are real OS threads even under the
    /// model, so the name shows up in debuggers either way).
    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    /// Spawns the closure; inside a model it becomes a scheduler-managed
    /// model thread, and the spawn itself is a scheduling point.
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let mut builder = std::thread::Builder::new();
        if let Some(name) = self.name {
            builder = builder.name(name);
        }
        match rt::mode() {
            Mode::Passthrough | Mode::Force(_) => Ok(JoinHandle { imp: Imp::Std(builder.spawn(f)?) }),
            Mode::Model(sched, me) => {
                let tid = sched.register_thread();
                let slot = Arc::new(std::sync::Mutex::new(None));
                let child_slot = Arc::clone(&slot);
                let child_sched = Arc::clone(&sched);
                let os = builder.spawn(move || {
                    rt::set_context(Some((Arc::clone(&child_sched), tid)));
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        child_sched.wait_initial(tid);
                        f()
                    }));
                    match result {
                        Ok(v) => {
                            *child_slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
                        }
                        Err(payload) => {
                            if payload.downcast_ref::<rt::AbortExecution>().is_none() {
                                child_sched.record_panic(payload);
                            }
                        }
                    }
                    child_sched.finish(tid);
                })?;
                // Let the explorer choose whether the child or the
                // spawner runs next.
                sched.yield_point(me);
                Ok(JoinHandle { imp: Imp::Model { sched, tid, slot, os: Some(os) } })
            }
        }
    }
}

/// Spawns a thread, mirroring `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}

/// Cooperative yield: a pure scheduling point inside a model, a real
/// `std::thread::yield_now` outside.
pub fn yield_now() {
    match rt::mode() {
        Mode::Model(sched, me) => sched.yield_point(me),
        Mode::Passthrough | Mode::Force(_) => std::thread::yield_now(),
    }
}
