//! # loom (shim)
//!
//! A vendored, dependency-free, loom-style **deterministic concurrency
//! model checker**. Like the other `shims/` crates this stands in for a
//! crates.io dependency (the real [`loom`](https://crates.io/crates/loom))
//! in an offline build, implementing the subset the `haecdb` workspace
//! needs:
//!
//! * [`model`] runs a closure repeatedly, exploring distinct thread
//!   interleavings of every [`sync`] / [`thread`] operation inside it —
//!   bounded-exhaustive DFS first, randomized sampling past the branch
//!   budget (see [`Builder`]).
//! * [`sync`] mirrors `std::sync`: `Mutex`, `RwLock`, `Condvar`,
//!   `atomic::{AtomicBool, AtomicUsize, AtomicU32, AtomicU64}`, `Arc`.
//! * [`thread`] mirrors `std::thread`: `spawn`, `Builder`, `JoinHandle`,
//!   `yield_now`.
//!
//! Production code is ported onto these types behind `--cfg haec_loom`
//! (see the workspace README §10): under the cfg, `exec`/`core`/`txn`
//! protocols run on shim primitives, and the `loom_*` integration tests
//! drive them through [`model`]. Without the cfg — and for any use of
//! these types *outside* a [`model`] call — every primitive transparently
//! degrades to its plain std behavior, so one binary serves both worlds.
//!
//! The checker explores interleavings at **sequential consistency**; it
//! does not simulate weak-memory reorderings the way the real loom's
//! C11 model does. See the `rt` module docs for the scheduler design,
//! exploration strategy, and panic/deadlock handling.
//!
//! ## Example
//!
//! ```
//! use loom::sync::atomic::{AtomicUsize, Ordering};
//! use loom::sync::Arc;
//!
//! let report = loom::model(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = loom::thread::spawn(move || {
//!         n2.fetch_add(1, Ordering::SeqCst);
//!     });
//!     n.fetch_add(1, Ordering::SeqCst);
//!     t.join().unwrap();
//!     assert_eq!(n.load(Ordering::SeqCst), 2);
//! });
//! assert!(report.interleavings >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod rt;
pub mod sync;
pub mod thread;

/// What a [`model`] run explored. Returned on success (every explored
/// interleaving passed); tests assert on it to prove the model actually
/// branched.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Number of distinct interleavings (unique choice traces) explored.
    pub interleavings: usize,
    /// Total executions of the closure (≥ `interleavings`; sampling can
    /// rediscover a trace it has already seen).
    pub executions: usize,
    /// `true` when the whole choice tree fit in the branch budget — the
    /// exploration was exhaustive, not sampled.
    pub exhaustive: bool,
    /// Deepest schedule (number of choice points) seen.
    pub max_depth: usize,
}

/// Configuration for a [`model`] run. `Default`/[`Builder::from_env`]
/// read `LOOM_MAX_BRANCHES`, `LOOM_SAMPLES` and `LOOM_SEED`, so CI can
/// deepen exploration (the nightly job raises `LOOM_MAX_BRANCHES`)
/// without code changes.
#[derive(Debug, Clone, Copy)]
pub struct Builder {
    /// DFS execution budget before falling back to sampling.
    pub max_branches: usize,
    /// Number of randomized schedules to sample past the budget.
    pub samples: usize,
    /// Seed for the sampling RNG (deterministic; no OS entropy).
    pub seed: u64,
}

impl Default for Builder {
    fn default() -> Self {
        Builder::from_env()
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

impl Builder {
    /// Defaults (`max_branches` 2000, `samples` 64, `seed` 1) overridden
    /// by the `LOOM_MAX_BRANCHES` / `LOOM_SAMPLES` / `LOOM_SEED`
    /// environment variables.
    pub fn from_env() -> Builder {
        Builder {
            max_branches: env_usize("LOOM_MAX_BRANCHES", 2000),
            samples: env_usize("LOOM_SAMPLES", 64),
            seed: env_usize("LOOM_SEED", 1) as u64,
        }
    }

    /// Runs `f` under every schedule the exploration strategy produces.
    ///
    /// Returns a [`Report`] if every interleaving passes. If any
    /// interleaving panics (a failed assertion — the model found a bug)
    /// the counterexample schedule is printed to stderr and the original
    /// panic payload is re-raised; a deadlock (every live thread
    /// blocked) panics with a diagnostic listing the thread states.
    ///
    /// # Panics
    ///
    /// Re-raises model failures as described above; also panics on
    /// nested use (calling [`model`] from inside a model closure).
    pub fn check<F: Fn()>(self, f: F) -> Report {
        assert!(rt::context().is_none(), "loom::model is not reentrant: already inside a model execution");
        let mut explorer = rt::Explorer::new(self.max_branches, self.samples, self.seed);
        loop {
            let (prefix, rng) = explorer.next_schedule();
            let outcome = rt::run_once(&f, prefix, rng);
            if let Some(fault) = outcome.fault {
                eprintln!("loom: counterexample schedule: {:?}", outcome.trace);
                panic!("loom: {fault}");
            }
            if let Some(payload) = outcome.panic {
                eprintln!("loom: counterexample schedule: {:?}", outcome.trace);
                std::panic::resume_unwind(payload);
            }
            if !explorer.record(outcome.trace) {
                break;
            }
        }
        Report {
            interleavings: explorer.distinct_interleavings(),
            executions: explorer.executions(),
            exhaustive: explorer.exhaustive(),
            max_depth: explorer.max_depth(),
        }
    }
}

/// Model-checks `f` with [`Builder::from_env`] settings: runs it under
/// systematically explored thread interleavings and panics on the first
/// failing one. See [`Builder::check`].
pub fn model<F: Fn()>(f: F) -> Report {
    Builder::from_env().check(f)
}
