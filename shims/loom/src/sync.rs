//! Model-checked stand-ins for `std::sync` primitives.
//!
//! Each type mirrors the std API (including `LockResult` signatures, so
//! code ports with an import swap) but routes every *acquisition* —
//! lock, read, write, atomic access, condvar wait/notify — through the
//! scheduler in the `rt` module: inside [`crate::model`] each such op is a
//! scheduling opportunity the explorer branches on, and blocking parks
//! the model thread so the scheduler can detect deadlocks. Outside a
//! model execution every type degrades to plain std behavior
//! (passthrough), so code built against these primitives still runs
//! normally.
//!
//! Releases (guard drops, `notify` bookkeeping) are deliberately **not**
//! scheduling points and can never panic: destructors run during panic
//! unwinding, where a second panic would abort the process.
//!
//! Bookkeeping (who holds which lock) lives in plain std atomics: the
//! baton scheduler runs exactly one model thread between yield points,
//! so these fields are never raced during a healthy execution. The
//! underlying data itself sits in real std locks acquired with a
//! `try_lock` spin — a belt-and-braces guarantee that even the teardown
//! of an aborted execution (where several threads unwind concurrently)
//! stays memory-safe.

use crate::rt::{self, Mode};
use std::sync::atomic::Ordering as StdOrdering;
use std::sync::{LockResult, PoisonError, TryLockError};

pub use std::sync::Arc;

/// Spin-acquire a std mutex that the model bookkeeping says is ours.
/// During normal modeled execution the first `try_lock` succeeds; the
/// loop only spins while tearing down an aborted execution, where the
/// holder is a concurrently-unwinding thread about to release.
fn spin_lock<T: ?Sized>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    loop {
        match m.try_lock() {
            Ok(g) => return g,
            Err(TryLockError::Poisoned(p)) => return p.into_inner(),
            Err(TryLockError::WouldBlock) => std::thread::yield_now(),
        }
    }
}

fn spin_read<T: ?Sized>(l: &std::sync::RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    loop {
        match l.try_read() {
            Ok(g) => return g,
            Err(TryLockError::Poisoned(p)) => return p.into_inner(),
            Err(TryLockError::WouldBlock) => std::thread::yield_now(),
        }
    }
}

fn spin_write<T: ?Sized>(l: &std::sync::RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    loop {
        match l.try_write() {
            Ok(g) => return g,
            Err(TryLockError::Poisoned(p)) => return p.into_inner(),
            Err(TryLockError::WouldBlock) => std::thread::yield_now(),
        }
    }
}

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/// A model-checked mutual-exclusion lock with the `std::sync::Mutex`
/// API.
pub struct Mutex<T: ?Sized> {
    rid: u64,
    /// Model-level ownership flag; see the module docs.
    held: std::sync::atomic::AtomicBool,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            rid: rt::next_resource_id(),
            held: std::sync::atomic::AtomicBool::new(false),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock; inside a model this is a scheduling point and
    /// may park the thread.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match rt::mode() {
            Mode::Passthrough => {
                let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard { lock: self, inner: Some(inner), modeled: None })
            }
            Mode::Force(_) => {
                Ok(MutexGuard { lock: self, inner: Some(spin_lock(&self.inner)), modeled: None })
            }
            Mode::Model(sched, me) => {
                sched.yield_point(me);
                while self.held.swap(true, StdOrdering::SeqCst) {
                    sched.block(me, self.rid);
                }
                Ok(MutexGuard { lock: self, inner: Some(spin_lock(&self.inner)), modeled: Some(sched) })
            }
        }
    }

    /// Attempts the lock without blocking (still a scheduling point
    /// inside a model).
    pub fn try_lock(&self) -> Result<MutexGuard<'_, T>, TryLockError<MutexGuard<'_, T>>> {
        match rt::mode() {
            Mode::Passthrough | Mode::Force(_) => match self.inner.try_lock() {
                Ok(g) => Ok(MutexGuard { lock: self, inner: Some(g), modeled: None }),
                Err(TryLockError::Poisoned(p)) => {
                    Ok(MutexGuard { lock: self, inner: Some(p.into_inner()), modeled: None })
                }
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            },
            Mode::Model(sched, me) => {
                sched.yield_point(me);
                if self.held.swap(true, StdOrdering::SeqCst) {
                    return Err(TryLockError::WouldBlock);
                }
                Ok(MutexGuard { lock: self, inner: Some(spin_lock(&self.inner)), modeled: Some(sched) })
            }
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard returned by [`Mutex::lock`]; releases (and wakes model-level
/// waiters) on drop, which is never a scheduling point.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    /// `Some` when the acquisition went through model bookkeeping and
    /// the drop must release it.
    modeled: Option<std::sync::Arc<rt::Scheduler>>,
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before the model-level flag so no other
        // thread can observe "free" while the std mutex is still held.
        self.inner = None;
        if let Some(sched) = self.modeled.take() {
            self.lock.held.store(false, StdOrdering::SeqCst);
            sched.unblock(self.lock.rid);
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

// ---------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------

/// A model-checked condition variable with the `std::sync::Condvar`
/// API surface this workspace uses (`wait`, `notify_one`, `notify_all`).
///
/// `notify_one` conservatively wakes **every** current waiter: spurious
/// wakeups are allowed by the std contract (callers re-check their
/// predicate in a loop), and waking all explores strictly more
/// interleavings than waking one.
pub struct Condvar {
    rid: u64,
    std: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Condvar {
        Condvar { rid: rt::next_resource_id(), std: std::sync::Condvar::new() }
    }

    /// Atomically releases `guard`'s lock and parks until notified, then
    /// re-acquires the lock. Wakeups may be spurious.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match rt::mode() {
            Mode::Passthrough => {
                let lock = guard.lock;
                let std_guard = guard.inner.take().expect("guard accessed after release");
                guard.modeled = None; // nothing to release on drop
                drop(guard);
                let inner = self.std.wait(std_guard).unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard { lock, inner: Some(inner), modeled: None })
            }
            Mode::Force(_) => Ok(guard), // teardown: return as a spurious wakeup
            Mode::Model(sched, me) => {
                let lock = guard.lock;
                // Atomic release-and-park: between these steps only this
                // thread runs (no yield point), so a notify cannot slip
                // into the gap — the usual lost-wakeup guarantee.
                guard.inner = None;
                guard.modeled = None;
                lock.held.store(false, StdOrdering::SeqCst);
                sched.unblock(lock.rid);
                drop(guard);
                sched.block(me, self.rid);
                // Re-acquire the lock like a fresh `lock()` call.
                while lock.held.swap(true, StdOrdering::SeqCst) {
                    sched.block(me, lock.rid);
                }
                Ok(MutexGuard { lock, inner: Some(spin_lock(&lock.inner)), modeled: Some(sched) })
            }
        }
    }

    /// Wakes one waiter (modeled as wake-all; see the type docs).
    pub fn notify_one(&self) {
        self.notify_all();
    }

    /// Wakes every current waiter.
    pub fn notify_all(&self) {
        match rt::mode() {
            Mode::Passthrough => self.std.notify_all(),
            Mode::Force(sched) => sched.unblock(self.rid),
            Mode::Model(sched, me) => {
                sched.yield_point(me);
                sched.unblock(self.rid);
            }
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------

/// A model-checked reader-writer lock with the `std::sync::RwLock` API.
pub struct RwLock<T: ?Sized> {
    rid: u64,
    readers: std::sync::atomic::AtomicUsize,
    writer: std::sync::atomic::AtomicBool,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            rid: rt::next_resource_id(),
            readers: std::sync::atomic::AtomicUsize::new(0),
            writer: std::sync::atomic::AtomicBool::new(false),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard; a scheduling point inside a model.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        match rt::mode() {
            Mode::Passthrough => {
                let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
                Ok(RwLockReadGuard { lock: self, inner: Some(inner), modeled: None })
            }
            Mode::Force(_) => {
                Ok(RwLockReadGuard { lock: self, inner: Some(spin_read(&self.inner)), modeled: None })
            }
            Mode::Model(sched, me) => {
                sched.yield_point(me);
                while self.writer.load(StdOrdering::SeqCst) {
                    sched.block(me, self.rid);
                }
                self.readers.fetch_add(1, StdOrdering::SeqCst);
                Ok(RwLockReadGuard { lock: self, inner: Some(spin_read(&self.inner)), modeled: Some(sched) })
            }
        }
    }

    /// Acquires an exclusive write guard; a scheduling point inside a
    /// model.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        match rt::mode() {
            Mode::Passthrough => {
                let inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
                Ok(RwLockWriteGuard { lock: self, inner: Some(inner), modeled: None })
            }
            Mode::Force(_) => {
                Ok(RwLockWriteGuard { lock: self, inner: Some(spin_write(&self.inner)), modeled: None })
            }
            Mode::Model(sched, me) => {
                sched.yield_point(me);
                while self.writer.load(StdOrdering::SeqCst) || self.readers.load(StdOrdering::SeqCst) > 0 {
                    sched.block(me, self.rid);
                }
                self.writer.store(true, StdOrdering::SeqCst);
                Ok(RwLockWriteGuard {
                    lock: self,
                    inner: Some(spin_write(&self.inner)),
                    modeled: Some(sched),
                })
            }
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    modeled: Option<std::sync::Arc<rt::Scheduler>>,
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some(sched) = self.modeled.take() {
            self.lock.readers.fetch_sub(1, StdOrdering::SeqCst);
            sched.unblock(self.lock.rid);
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    modeled: Option<std::sync::Arc<rt::Scheduler>>,
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some(sched) = self.modeled.take() {
            self.lock.writer.store(false, StdOrdering::SeqCst);
            sched.unblock(self.lock.rid);
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

// ---------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------

/// Model-checked atomic integers and booleans.
///
/// Every access is a scheduling point inside a model; the actual
/// operation always runs at `SeqCst` regardless of the ordering asked
/// for, so the checker explores interleavings at sequential consistency
/// (weak-memory reorderings are out of scope — see the `rt` module).
pub mod atomic {
    use crate::rt;
    use std::sync::atomic::Ordering as StdOrdering;

    pub use std::sync::atomic::Ordering;

    macro_rules! int_atomic {
        ($name:ident, $std:ident, $ty:ty) => {
            /// Model-checked counterpart of the std atomic of the same
            /// name; every access is a scheduling point inside a model.
            #[derive(Debug, Default)]
            pub struct $name {
                v: std::sync::atomic::$std,
            }

            impl $name {
                /// Creates the atomic with an initial value.
                pub fn new(v: $ty) -> $name {
                    $name { v: std::sync::atomic::$std::new(v) }
                }

                /// Loads the value.
                pub fn load(&self, _order: Ordering) -> $ty {
                    rt::yield_point();
                    self.v.load(StdOrdering::SeqCst)
                }

                /// Stores a value.
                pub fn store(&self, val: $ty, _order: Ordering) {
                    rt::yield_point();
                    self.v.store(val, StdOrdering::SeqCst)
                }

                /// Replaces the value, returning the previous one.
                pub fn swap(&self, val: $ty, _order: Ordering) -> $ty {
                    rt::yield_point();
                    self.v.swap(val, StdOrdering::SeqCst)
                }

                /// Adds to the value, returning the previous one.
                pub fn fetch_add(&self, val: $ty, _order: Ordering) -> $ty {
                    rt::yield_point();
                    self.v.fetch_add(val, StdOrdering::SeqCst)
                }

                /// Subtracts from the value, returning the previous one.
                pub fn fetch_sub(&self, val: $ty, _order: Ordering) -> $ty {
                    rt::yield_point();
                    self.v.fetch_sub(val, StdOrdering::SeqCst)
                }

                /// Stores the maximum of the value and `val`, returning
                /// the previous value.
                pub fn fetch_max(&self, val: $ty, _order: Ordering) -> $ty {
                    rt::yield_point();
                    self.v.fetch_max(val, StdOrdering::SeqCst)
                }

                /// Compare-and-exchange with the std signature.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$ty, $ty> {
                    rt::yield_point();
                    self.v.compare_exchange(current, new, StdOrdering::SeqCst, StdOrdering::SeqCst)
                }

                /// Consumes the atomic, returning the value.
                pub fn into_inner(self) -> $ty {
                    self.v.into_inner()
                }
            }
        };
    }

    int_atomic!(AtomicUsize, AtomicUsize, usize);
    int_atomic!(AtomicU64, AtomicU64, u64);
    int_atomic!(AtomicU32, AtomicU32, u32);

    /// Model-checked counterpart of `std::sync::atomic::AtomicBool`.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        v: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates the atomic with an initial value.
        pub fn new(v: bool) -> AtomicBool {
            AtomicBool { v: std::sync::atomic::AtomicBool::new(v) }
        }

        /// Loads the value.
        pub fn load(&self, _order: Ordering) -> bool {
            rt::yield_point();
            self.v.load(StdOrdering::SeqCst)
        }

        /// Stores a value.
        pub fn store(&self, val: bool, _order: Ordering) {
            rt::yield_point();
            self.v.store(val, StdOrdering::SeqCst)
        }

        /// Replaces the value, returning the previous one.
        pub fn swap(&self, val: bool, _order: Ordering) -> bool {
            rt::yield_point();
            self.v.swap(val, StdOrdering::SeqCst)
        }

        /// Consumes the atomic, returning the value.
        pub fn into_inner(self) -> bool {
            self.v.into_inner()
        }
    }
}
