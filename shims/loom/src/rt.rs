//! The model-checking runtime: a baton-passing deterministic scheduler
//! plus a schedule explorer.
//!
//! # How an execution runs
//!
//! Every model thread (the closure passed to [`crate::model`] plus
//! everything it spawns through [`crate::thread::spawn`]) runs on a real
//! OS thread, but **only one of them executes at a time**: a thread may
//! only make progress while it holds the *baton* (`Inner::active`).
//! Before every visible operation — a lock acquire, an atomic access, a
//! spawn — the running thread calls back into the scheduler, which picks
//! the next thread to run from the currently runnable set. Each such
//! pick with more than one candidate is a **choice point**; the sequence
//! of picks is the *schedule*, and exploring schedules is exploring
//! interleavings.
//!
//! Because execution is serialized, the primitives in [`crate::sync`]
//! can keep their bookkeeping in plain (std) atomics: between two yield
//! points exactly one model thread touches them. The trade-off is that
//! the checker explores interleavings at *sequential consistency* — it
//! does not model weak-memory reorderings the way the real `loom` crate
//! does. For the lock/condvar/CAS protocols this workspace verifies,
//! sequentially consistent interleaving coverage is the property that
//! matters.
//!
//! # How schedules are explored
//!
//! [`Explorer`] drives an iterative depth-first search over the choice
//! tree: each execution replays a recorded prefix of choices and extends
//! it with first-candidate picks; after the execution the deepest choice
//! with untried alternatives is advanced and everything after it is
//! discarded. When the tree is larger than the branch budget
//! (`LOOM_MAX_BRANCHES`), the search falls back to randomized sampling
//! (`LOOM_SAMPLES` schedules from a seeded LCG), so big protocols still
//! get broad — if no longer exhaustive — coverage.
//!
//! # Panics, deadlocks, and aborts
//!
//! A panic in any model thread (a failed assertion — the model found a
//! bug) aborts the whole execution: the payload is recorded, every
//! parked thread is woken with a sentinel [`AbortExecution`] panic so it
//! can unwind and release its OS resources, and [`crate::model`]
//! re-raises the original payload after printing the counterexample
//! schedule. A state where every unfinished thread is blocked is
//! reported the same way, as a deadlock.

use std::any::Any;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Sentinel panic payload used to unwind parked threads of an aborted
/// execution. Never escapes [`crate::model`].
pub(crate) struct AbortExecution;

type Payload = Box<dyn Any + Send + 'static>;

/// What a model thread is currently able to do.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    /// Schedulable (may or may not hold the baton right now).
    Runnable,
    /// Parked until the resource with this id is released/notified.
    Blocked(u64),
    /// Returned (or unwound); never scheduled again.
    Finished,
}

/// Identifies something a thread can block on. Sync objects draw fresh
/// ids from [`next_resource_id`]; "thread `t` finished" join resources
/// use the high-bit namespace so the two can never collide.
pub(crate) fn join_resource(tid: usize) -> u64 {
    (1 << 63) | tid as u64
}

static RESOURCE_IDS: AtomicU64 = AtomicU64::new(1);

/// A fresh id for a sync object (never 0, never in the join namespace).
pub(crate) fn next_resource_id() -> u64 {
    RESOURCE_IDS.fetch_add(1, Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Per-execution scheduler
// ---------------------------------------------------------------------

struct Inner {
    threads: Vec<TState>,
    /// Which thread holds the baton.
    active: usize,
    /// Replay prefix for this execution (choices taken, by choice index).
    prefix: Vec<usize>,
    /// Choices actually taken this execution: `(taken, options)`.
    trace: Vec<(usize, usize)>,
    /// Position in the choice sequence.
    cursor: usize,
    /// Random tie-breaking (sampling mode) instead of first-candidate.
    rng: Option<Lcg>,
    aborted: bool,
    /// First user panic payload of the execution (the counterexample).
    panic: Option<Payload>,
    /// Human-readable reason when the abort was scheduler-detected
    /// (deadlock) rather than a user panic.
    fault: Option<String>,
}

/// The per-execution deterministic scheduler. One exists per run of the
/// model closure; model threads reach it through [`crate::context`].
pub(crate) struct Scheduler {
    inner: Mutex<Inner>,
    cv: Condvar,
}

fn lock(m: &Mutex<Inner>) -> MutexGuard<'_, Inner> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Scheduler {
    fn new(prefix: Vec<usize>, rng: Option<Lcg>) -> Arc<Scheduler> {
        Arc::new(Scheduler {
            inner: Mutex::new(Inner {
                threads: vec![TState::Runnable],
                active: 0,
                prefix,
                trace: Vec::new(),
                cursor: 0,
                rng,
                aborted: false,
                panic: None,
                fault: None,
            }),
            cv: Condvar::new(),
        })
    }

    /// Registers a new model thread (spawn side); it starts runnable but
    /// does not get the baton until the spawner yields it.
    pub(crate) fn register_thread(&self) -> usize {
        let mut g = lock(&self.inner);
        g.threads.push(TState::Runnable);
        g.threads.len() - 1
    }

    /// Picks the next thread to run from the runnable set and hands it
    /// the baton. Must be called with the state lock held by the current
    /// baton holder (or during abort, where the pick is moot).
    fn pick_next(&self, g: &mut MutexGuard<'_, Inner>, me: usize) {
        let runnable: Vec<usize> =
            (0..g.threads.len()).filter(|&t| g.threads[t] == TState::Runnable).collect();
        if runnable.is_empty() {
            if g.threads.iter().all(|&t| t == TState::Finished) {
                // Execution complete; nothing left to schedule.
                self.cv.notify_all();
                return;
            }
            // Every unfinished thread is blocked: a real deadlock.
            let states: Vec<String> =
                g.threads.iter().enumerate().map(|(i, t)| format!("t{i}:{t:?}")).collect();
            g.fault = Some(format!("deadlock detected: all live threads blocked [{}]", states.join(" ")));
            g.aborted = true;
            self.cv.notify_all();
            // The caller (blocked or finishing) observes `aborted` and
            // unwinds; if it was `me` finishing, nothing to do.
            let _ = me;
            return;
        }
        let options = runnable.len();
        let choice = if options == 1 {
            0
        } else {
            let cursor = g.cursor;
            let c = if cursor < g.prefix.len() {
                g.prefix[cursor].min(options - 1)
            } else if let Some(rng) = g.rng.as_mut() {
                (rng.next() as usize) % options
            } else {
                0
            };
            g.trace.push((c, options));
            g.cursor += 1;
            c
        };
        g.active = runnable[choice];
        self.cv.notify_all();
    }

    /// A visible operation by the running thread: offer the baton to a
    /// (possibly different) runnable thread, then wait to run again.
    pub(crate) fn yield_point(&self, me: usize) {
        let mut g = lock(&self.inner);
        if g.aborted {
            drop(g);
            std::panic::panic_any(AbortExecution);
        }
        debug_assert_eq!(g.active, me, "yield from a thread not holding the baton");
        self.pick_next(&mut g, me);
        self.wait_for_baton(g, me);
    }

    /// Parks the current thread on `resource` and schedules another.
    pub(crate) fn block(&self, me: usize, resource: u64) {
        let mut g = lock(&self.inner);
        if g.aborted {
            drop(g);
            std::panic::panic_any(AbortExecution);
        }
        g.threads[me] = TState::Blocked(resource);
        self.pick_next(&mut g, me);
        self.wait_for_baton(g, me);
    }

    /// Marks every thread parked on `resource` runnable again (they
    /// still wait for the baton). Never a yield point and never panics:
    /// safe to call from guard destructors during unwinding.
    pub(crate) fn unblock(&self, resource: u64) {
        let mut g = lock(&self.inner);
        for t in g.threads.iter_mut() {
            if *t == TState::Blocked(resource) {
                *t = TState::Runnable;
            }
        }
    }

    /// Called by a model thread when its closure has returned or
    /// unwound: releases joiners, hands the baton on, never blocks.
    pub(crate) fn finish(&self, me: usize) {
        let mut g = lock(&self.inner);
        g.threads[me] = TState::Finished;
        for t in g.threads.iter_mut() {
            if *t == TState::Blocked(join_resource(me)) {
                *t = TState::Runnable;
            }
        }
        if !g.aborted {
            self.pick_next(&mut g, me);
        } else {
            self.cv.notify_all();
        }
    }

    /// Whether thread `tid` has finished (join fast path).
    pub(crate) fn is_finished(&self, tid: usize) -> bool {
        lock(&self.inner).threads[tid] == TState::Finished
    }

    /// Records the first user panic of the execution and aborts it,
    /// waking every parked thread so it can unwind.
    pub(crate) fn record_panic(&self, payload: Payload) {
        let mut g = lock(&self.inner);
        if g.panic.is_none() {
            g.panic = Some(payload);
        }
        g.aborted = true;
        for t in g.threads.iter_mut() {
            if matches!(*t, TState::Blocked(_)) {
                *t = TState::Runnable;
            }
        }
        self.cv.notify_all();
    }

    /// True once the execution has been aborted (panic or deadlock).
    pub(crate) fn aborted(&self) -> bool {
        lock(&self.inner).aborted
    }

    /// Aborts the execution without supplying a payload (the payload, if
    /// any, arrives later via [`Scheduler::record_panic`] when the
    /// unwinding thread's wrapper catches it). Used when a panicking
    /// thread is about to wait for something only a parked thread can
    /// provide: parked threads must be woken to unwind, or the teardown
    /// would wait forever. Idempotent and never panics.
    pub(crate) fn abort_no_payload(&self) {
        let mut g = lock(&self.inner);
        g.aborted = true;
        for t in g.threads.iter_mut() {
            if matches!(*t, TState::Blocked(_)) {
                *t = TState::Runnable;
            }
        }
        self.cv.notify_all();
    }

    /// First wait of a freshly spawned model thread: it is registered as
    /// runnable but must not execute until the scheduler hands it the
    /// baton for the first time.
    pub(crate) fn wait_initial(&self, me: usize) {
        let g = lock(&self.inner);
        self.wait_for_baton(g, me);
    }

    fn wait_for_baton(&self, mut g: MutexGuard<'_, Inner>, me: usize) {
        while !(g.aborted || (g.active == me && g.threads[me] == TState::Runnable)) {
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
        if g.aborted {
            drop(g);
            std::panic::panic_any(AbortExecution);
        }
    }

    /// Main-thread epilogue: wait until every model thread has finished.
    /// Unlike [`Scheduler::wait_for_baton`] this tolerates the aborted
    /// state — the main thread must survive to run the next execution.
    fn wait_all_finished(&self) {
        let mut g = lock(&self.inner);
        while !g.threads.iter().all(|&t| t == TState::Finished) {
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

// ---------------------------------------------------------------------
// Thread-local execution context
// ---------------------------------------------------------------------

thread_local! {
    static CONTEXT: std::cell::RefCell<Option<(Arc<Scheduler>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The scheduler + thread id of the current model thread, if this OS
/// thread is part of a running execution. `None` means the shim
/// primitives operate in passthrough (plain std) mode.
pub(crate) fn context() -> Option<(Arc<Scheduler>, usize)> {
    CONTEXT.with(|c| c.borrow().clone())
}

pub(crate) fn set_context(ctx: Option<(Arc<Scheduler>, usize)>) {
    CONTEXT.with(|c| *c.borrow_mut() = ctx);
}

/// How a primitive operation should behave right now.
pub(crate) enum Mode {
    /// Not inside a model execution: plain std behavior.
    Passthrough,
    /// Inside a model execution but the thread is unwinding a panic:
    /// never schedule, never panic (a panic here would be a
    /// double-panic process abort), force every acquisition through.
    Force(Arc<Scheduler>),
    /// Normal modeled operation under the baton scheduler.
    Model(Arc<Scheduler>, usize),
}

/// Classifies the current thread for a primitive op, killing threads of
/// aborted executions (sentinel panic) on the way.
pub(crate) fn mode() -> Mode {
    match context() {
        None => Mode::Passthrough,
        Some((sched, me)) => {
            if std::thread::panicking() {
                // A model thread unwinding may need resources held by
                // parked siblings; make sure they wake up and unwind too.
                sched.abort_no_payload();
                Mode::Force(sched)
            } else if sched.aborted() {
                std::panic::panic_any(AbortExecution);
            } else {
                Mode::Model(sched, me)
            }
        }
    }
}

/// Yield point helper used by every modeled primitive: a scheduling
/// opportunity before the op in [`Mode::Model`], a no-op otherwise.
pub(crate) fn yield_point() {
    if let Mode::Model(sched, me) = mode() {
        sched.yield_point(me);
    }
}

// ---------------------------------------------------------------------
// Schedule explorer
// ---------------------------------------------------------------------

/// A recorded choice: which candidate was taken, out of how many.
#[derive(Clone, Copy)]
struct Choice {
    taken: usize,
    options: usize,
}

/// Deterministic splitmix-style generator for the sampling fallback —
/// the shim must stay reproducible, so no OS entropy is ever read.
pub(crate) struct Lcg(u64);

impl Lcg {
    pub(crate) fn new(seed: u64) -> Lcg {
        Lcg(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Iterative DFS over schedules with a branch budget and a randomized
/// sampling fallback; see the module docs.
pub(crate) struct Explorer {
    stack: Vec<Choice>,
    max_branches: usize,
    samples: usize,
    seed: u64,
    executions: usize,
    sampling: bool,
    done: bool,
    distinct: HashSet<Vec<(usize, usize)>>,
    max_depth: usize,
}

impl Explorer {
    pub(crate) fn new(max_branches: usize, samples: usize, seed: u64) -> Explorer {
        Explorer {
            stack: Vec::new(),
            max_branches: max_branches.max(1),
            samples,
            seed,
            executions: 0,
            sampling: false,
            done: false,
            distinct: HashSet::new(),
            max_depth: 0,
        }
    }

    pub(crate) fn executions(&self) -> usize {
        self.executions
    }

    pub(crate) fn distinct_interleavings(&self) -> usize {
        self.distinct.len()
    }

    pub(crate) fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// `true` while still in the exhaustive DFS phase (no sampling yet).
    pub(crate) fn exhaustive(&self) -> bool {
        !self.sampling
    }

    /// The schedule for the next execution: a replay prefix plus,
    /// in sampling mode, a seeded RNG for everything beyond it.
    pub(crate) fn next_schedule(&mut self) -> (Vec<usize>, Option<Lcg>) {
        if self.sampling {
            // Each sample gets its own deterministic stream.
            (Vec::new(), Some(Lcg::new(self.seed.wrapping_add(self.executions as u64))))
        } else {
            (self.stack.iter().map(|c| c.taken).collect(), None)
        }
    }

    /// Digests a finished execution's trace; returns `false` when
    /// exploration is over.
    pub(crate) fn record(&mut self, trace: Vec<(usize, usize)>) -> bool {
        self.executions += 1;
        self.max_depth = self.max_depth.max(trace.len());
        self.distinct.insert(trace.clone());
        if self.sampling {
            if self.executions >= self.max_branches + self.samples {
                self.done = true;
            }
            return !self.done;
        }
        // DFS: advance the deepest choice with untried alternatives.
        self.stack = trace.iter().map(|&(taken, options)| Choice { taken, options }).collect();
        while let Some(last) = self.stack.last_mut() {
            if last.taken + 1 < last.options {
                last.taken += 1;
                break;
            }
            self.stack.pop();
        }
        if self.stack.is_empty() {
            // Tree exhausted within budget: fully explored.
            self.done = true;
            return false;
        }
        if self.executions >= self.max_branches {
            // Budget exceeded: fall back to randomized sampling unless
            // the caller asked for none.
            self.sampling = true;
            if self.samples == 0 {
                self.done = true;
                return false;
            }
        }
        true
    }
}

// ---------------------------------------------------------------------
// Execution driver (used by crate::model)
// ---------------------------------------------------------------------

/// Outcome of one execution of the model closure.
pub(crate) struct ExecOutcome {
    pub(crate) trace: Vec<(usize, usize)>,
    pub(crate) panic: Option<Payload>,
    pub(crate) fault: Option<String>,
}

/// Runs the model closure once under a fresh scheduler following
/// `prefix` (+ `rng` beyond it) and reports what happened.
pub(crate) fn run_once<F: Fn()>(f: &F, prefix: Vec<usize>, rng: Option<Lcg>) -> ExecOutcome {
    let sched = Scheduler::new(prefix, rng);
    set_context(Some((Arc::clone(&sched), 0)));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    // The main thread retires: hand the baton to whoever is left, then
    // wait for every spawned thread to finish (threads are joined by
    // their JoinHandle wrappers or unwound by the abort sentinel).
    match result {
        Ok(()) => sched.finish(0),
        Err(payload) => {
            if payload.downcast_ref::<AbortExecution>().is_none() {
                sched.record_panic(payload);
            }
            sched.finish(0);
        }
    }
    sched.wait_all_finished();
    set_context(None);
    let mut g = lock(&sched.inner);
    ExecOutcome { trace: std::mem::take(&mut g.trace), panic: g.panic.take(), fault: g.fault.take() }
}
