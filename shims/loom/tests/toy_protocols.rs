//! Calibration suite for the model checker itself: protocols with
//! *known* races must fail within the exploration budget, correct ones
//! must pass while reporting real interleaving coverage. If the checker
//! ever stops being able to catch these, the `loom_*` suites in
//! `exec`/`core`/`txn` prove nothing.

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};

/// Runs `f` under the model expecting at least one interleaving to fail;
/// returns the panic message.
fn model_must_fail<F: Fn() + Send + 'static>(f: F) -> String {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loom::model(f)));
    let payload = result.expect_err("model checker missed a seeded concurrency bug");
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("<non-string panic payload>")
    }
}

/// A correct protocol passes and the explorer visits several distinct
/// interleavings — the positive control proving the checker branches.
#[test]
fn mutex_counter_passes_with_multiple_interleavings() {
    let report = loom::model(|| {
        let n = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                loom::thread::spawn(move || {
                    let mut g = n.lock().unwrap();
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 2);
    });
    assert!(report.interleavings > 1, "expected >1 distinct interleaving, got {report:?}");
    assert!(report.exhaustive, "tiny model should fit the DFS budget: {report:?}");
}

/// Classic lost update: `load` then `store` with no synchronization.
/// Some interleaving must drop an increment and fail the assertion.
#[test]
fn unguarded_counter_lost_update_is_caught() {
    let msg = model_must_fail(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                loom::thread::spawn(move || {
                    let v = n.load(Ordering::SeqCst);
                    n.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
    });
    assert!(msg.contains("lost update"), "unexpected failure message: {msg}");
}

/// A semaphore whose release path can run twice lets a third holder in;
/// the model must find the interleaving where capacity is exceeded.
#[test]
fn double_release_semaphore_overadmits() {
    let msg = model_must_fail(|| {
        // permits starts at 1; a buggy "release" adds a permit
        // unconditionally, so releasing twice admits two holders at once.
        let permits = Arc::new(AtomicUsize::new(1));
        let holders = Arc::new(AtomicUsize::new(0));

        let acquire = |permits: &AtomicUsize| loop {
            let p = permits.load(Ordering::SeqCst);
            if p > 0 && permits.compare_exchange(p, p - 1, Ordering::SeqCst, Ordering::SeqCst).is_ok() {
                return;
            }
            loom::thread::yield_now();
        };

        // Thread 0 acquires, then releases TWICE (the seeded bug).
        let t0 = {
            let permits = Arc::clone(&permits);
            let holders = Arc::clone(&holders);
            loom::thread::spawn(move || {
                acquire(&permits);
                holders.fetch_add(1, Ordering::SeqCst);
                holders.fetch_sub(1, Ordering::SeqCst);
                permits.fetch_add(1, Ordering::SeqCst);
                permits.fetch_add(1, Ordering::SeqCst); // double release
            })
        };
        // Two more threads may now both get in simultaneously.
        let others: Vec<_> = (0..2)
            .map(|_| {
                let permits = Arc::clone(&permits);
                let holders = Arc::clone(&holders);
                loom::thread::spawn(move || {
                    acquire(&permits);
                    let inside = holders.fetch_add(1, Ordering::SeqCst) + 1;
                    assert!(inside <= 1, "semaphore overadmitted");
                    holders.fetch_sub(1, Ordering::SeqCst);
                    permits.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        t0.join().unwrap();
        for h in others {
            h.join().unwrap();
        }
    });
    assert!(msg.contains("overadmitted"), "unexpected failure message: {msg}");
}

/// ABBA lock ordering: the scheduler must detect the cycle and report a
/// deadlock rather than hang.
#[test]
fn abba_deadlock_is_detected() {
    let msg = model_must_fail(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let t = {
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            loom::thread::spawn(move || {
                let _ga = a.lock().unwrap();
                let _gb = b.lock().unwrap();
            })
        };
        {
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
        }
        t.join().unwrap();
    });
    assert!(msg.contains("deadlock"), "unexpected failure message: {msg}");
}

/// Condvar wait/notify round-trip: no lost wakeups, and the protocol
/// completes under every schedule.
#[test]
fn condvar_handoff_passes() {
    let report = loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let t = {
            let pair = Arc::clone(&pair);
            loom::thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut ready = lock.lock().unwrap();
                *ready = true;
                drop(ready);
                cv.notify_one();
            })
        };
        let (lock, cv) = &*pair;
        let mut ready = lock.lock().unwrap();
        while !*ready {
            ready = cv.wait(ready).unwrap();
        }
        drop(ready);
        t.join().unwrap();
    });
    assert!(report.interleavings > 1, "expected >1 interleaving, got {report:?}");
}

/// Outside `loom::model` the primitives behave as plain std (passthrough
/// mode): real threads, real locking, no scheduler involved.
#[test]
fn passthrough_mode_outside_model() {
    let n = Arc::new(Mutex::new(0u32));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let n = Arc::clone(&n);
            loom::thread::spawn(move || {
                for _ in 0..100 {
                    *n.lock().unwrap() += 1;
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*n.lock().unwrap(), 400);
}
