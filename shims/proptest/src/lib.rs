//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate
//! implements the subset of proptest used by the workspace's property
//! suites: the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_oneof!`] macros, range and tuple strategies, `Just`,
//! `prop_map` / `prop_flat_map`, `collection::vec`, `sample::Index`,
//! and `any::<T>()` for the primitive types that appear in the tests.
//!
//! Differences from the real crate: no shrinking (a failing case
//! reports its case number and reproduction seed instead of a minimal
//! input), and string strategies support only simple `[a-z]{m,n}`
//! character-class patterns. Case count defaults to 64 — the tier-1
//! budget for this repository — and can be overridden with the
//! `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]
pub mod test_runner {
    /// Failure raised by `prop_assert!`-family macros inside a property.
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: String) -> Self {
            TestCaseError { msg }
        }

        /// The failure message.
        pub fn message(&self) -> &str {
            &self.msg
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Deterministic random source handed to strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a 64-bit seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed ^ 0x5851_F42D_4C95_7F2D }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform value in `[0, span)` without modulo bias.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            let zone = u64::MAX - (u64::MAX - span + 1) % span;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % span;
                }
            }
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Number of cases per property: `PROPTEST_CASES` or the checked-in
    /// default of 64 (keeps tier-1 under a few minutes).
    pub fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
    }

    /// Drives one property: `case_count()` deterministic cases seeded
    /// from the test name, panicking with a reproducible case id on the
    /// first failure.
    pub fn run<F>(name: &str, f: F)
    where
        F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        for case in 0..case_count() {
            let seed = base ^ case.wrapping_mul(0xA24B_AED4_963E_E407);
            let mut rng = TestRng::new(seed);
            if let Err(e) = f(&mut rng) {
                panic!("property '{name}' failed at case {case} (seed {seed:#x}): {e}");
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Feeds generated values into a strategy-producing `f`.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among alternative strategies (see [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.next_f64() * (hi - lo)
        }
    }

    /// String strategy from a simplified pattern: a literal, or a single
    /// character class with repetition like `"[a-z]{0,6}"`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_class_pattern(self) {
                Some((chars, lo, hi)) => {
                    let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                    (0..len).map(|_| chars[rng.below(chars.len() as u64) as usize]).collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    /// Parses `[x-y...]{m,n}` / `[x-y...]{m}` into (alphabet, m, n).
    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let mut chars = Vec::new();
        let mut it = class.chars().peekable();
        while let Some(c) = it.next() {
            if it.peek() == Some(&'-') {
                it.next();
                let end = it.next()?;
                if c > end {
                    return None;
                }
                chars.extend(c..=end);
            } else {
                chars.push(c);
            }
        }
        if chars.is_empty() {
            return None;
        }
        let (lo, hi) = if rest.is_empty() {
            (1, 1)
        } else {
            let body = rest.strip_prefix('{')?.strip_suffix('}')?;
            match body.split_once(',') {
                Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
                None => {
                    let n = body.trim().parse().ok()?;
                    (n, n)
                }
            }
        };
        if lo > hi {
            return None;
        }
        Some((chars, lo, hi))
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`: uniform over its whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only, spread over a broad magnitude range.
            let mag = rng.next_f64() * 600.0 - 300.0;
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * 10f64.powf(mag.clamp(-300.0, 300.0)) * rng.next_f64()
        }
    }
}

pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An index into a collection of as-yet-unknown size; resolve with
    /// [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Maps this abstract index onto `[0, len)`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification for [`vec()`]: a fixed count or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy for vectors whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s of values from `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Module-alias mirror of the real proptest prelude's `prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies: `proptest! { #[test] fn name(x in strat) { ... } }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    #[allow(unused_mut, clippy::redundant_closure_call)]
                    let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    result
                });
            }
        )*
    };
}

/// Fails the enclosing property if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the enclosing property if the two values are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)*));
    }};
}

/// Fails the enclosing property if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}: {}", a, b, format!($($fmt)*));
    }};
}

/// Uniform choice among alternative strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strat) as $crate::strategy::BoxedStrategy<_>,)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in -5i64..5, y in 0usize..=3, f in 0.0f64..1.0) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!(y <= 3);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn combinators_compose(v in prop::collection::vec((0i64..4, 1usize..3), 0..10)) {
            for (a, b) in v {
                prop_assert!(a < 4 && (1..3).contains(&b));
            }
        }

        #[test]
        fn strings_match_class(s in "[a-c]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn oneof_and_flat_map(v in prop_oneof![Just(1i64), 5i64..10].prop_flat_map(|n| {
            prop::collection::vec(Just(n), (n as usize)..=(n as usize))
        })) {
            prop_assert!(v.len() == v[0] as usize);
        }

        #[test]
        fn early_return_ok(v in prop::collection::vec(0i64..10, 0..3)) {
            if v.is_empty() { return Ok(()); }
            prop_assert!(v[0] < 10);
        }
    }

    #[test]
    fn index_maps_into_range() {
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let idx = <prop::sample::Index as Arbitrary>::arbitrary(&mut rng);
            assert!(idx.index(17) < 17);
        }
    }
}
