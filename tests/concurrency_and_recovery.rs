//! Integration: transactions, conversations, logging and robustness
//! working against the same stores under concurrency.

use haec_txn::conversation::{Conversation, MergePolicy};
use haec_txn::log::{RedoLog, ReliabilityLevel};
use haec_txn::mvcc::{CcScheme, CommitError, TxnManager};
use haecdb::robust::{run_with_failures, RestartPolicy};
use std::sync::Arc;

#[test]
fn concurrent_counter_increments_never_lost() {
    // Under SI with first-committer-wins, retried increments must sum
    // exactly — a lost update would show up as a smaller total.
    let mgr = Arc::new(TxnManager::new(CcScheme::SnapshotIsolation));
    let mut setup = mgr.begin();
    setup.write(0, 0);
    mgr.commit(setup).unwrap();

    let threads = 4;
    let per_thread = 200;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let mgr = Arc::clone(&mgr);
            std::thread::spawn(move || {
                for _ in 0..per_thread {
                    loop {
                        let mut t = mgr.begin();
                        let v = t.read(&mgr, 0).unwrap_or(0);
                        t.write(0, v + 1);
                        match mgr.commit(t) {
                            Ok(_) => break,
                            Err(CommitError::WriteConflict(_)) => continue,
                            Err(e) => panic!("unexpected {e}"),
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(mgr.read_latest(0), Some(threads * per_thread));
}

#[test]
fn serializable_occ_strictly_stronger_than_si() {
    // Classic write-skew: two txns read both keys, each writes the other.
    // SI admits it; OCC must refuse one.
    let run = |scheme: CcScheme| -> (bool, bool) {
        let mgr = TxnManager::new(scheme);
        let mut setup = mgr.begin();
        setup.write(1, 50);
        setup.write(2, 50);
        mgr.commit(setup).unwrap();
        let mut a = mgr.begin();
        let mut b = mgr.begin();
        let a_sum = a.read(&mgr, 1).unwrap() + a.read(&mgr, 2).unwrap();
        let b_sum = b.read(&mgr, 1).unwrap() + b.read(&mgr, 2).unwrap();
        assert_eq!(a_sum, 100);
        assert_eq!(b_sum, 100);
        a.write(1, 0);
        b.write(2, 0);
        let a_ok = mgr.commit(a).is_ok();
        let b_ok = mgr.commit(b).is_ok();
        (a_ok, b_ok)
    };
    let (a_si, b_si) = run(CcScheme::SnapshotIsolation);
    assert!(a_si && b_si, "SI permits write skew (both commit)");
    let (a_occ, b_occ) = run(CcScheme::SerializableOcc);
    assert!(a_occ ^ b_occ, "OCC must abort exactly one of the skewed pair");
}

#[test]
fn conversation_stacks_on_concurrent_database() {
    let mgr = Arc::new(TxnManager::new(CcScheme::SnapshotIsolation));
    let mut seed = mgr.begin();
    for k in 0..100 {
        seed.write(k, k);
    }
    mgr.commit(seed).unwrap();

    let mut conv = Conversation::fork(&mgr, "batch-fix");
    for k in 0..100 {
        conv.put(k, k * 2);
    }
    // Concurrent writer touches keys 200.. (disjoint).
    let writer = {
        let mgr = Arc::clone(&mgr);
        std::thread::spawn(move || {
            for k in 200..300 {
                let mut t = mgr.begin();
                t.write(k, 1);
                mgr.commit(t).unwrap();
            }
        })
    };
    writer.join().unwrap();
    let report = conv.merge(&mgr, MergePolicy::Abort).expect("disjoint keys merge cleanly");
    assert_eq!(report.applied, 100);
    assert_eq!(mgr.read_latest(50), Some(100));
    assert_eq!(mgr.read_latest(250), Some(1));
}

#[test]
fn log_replay_reconstructs_committed_state() {
    // Log every committed write; replaying the durable prefix must
    // rebuild exactly the committed values.
    let mgr = TxnManager::new(CcScheme::SnapshotIsolation);
    let mut log = RedoLog::new();
    for (txn_id, (k, v)) in [(1i64, 10i64), (2, 20), (3, 30)].into_iter().enumerate() {
        let mut t = mgr.begin();
        t.write(k, v);
        mgr.commit(t).unwrap();
        log.append(txn_id as u64, format!("{k}={v}").into_bytes());
        log.flush(ReliabilityLevel::Local);
    }
    // One more append that never flushed (crash before commit): must not
    // replay.
    log.append(99, b"4=40".to_vec());

    let mut rebuilt = std::collections::HashMap::new();
    log.replay(|rec| {
        let s = String::from_utf8(rec.payload.clone()).unwrap();
        let (k, v) = s.split_once('=').unwrap();
        rebuilt.insert(k.parse::<i64>().unwrap(), v.parse::<i64>().unwrap());
    });
    for k in [1i64, 2, 3] {
        assert_eq!(rebuilt.get(&k).copied(), mgr.read_latest(k), "key {k}");
    }
    assert!(!rebuilt.contains_key(&4));
}

#[test]
fn reliability_levels_order_cost_and_protection() {
    let mut volatile = RedoLog::new();
    let mut replicated = RedoLog::new();
    for i in 0..100 {
        volatile.append(i, vec![0; 64]);
        replicated.append(i, vec![0; 64]);
    }
    let v = volatile.flush(ReliabilityLevel::Volatile);
    let r = replicated.flush(ReliabilityLevel::Replicated(2));
    assert!(v.latency < r.latency);
    assert!(!ReliabilityLevel::Volatile.survives_process_crash());
    assert!(ReliabilityLevel::Replicated(2).survives_node_failure());
    assert!(r.profile.nic_bytes.bytes() > 0);
}

#[test]
fn robustness_policies_complete_under_heavy_failures() {
    // Both policies must terminate and produce the full useful work even
    // at a nasty failure rate; checkpointing wastes less *in aggregate*
    // (individual seeds may go either way because the policies consume
    // different random streams).
    let stages = [500u64, 500, 500];
    let mut full_waste = 0u64;
    let mut ckpt_waste = 0u64;
    for seed in 0..20u64 {
        let full = run_with_failures(&stages, 0.004, RestartPolicy::FullRestart, seed);
        let ckpt = run_with_failures(&stages, 0.004, RestartPolicy::Checkpoint, seed);
        assert_eq!(full.useful_units, 1500);
        assert_eq!(ckpt.useful_units, 1500);
        full_waste += full.wasted_units();
        ckpt_waste += ckpt.wasted_units();
    }
    assert!(ckpt_waste < full_waste, "checkpoint {ckpt_waste} vs full {full_waste}");
}
