//! End-to-end integration: the full query stack with energy accounting,
//! access-path selection and flexible schemas working together.

use haecdb::prelude::*;

fn load_orders(db: &mut Database, rows: i64) {
    db.create_table(
        "orders",
        &[("id", DataType::Int64), ("region", DataType::Int64), ("amount", DataType::Int64)],
    )
    .unwrap();
    for i in 0..rows {
        db.insert("orders", &Record::new().with("id", i).with("region", i % 5).with("amount", (i * 7) % 100))
            .unwrap();
    }
}

#[test]
fn query_answers_match_a_reference_computation() {
    let mut db = Database::new();
    load_orders(&mut db, 10_000);
    // Reference computation in plain Rust.
    let expected: i64 =
        (0..10_000i64).filter(|i| i % 5 == 2 && (i * 7) % 100 >= 50).map(|i| (i * 7) % 100).sum();
    let out = db
        .execute(
            &Query::scan("orders")
                .filter("region", CmpOp::Eq, 2)
                .filter("amount", CmpOp::Ge, 50)
                .aggregate(AggKind::Sum, "amount"),
        )
        .unwrap();
    assert_eq!(out.rows.row(0).unwrap()[0].as_float(), Some(expected as f64));
}

#[test]
fn energy_meter_grows_with_work_and_reports_rapl() {
    let mut db = Database::new();
    load_orders(&mut db, 50_000);
    let before = db.meter().grand_total();
    let r1 = db.execute(&Query::scan("orders").aggregate(AggKind::Sum, "amount")).unwrap();
    let after = db.meter().grand_total();
    assert!(after.joules() > before.joules());
    assert!(r1.energy.joules() > 0.0);
    // Bigger work costs more energy.
    let small = db
        .execute(&Query::scan("orders").filter("id", CmpOp::Lt, 100).aggregate(AggKind::Sum, "amount"))
        .unwrap();
    assert!(
        r1.energy.joules() > small.energy.joules() * 0.5,
        "full scan should not be cheaper than a tiny one"
    );
    // RAPL registers move monotonically modulo wrap.
    let pkg = db.meter().rapl_read(haec_energy::meter::Domain::Package);
    db.execute(&Query::scan("orders").aggregate(AggKind::Max, "amount")).unwrap();
    let pkg2 = db.meter().rapl_read(haec_energy::meter::Domain::Package);
    assert_ne!(pkg, pkg2);
}

#[test]
fn index_decision_tracks_selectivity_end_to_end() {
    let mut db = Database::new();
    load_orders(&mut db, 100_000);
    db.create_index("orders", "id", IndexMaintenance::Eager).unwrap();
    // Point query → index.
    let point = db.execute(&Query::scan("orders").filter("id", CmpOp::Eq, 77)).unwrap();
    assert_eq!(point.access_path, Some(haec_planner::access::AccessPath::IndexLookup));
    assert_eq!(point.rows.rows(), 1);
    // Same predicate class, non-indexed column → plain scan, same answer
    // as a reference filter.
    let broad = db.execute(&Query::scan("orders").filter("amount", CmpOp::Lt, 50)).unwrap();
    let expected = (0..100_000i64).filter(|i| (i * 7) % 100 < 50).count();
    assert_eq!(broad.rows.rows(), expected);
}

#[test]
fn need_to_know_index_defers_until_query() {
    let mut db = Database::new();
    load_orders(&mut db, 1_000);
    db.create_index("orders", "id", IndexMaintenance::NeedToKnow).unwrap();
    // Writes keep deferring.
    for i in 1_000..2_000i64 {
        db.insert("orders", &Record::new().with("id", i).with("region", 0i64).with("amount", 0i64)).unwrap();
    }
    assert_eq!(db.index_stats("orders", "id").unwrap().maintenance_ops, 0);
    // A query that uses the index triggers catch-up and still answers
    // correctly.
    let out = db.execute(&Query::scan("orders").filter("id", CmpOp::Eq, 1_500)).unwrap();
    assert_eq!(out.rows.rows(), 1);
    let stats = db.index_stats("orders", "id").unwrap();
    assert_eq!(stats.maintenance_ops, 2_000);
    assert_eq!(stats.catchups, 1);
}

#[test]
fn flexible_schema_interoperates_with_queries_and_indexes() {
    let db = Database::new();
    db.create_flexible_table("events").unwrap();
    for i in 0..1_000i64 {
        let mut r = Record::new().with("user", i % 50);
        if i % 3 == 0 {
            r.set("clicks", i % 7);
        }
        db.insert("events", &r).unwrap();
    }
    assert_eq!(db.table("events").unwrap().schema().evolved_columns(), 2);
    // Nulls materialize as sentinel 0 for aggregation (documented
    // behaviour) — count survives.
    let out = db.execute(&Query::scan("events").group_by("user").aggregate(AggKind::Count, "user")).unwrap();
    assert_eq!(out.rows.rows(), 50);
    // Null accounting is available from the table.
    assert_eq!(db.table("events").unwrap().null_count("clicks"), Some(1_000 - 334));
}

#[test]
fn goal_switching_is_stable_across_queries() {
    let mut db = Database::new();
    load_orders(&mut db, 20_000);
    db.create_index("orders", "id", IndexMaintenance::Eager).unwrap();
    let q = Query::scan("orders").filter("id", CmpOp::Eq, 3);
    let t = db.execute(&q).unwrap();
    db.set_goal(Goal::MinEnergy);
    let e = db.execute(&q).unwrap();
    // Both goals answer identically (E1: orderings coincide on one node).
    assert_eq!(t.rows.rows(), e.rows.rows());
    assert_eq!(t.access_path, e.access_path);
}
