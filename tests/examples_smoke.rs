//! Smoke coverage for `examples/`: exercises the `quickstart.rs` code
//! path in-process with assertions, so the documented entry point can't
//! rot. CI additionally builds every example (`cargo build --examples`)
//! and runs each binary.

use haecdb::prelude::*;

#[test]
fn quickstart_code_path_works() {
    let db = Database::new();
    assert!(db.machine().cores() >= 1);
    assert!(db.machine().idle_floor().watts() > 0.0);

    db.create_table(
        "orders",
        &[("id", DataType::Int64), ("region", DataType::Int64), ("amount", DataType::Int64)],
    )
    .unwrap();
    let rows = 20_000i64;
    for i in 0..rows {
        db.insert(
            "orders",
            &Record::new().with("id", i).with("region", i % 8).with("amount", (i * 37) % 1000),
        )
        .unwrap();
    }

    // Filtered group-by, checked against a plain-Rust reference.
    let result = db
        .execute(
            &Query::scan("orders")
                .filter("amount", CmpOp::Ge, 500)
                .group_by("region")
                .aggregate(AggKind::Sum, "amount"),
        )
        .unwrap();
    let mut expected = std::collections::BTreeMap::new();
    for i in 0..rows {
        let amount = (i * 37) % 1000;
        if amount >= 500 {
            *expected.entry(i % 8).or_insert(0i64) += amount;
        }
    }
    assert_eq!(result.rows.rows(), expected.len());
    for i in 0..result.rows.rows() {
        let row = result.rows.row(i).unwrap();
        let region = row[0].as_int().unwrap();
        let sum = row[1].as_float().unwrap();
        assert_eq!(expected.get(&region).copied(), Some(sum as i64), "region {region}");
    }
    assert!(result.energy.joules() > 0.0, "queries must be metered");
    assert!(result.modeled_time > std::time::Duration::ZERO);

    // Point lookup switches to the index once one exists.
    db.create_index("orders", "id", IndexMaintenance::Eager).unwrap();
    let point = db.execute(&Query::scan("orders").filter("id", CmpOp::Eq, 4242)).unwrap();
    assert_eq!(point.rows.rows(), 1);
    assert_eq!(point.rows.row(0).unwrap()[0].as_int().unwrap(), 4242);

    // The database-wide meter accumulated everything, package = sum of
    // leaf domains.
    let meter = db.meter();
    let pkg = meter.total(haec_energy::meter::Domain::Package).joules();
    assert!(pkg > 0.0);
    for domain in haec_energy::meter::Domain::ALL {
        assert!(meter.total(domain).joules() >= 0.0, "{domain}");
    }
}
