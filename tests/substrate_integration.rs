//! Integration across substrates: storage tiers + energy metering,
//! networking + compression, planner + real table statistics, and the
//! scheduler + machine model.

use haec_columnar::encoding::EncodedInts;
use haec_energy::machine::MachineSpec;
use haec_energy::meter::{Domain, EnergyMeter};
use haec_energy::profile::{CostEstimator, ExecutionContext};
use haec_energy::units::ByteCount;
use haec_net::shipping::{decide, CompressorSpec, Objective};
use haec_net::topology::{LinkClass, LinkSpec};
use haec_planner::cost::CostModel;
use haec_planner::join_order::{plan_dp, plan_greedy, JoinGraph};
use haec_sched::governor::GovernorPolicy;
use haec_sched::server::{run_server_sim, ServerSimConfig};
use haec_storage::hierarchy::{Hierarchy, PlacementPolicy};
use haec_storage::temperature::{AccessKind, DensityClass};
use haecdb::prelude::*;
use std::time::Duration;

#[test]
fn storage_accesses_charge_the_energy_meter() {
    let mut h = Hierarchy::new(PlacementPolicy::DensityAware);
    let hot = h.create_segment(ByteCount::from_mib(64), DensityClass::High);
    let cold = h.create_segment(ByteCount::from_gib(1), DensityClass::Low);
    let est = CostEstimator::new(MachineSpec::commodity_2013());
    let mut meter = EnergyMeter::new();
    let ctx = ExecutionContext::single(est.machine().pstates().fastest());

    let p = h.access(hot, AccessKind::Point);
    est.charge(&p.profile, ctx, &mut meter);
    let dram_energy = meter.total(Domain::Dram);
    assert!(dram_energy.joules() > 0.0, "hot access bills DRAM");
    assert_eq!(meter.total(Domain::Disk).joules(), 0.0);

    let s = h.access(cold, AccessKind::Scan);
    est.charge(&s.profile, ctx, &mut meter);
    assert!(meter.total(Domain::Disk).joules() > 0.0, "cold scan bills the disk domain");
}

#[test]
fn real_compression_ratio_feeds_the_shipping_decision() {
    // Encode a real run-heavy column, then use its *measured* ratio in
    // the shipping decision — the E16 → E3 pipeline.
    let data: Vec<i64> = (0..1_000_000).map(|i| (i / 1000) % 50).collect();
    let encoded = EncodedInts::auto(&data);
    let ratio = encoded.stats().ratio();
    assert!(ratio > 4.0, "run-heavy data compresses well, got {ratio:.1}x");

    let codec = CompressorSpec::lightweight(ratio);
    let payload = ByteCount::new((data.len() * 8) as u64);
    let slow = decide(payload, &codec, &LinkSpec::default_for(LinkClass::Ethernet1G), Objective::MinTime);
    let fast = decide(payload, &codec, &LinkSpec::default_for(LinkClass::IntraBoard), Objective::MinTime);
    assert!(slow.compress, "1GbE with {ratio:.0}x ratio must compress");
    assert!(!fast.compress, "QPI-class link ships raw");
}

#[test]
fn planner_costs_real_tables_consistently() {
    // Build a real table, extract its stats, and check the planner's
    // access decision against actually executing both ways.
    let db = Database::new();
    db.create_table("t", &[("k", DataType::Int64), ("v", DataType::Int64)]).unwrap();
    for i in 0..50_000i64 {
        db.insert("t", &Record::new().with("k", i).with("v", i % 100)).unwrap();
    }
    let mut meta = db.table("t").unwrap().planner_meta();
    assert_eq!(meta.rows, 50_000);
    meta.columns.iter_mut().find(|c| c.name == "k").unwrap().indexed = true;
    let model = CostModel::new(MachineSpec::commodity_2013());
    let d = haec_planner::access::choose_access(&model, &meta, "k", CmpOp::Eq, 123);
    assert_eq!(d.path, haec_planner::access::AccessPath::IndexLookup);

    // The engine agrees: with the index created, it uses it.
    db.create_index("t", "k", IndexMaintenance::Eager).unwrap();
    let out = db.execute(&Query::scan("t").filter("k", CmpOp::Eq, 123)).unwrap();
    assert_eq!(out.access_path, Some(haec_planner::access::AccessPath::IndexLookup));
}

#[test]
fn join_ordering_invariants_hold_on_random_graphs() {
    // DP (exact) vs greedy on assorted small graphs built from "real"
    // catalog-ish sizes: DP never loses, both agree on final cardinality.
    for seed in 0..5u64 {
        let n = 6 + (seed as usize % 3);
        let mut g = JoinGraph::new((0..n).map(|i| 10f64.powi(2 + ((i as i32 + seed as i32) % 4))).collect());
        for i in 1..n {
            g.add_edge(i - 1, i, 10f64.powi(-((i as i32 % 3) + 1)));
        }
        if n > 4 {
            g.add_edge(0, n - 1, 0.5);
        }
        let dp = plan_dp(&g);
        let gr = plan_greedy(&g);
        assert!(dp.cout <= gr.cout * 1.000001, "seed {seed}: dp {} > greedy {}", dp.cout, gr.cout);
        let rel = (dp.final_card - gr.final_card).abs() / dp.final_card.max(1e-30);
        assert!(rel < 1e-9, "seed {seed}: final cards diverged");
    }
}

#[test]
fn scheduler_respects_machine_power_envelope() {
    // Whatever the governor, average power must stay within the machine
    // model's physical envelope.
    let mut cfg = ServerSimConfig::default_mix();
    cfg.horizon = Duration::from_secs(10);
    cfg.arrival_rate = 150.0;
    let idle = cfg.machine.idle_floor().watts();
    let peak = cfg.machine.peak_power().watts();
    for gov in [
        GovernorPolicy::RaceToIdle,
        GovernorPolicy::OnDemand,
        GovernorPolicy::PaceToDeadline(Duration::from_millis(300)),
        GovernorPolicy::EnergyCap(haec_energy::units::Watts::new(peak * 0.5)),
    ] {
        cfg.governor = gov;
        let out = run_server_sim(&cfg);
        let avg = out.avg_power.watts();
        assert!(avg >= idle * 0.5, "{gov}: avg {avg} W below plausible floor");
        assert!(avg <= peak * 1.01, "{gov}: avg {avg} W above peak {peak}");
    }
}

#[test]
fn end_to_end_energy_story_is_self_consistent() {
    // The same amount of logical work must cost monotonically more
    // energy as the data grows — across the whole stack (ingest + scan +
    // aggregate), using the database's own meter.
    let mut energies = Vec::new();
    for rows in [10_000i64, 40_000, 160_000] {
        let db = Database::new();
        db.create_table("t", &[("v", DataType::Int64)]).unwrap();
        for i in 0..rows {
            db.insert("t", &Record::new().with("v", i % 1000)).unwrap();
        }
        let before = db.meter().grand_total();
        db.execute(&Query::scan("t").filter("v", CmpOp::Lt, 500).aggregate(AggKind::Sum, "v")).unwrap();
        let after = db.meter().grand_total();
        energies.push(after.joules() - before.joules());
    }
    assert!(energies[0] < energies[1] && energies[1] < energies[2], "{energies:?}");
}
