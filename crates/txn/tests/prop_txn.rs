//! Property-based tests: isolation invariants of the MVCC store and
//! conversation merge semantics against a sequential oracle.

use haec_txn::conversation::{Conversation, MergePolicy};
use haec_txn::mvcc::{CcScheme, TxnManager};
use proptest::prelude::*;
use std::collections::HashMap;

/// A tiny workload language: per-transaction batches of writes.
fn batches() -> impl Strategy<Value = Vec<Vec<(i64, i64)>>> {
    proptest::collection::vec(proptest::collection::vec((0i64..8, -100i64..100), 1..4), 1..20)
}

proptest! {
    /// Sequential transactions applied through MVCC equal a HashMap
    /// replay — committed state is exactly the serial history.
    #[test]
    fn sequential_commits_match_oracle(batches in batches()) {
        let mgr = TxnManager::new(CcScheme::SnapshotIsolation);
        let mut oracle: HashMap<i64, i64> = HashMap::new();
        for batch in &batches {
            let mut t = mgr.begin();
            for &(k, v) in batch {
                t.write(k, v);
                oracle.insert(k, v);
            }
            prop_assert!(mgr.commit(t).is_ok(), "sequential txns never conflict");
        }
        for (k, v) in &oracle {
            prop_assert_eq!(mgr.read_latest(*k), Some(*v), "key {}", k);
        }
    }

    /// Snapshot stability: whatever concurrent writers commit, a reader
    /// sees exactly the state as of its begin timestamp.
    #[test]
    fn snapshots_are_frozen(
        pre in proptest::collection::vec((0i64..8, -100i64..100), 1..10),
        post in proptest::collection::vec((0i64..8, -100i64..100), 1..10),
    ) {
        let mgr = TxnManager::new(CcScheme::SnapshotIsolation);
        let mut expected: HashMap<i64, i64> = HashMap::new();
        let mut setup = mgr.begin();
        for &(k, v) in &pre {
            setup.write(k, v);
            expected.insert(k, v);
        }
        mgr.commit(setup).unwrap();

        let mut reader = mgr.begin();
        // Concurrent writers overwrite everything afterwards.
        for &(k, v) in &post {
            let mut w = mgr.begin();
            w.write(k, v.wrapping_add(1000));
            mgr.commit(w).unwrap();
        }
        for (k, v) in &expected {
            prop_assert_eq!(reader.read(&mgr, *k), Some(*v), "key {}", k);
        }
    }

    /// First-committer-wins: of two conflicting writers, exactly one
    /// commits, and the surviving value is the winner's.
    #[test]
    fn exactly_one_of_two_conflicting_writers(key in 0i64..4, va in -50i64..50, vb in 51i64..100) {
        let mgr = TxnManager::new(CcScheme::SnapshotIsolation);
        let mut a = mgr.begin();
        let mut b = mgr.begin();
        a.write(key, va);
        b.write(key, vb);
        let ra = mgr.commit(a);
        let rb = mgr.commit(b);
        prop_assert!(ra.is_ok() && rb.is_err(), "first committer must win deterministically");
        prop_assert_eq!(mgr.read_latest(key), Some(va));
    }

    /// Vacuum never changes the visible latest state.
    #[test]
    fn vacuum_preserves_latest(batches in batches()) {
        let mgr = TxnManager::new(CcScheme::SnapshotIsolation);
        for batch in &batches {
            let mut t = mgr.begin();
            for &(k, v) in batch {
                t.write(k, v);
            }
            mgr.commit(t).unwrap();
        }
        let before: Vec<(i64, Option<i64>)> = (0..8).map(|k| (k, mgr.read_latest(k))).collect();
        mgr.vacuum(mgr.begin().start_ts());
        for (k, v) in before {
            prop_assert_eq!(mgr.read_latest(k), v, "key {}", k);
        }
    }

    /// Conversation merge with `Ours` equals overlay-over-base; with
    /// `Theirs` conflicting keys keep the main value.
    #[test]
    fn conversation_merge_policies_match_oracle(
        base in proptest::collection::vec((0i64..6, -100i64..100), 1..8),
        conv_writes in proptest::collection::vec((0i64..6, 200i64..300), 1..8),
        concurrent in proptest::collection::vec((0i64..6, 400i64..500), 0..4),
        ours in any::<bool>(),
    ) {
        let mgr = TxnManager::new(CcScheme::SnapshotIsolation);
        let mut setup = mgr.begin();
        for &(k, v) in &base {
            setup.write(k, v);
        }
        mgr.commit(setup).unwrap();

        let mut conv = Conversation::fork(&mgr, "p");
        let mut overlay: HashMap<i64, i64> = HashMap::new();
        for &(k, v) in &conv_writes {
            conv.put(k, v);
            overlay.insert(k, v);
        }
        let mut conflicted: HashMap<i64, i64> = HashMap::new();
        for &(k, v) in &concurrent {
            let mut t = mgr.begin();
            t.write(k, v);
            mgr.commit(t).unwrap();
            conflicted.insert(k, v);
        }
        let policy = if ours { MergePolicy::Ours } else { MergePolicy::Theirs };
        let report = conv.merge(&mgr, policy).unwrap();
        for (k, v) in &overlay {
            let got = mgr.read_latest(*k);
            match policy {
                MergePolicy::Ours => prop_assert_eq!(got, Some(*v), "ours keeps overlay for {}", k),
                MergePolicy::Theirs => {
                    if let Some(main) = conflicted.get(k) {
                        prop_assert_eq!(got, Some(*main), "theirs keeps main for {}", k);
                    } else {
                        prop_assert_eq!(got, Some(*v), "clean key applies for {}", k);
                    }
                }
                MergePolicy::Abort => unreachable!(),
            }
        }
        prop_assert_eq!(report.applied + report.dropped, overlay.len());
    }
}
