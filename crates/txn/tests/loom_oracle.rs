//! Model-checked verification of `TimestampOracle` monotonicity and
//! uniqueness across interleaved issuers.
//!
//! Only built under `RUSTFLAGS="--cfg haec_loom"`, which switches the
//! oracle's counter onto the `loom` shim's model-checked atomic. Run
//! with:
//!
//! ```text
//! RUSTFLAGS="--cfg haec_loom" cargo test -p haec-txn --test loom_oracle --release
//! ```
#![cfg(haec_loom)]

use haec_txn::oracle::{Timestamp, TimestampOracle};
use loom::sync::Arc;

/// Two issuers interleaved arbitrarily: every timestamp is unique,
/// per-thread issues are strictly increasing, and `current` never trails
/// an issued timestamp once issuing quiesces.
#[test]
fn timestamps_unique_and_monotone_across_interleavings() {
    let report = loom::model(|| {
        let oracle = Arc::new(TimestampOracle::new());
        let issuers: Vec<_> = (0..2)
            .map(|_| {
                let oracle = Arc::clone(&oracle);
                loom::thread::spawn(move || {
                    let a = oracle.next();
                    let b = oracle.next();
                    assert!(b > a, "per-thread issue order must be strictly increasing");
                    [a, b]
                })
            })
            .collect();
        let mut issued: Vec<Timestamp> = Vec::new();
        for h in issuers {
            issued.extend(h.join().unwrap());
        }
        let n = issued.len();
        issued.sort();
        issued.dedup();
        assert_eq!(issued.len(), n, "duplicate timestamps issued");
        assert!(issued.iter().all(|&t| t > Timestamp::ZERO), "0 is reserved for pre-history");
        assert_eq!(
            oracle.current(),
            *issued.last().unwrap(),
            "current must converge on the highest issued timestamp"
        );
    });
    assert!(report.interleavings > 1, "expected >1 distinct interleaving, got {report:?}");
}
