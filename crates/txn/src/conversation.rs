//! Database conversations: long-lived, application-private branches of
//! the database (paper §IV.A).
//!
//! A conversation forks a snapshot, accumulates local writes that
//! "exist beyond the scope of a single application transaction", can be
//! shared/inspected, and is eventually merged back — or abandoned —
//! under an explicit conflict policy. This frees the engine from
//! maintaining a single point of truth for every application, which is
//! precisely the relaxation the paper asks applications to accept.

use crate::mvcc::{CommitError, Key, RowValue, TxnManager};
use crate::oracle::Timestamp;
use std::collections::HashMap;
use std::fmt;

/// How conflicts are resolved when a conversation merges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MergePolicy {
    /// Fail the merge if the base changed under any written key.
    #[default]
    Abort,
    /// The conversation's value wins on conflicts.
    Ours,
    /// The main database's value wins on conflicts (conflicting keys are
    /// dropped from the merge).
    Theirs,
}

impl fmt::Display for MergePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MergePolicy::Abort => "abort",
            MergePolicy::Ours => "ours",
            MergePolicy::Theirs => "theirs",
        };
        f.write_str(s)
    }
}

/// Outcome of a successful merge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeReport {
    /// Keys written back to the main database.
    pub applied: usize,
    /// Keys dropped because the main database won (policy `Theirs`).
    pub dropped: usize,
    /// The commit timestamp of the merge transaction (`None` if nothing
    /// was applied).
    pub commit_ts: Option<Timestamp>,
}

/// Why a merge failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MergeError {
    /// Policy [`MergePolicy::Abort`] and the base changed under `key`.
    Conflict(
        /// The first conflicting key.
        Key,
    ),
    /// The final commit failed (a concurrent writer raced the merge).
    Commit(
        /// The underlying commit error.
        CommitError,
    ),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Conflict(k) => write!(f, "merge conflict on key {k}"),
            MergeError::Commit(e) => write!(f, "merge commit failed: {e}"),
        }
    }
}

impl std::error::Error for MergeError {}

/// An application-private branch of the database.
///
/// ```
/// use haec_txn::conversation::{Conversation, MergePolicy};
/// use haec_txn::mvcc::{CcScheme, TxnManager};
///
/// let db = TxnManager::new(CcScheme::SnapshotIsolation);
/// let mut conv = Conversation::fork(&db, "planning-session");
/// conv.put(1, 42);
/// assert_eq!(conv.get(&db, 1), Some(42));       // visible inside
/// assert_eq!(db.read_latest(1), None);          // invisible outside
/// let report = conv.merge(&db, MergePolicy::Abort).unwrap();
/// assert_eq!(report.applied, 1);
/// assert_eq!(db.read_latest(1), Some(42));      // published
/// ```
#[derive(Debug)]
pub struct Conversation {
    name: String,
    base: Timestamp,
    /// Local overlay; `None` marks a deletion... which the i64 store
    /// models as a tombstone write of the default value.
    overlay: HashMap<Key, RowValue>,
    /// Base versions observed for written keys (for conflict detection).
    observed: HashMap<Key, Option<Timestamp>>,
}

impl Conversation {
    /// Forks a new conversation off the current database state.
    pub fn fork(db: &TxnManager, name: impl Into<String>) -> Self {
        Conversation {
            name: name.into(),
            base: db.begin().start_ts(),
            overlay: HashMap::new(),
            observed: HashMap::new(),
        }
    }

    /// The conversation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The snapshot timestamp this conversation branched from.
    pub fn base_ts(&self) -> Timestamp {
        self.base
    }

    /// Number of locally written keys.
    pub fn dirty_keys(&self) -> usize {
        self.overlay.len()
    }

    /// Writes into the conversation (invisible to the main database).
    pub fn put(&mut self, key: Key, value: RowValue) {
        self.overlay.insert(key, value);
    }

    /// Reads through the overlay, falling back to the fork snapshot.
    pub fn get(&mut self, db: &TxnManager, key: Key) -> Option<RowValue> {
        if let Some(&v) = self.overlay.get(&key) {
            return Some(v);
        }
        let read = db.read_at(key, self.base);
        self.observed.insert(key, read.map(|(_, ts)| ts));
        read.map(|(v, _)| v)
    }

    /// Merges the overlay back into the main database under `policy`.
    ///
    /// # Errors
    ///
    /// [`MergeError::Conflict`] under [`MergePolicy::Abort`] if any
    /// written key changed in the main database since the fork;
    /// [`MergeError::Commit`] if the final commit loses a race.
    pub fn merge(self, db: &TxnManager, policy: MergePolicy) -> Result<MergeReport, MergeError> {
        // Detect which written keys changed under us.
        let mut conflicting: Vec<Key> = Vec::new();
        for key in self.overlay.keys() {
            let base_version = db.read_at(*key, self.base).map(|(_, ts)| ts);
            let now_version = db.read_at(*key, Timestamp(u64::MAX - 1)).map(|(_, ts)| ts);
            if base_version != now_version {
                conflicting.push(*key);
            }
        }
        conflicting.sort_unstable();

        let mut dropped = 0usize;
        let mut txn = db.begin();
        match policy {
            MergePolicy::Abort => {
                if let Some(&k) = conflicting.first() {
                    return Err(MergeError::Conflict(k));
                }
                for (k, v) in &self.overlay {
                    txn.write(*k, *v);
                }
            }
            MergePolicy::Ours => {
                for (k, v) in &self.overlay {
                    txn.write(*k, *v);
                }
            }
            MergePolicy::Theirs => {
                for (k, v) in &self.overlay {
                    if conflicting.binary_search(k).is_ok() {
                        dropped += 1;
                    } else {
                        txn.write(*k, *v);
                    }
                }
            }
        }
        let applied = self.overlay.len() - dropped;
        if applied == 0 {
            return Ok(MergeReport { applied: 0, dropped, commit_ts: None });
        }
        match db.commit(txn) {
            Ok(ts) => Ok(MergeReport { applied, dropped, commit_ts: Some(ts) }),
            Err(e) => Err(MergeError::Commit(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvcc::CcScheme;

    fn db_with(key: Key, value: RowValue) -> TxnManager {
        let db = TxnManager::new(CcScheme::SnapshotIsolation);
        let mut t = db.begin();
        t.write(key, value);
        db.commit(t).unwrap();
        db
    }

    #[test]
    fn isolation_until_merge() {
        let db = db_with(1, 10);
        let mut conv = Conversation::fork(&db, "c");
        conv.put(1, 99);
        conv.put(2, 50);
        assert_eq!(conv.get(&db, 1), Some(99));
        assert_eq!(db.read_latest(1), Some(10));
        assert_eq!(db.read_latest(2), None);
        assert_eq!(conv.dirty_keys(), 2);
        let report = conv.merge(&db, MergePolicy::Abort).unwrap();
        assert_eq!(report.applied, 2);
        assert_eq!(report.dropped, 0);
        assert!(report.commit_ts.is_some());
        assert_eq!(db.read_latest(1), Some(99));
        assert_eq!(db.read_latest(2), Some(50));
    }

    #[test]
    fn reads_are_frozen_at_fork() {
        let db = db_with(1, 10);
        let mut conv = Conversation::fork(&db, "c");
        // Main database moves on.
        let mut t = db.begin();
        t.write(1, 11);
        db.commit(t).unwrap();
        // Conversation still sees the fork-time value.
        assert_eq!(conv.get(&db, 1), Some(10));
    }

    #[test]
    fn abort_policy_detects_conflict() {
        let db = db_with(1, 10);
        let mut conv = Conversation::fork(&db, "c");
        conv.put(1, 99);
        let mut t = db.begin();
        t.write(1, 11);
        db.commit(t).unwrap();
        let err = conv.merge(&db, MergePolicy::Abort).unwrap_err();
        assert_eq!(err, MergeError::Conflict(1));
        assert_eq!(db.read_latest(1), Some(11), "database untouched");
    }

    #[test]
    fn ours_policy_overwrites() {
        let db = db_with(1, 10);
        let mut conv = Conversation::fork(&db, "c");
        conv.put(1, 99);
        let mut t = db.begin();
        t.write(1, 11);
        db.commit(t).unwrap();
        let report = conv.merge(&db, MergePolicy::Ours).unwrap();
        assert_eq!(report.applied, 1);
        assert_eq!(db.read_latest(1), Some(99));
    }

    #[test]
    fn theirs_policy_drops_conflicts() {
        let db = db_with(1, 10);
        let mut conv = Conversation::fork(&db, "c");
        conv.put(1, 99); // will conflict
        conv.put(2, 42); // clean
        let mut t = db.begin();
        t.write(1, 11);
        db.commit(t).unwrap();
        let report = conv.merge(&db, MergePolicy::Theirs).unwrap();
        assert_eq!(report.applied, 1);
        assert_eq!(report.dropped, 1);
        assert_eq!(db.read_latest(1), Some(11), "theirs kept");
        assert_eq!(db.read_latest(2), Some(42), "clean write applied");
    }

    #[test]
    fn empty_merge_is_noop() {
        let db = db_with(1, 10);
        let conv = Conversation::fork(&db, "c");
        let report = conv.merge(&db, MergePolicy::Abort).unwrap();
        assert_eq!(report.applied, 0);
        assert_eq!(report.commit_ts, None);
    }

    #[test]
    fn new_key_conflict_detected() {
        // Conflict on a key that did not exist at fork time.
        let db = TxnManager::new(CcScheme::SnapshotIsolation);
        let mut conv = Conversation::fork(&db, "c");
        conv.put(7, 1);
        let mut t = db.begin();
        t.write(7, 2);
        db.commit(t).unwrap();
        let err = conv.merge(&db, MergePolicy::Abort).unwrap_err();
        assert_eq!(err, MergeError::Conflict(7));
    }

    #[test]
    fn two_conversations_independent() {
        let db = db_with(1, 0);
        let mut a = Conversation::fork(&db, "a");
        let mut b = Conversation::fork(&db, "b");
        a.put(1, 100);
        b.put(2, 200);
        assert_eq!(a.get(&db, 2), None);
        assert_eq!(b.get(&db, 1), Some(0));
        a.merge(&db, MergePolicy::Abort).unwrap();
        b.merge(&db, MergePolicy::Abort).unwrap();
        assert_eq!(db.read_latest(1), Some(100));
        assert_eq!(db.read_latest(2), Some(200));
    }

    #[test]
    fn displays() {
        assert_eq!(format!("{}", MergePolicy::Ours), "ours");
        assert!(format!("{}", MergeError::Conflict(1)).contains("key 1"));
    }
}
