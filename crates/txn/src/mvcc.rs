//! Multi-version concurrency control with pluggable validation, after
//! the main-memory designs the paper cites (Larson et al., "High-
//! Performance Concurrency Control Mechanisms for Main-Memory
//! Databases").
//!
//! Three schemes share one versioned store:
//!
//! * [`CcScheme::SnapshotIsolation`] — readers never block; writers
//!   validate write-write conflicts at commit (first committer wins).
//! * [`CcScheme::SerializableOcc`] — snapshot isolation plus read-set
//!   validation at commit (backward OCC), the software analogue of the
//!   optimistic hardware transactions (TSX) the paper welcomes.
//! * [`CcScheme::TwoPhaseLocking`] — no-wait 2PL over per-key locks, the
//!   "traditional locks and latches" baseline.

use crate::oracle::{Timestamp, TimestampOracle};
use parking_lot::{Mutex, RwLock};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Row key type of the store.
pub type Key = i64;
/// Row value type of the store.
pub type RowValue = i64;

/// Concurrency-control scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CcScheme {
    /// MVCC with write-write validation only.
    SnapshotIsolation,
    /// MVCC with read and write validation (serializable).
    SerializableOcc,
    /// No-wait two-phase locking.
    TwoPhaseLocking,
}

impl fmt::Display for CcScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CcScheme::SnapshotIsolation => "si",
            CcScheme::SerializableOcc => "occ",
            CcScheme::TwoPhaseLocking => "2pl",
        };
        f.write_str(s)
    }
}

/// Why a commit failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommitError {
    /// Another transaction committed a write to this key first.
    WriteConflict(
        /// The conflicting key.
        Key,
    ),
    /// A key in the read set changed since the snapshot (OCC only).
    ReadValidation(
        /// The invalidated key.
        Key,
    ),
    /// A lock could not be acquired (2PL no-wait).
    LockConflict(
        /// The contended key.
        Key,
    ),
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::WriteConflict(k) => write!(f, "write-write conflict on key {k}"),
            CommitError::ReadValidation(k) => write!(f, "read validation failed on key {k}"),
            CommitError::LockConflict(k) => write!(f, "lock conflict on key {k}"),
        }
    }
}

impl std::error::Error for CommitError {}

#[derive(Clone, Copy, Debug)]
struct Version {
    value: RowValue,
    begin: Timestamp,
    end: Timestamp,
}

#[derive(Default)]
struct LockState {
    readers: u32,
    writer: bool,
}

/// The versioned key-value store plus transaction machinery.
///
/// ```
/// use haec_txn::mvcc::{CcScheme, TxnManager};
/// let mgr = TxnManager::new(CcScheme::SnapshotIsolation);
/// let mut t = mgr.begin();
/// t.write(1, 100);
/// mgr.commit(t).unwrap();
/// let mut r = mgr.begin();
/// assert_eq!(r.read(&mgr, 1), Some(100));
/// ```
pub struct TxnManager {
    versions: RwLock<HashMap<Key, Vec<Version>>>,
    locks: Mutex<HashMap<Key, LockState>>,
    oracle: std::sync::Arc<TimestampOracle>,
    scheme: CcScheme,
    commits: AtomicU64,
    aborts: AtomicU64,
}

impl fmt::Debug for TxnManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TxnManager")
            .field("scheme", &self.scheme)
            .field("keys", &self.versions.read().len())
            .field("commits", &self.commits.load(Ordering::Relaxed))
            .field("aborts", &self.aborts.load(Ordering::Relaxed))
            .finish()
    }
}

/// An in-flight transaction. Reads/writes are buffered locally; nothing
/// is visible to others until [`TxnManager::commit`].
#[derive(Debug)]
pub struct Transaction {
    start: Timestamp,
    reads: Vec<(Key, Timestamp)>,
    writes: HashMap<Key, RowValue>,
    /// Keys read-locked / write-locked so far (2PL only).
    locked_read: Vec<Key>,
    locked_write: Vec<Key>,
    aborted: bool,
}

impl Transaction {
    /// The snapshot timestamp of this transaction.
    pub fn start_ts(&self) -> Timestamp {
        self.start
    }

    /// Buffers a write.
    pub fn write(&mut self, key: Key, value: RowValue) {
        self.writes.insert(key, value);
    }

    /// Reads `key` at this transaction's snapshot, observing its own
    /// buffered writes first.
    pub fn read(&mut self, mgr: &TxnManager, key: Key) -> Option<RowValue> {
        if let Some(&v) = self.writes.get(&key) {
            return Some(v);
        }
        if mgr.scheme == CcScheme::TwoPhaseLocking {
            if self.aborted {
                return None;
            }
            // No-wait read lock; failure marks the txn for abort at
            // commit (caller may also bail early).
            if !mgr.try_read_lock(key, self) {
                self.aborted = true;
                return None;
            }
            // Under 2PL the lock — not a snapshot — provides isolation,
            // so reads observe the latest committed version.
            return mgr.read_latest(key);
        }
        let (value, version_ts) = mgr.read_at(key, self.start)?;
        self.reads.push((key, version_ts));
        Some(value)
    }

    /// Returns `true` if a 2PL lock conflict already doomed this
    /// transaction.
    pub fn is_doomed(&self) -> bool {
        self.aborted
    }
}

impl TxnManager {
    /// Creates an empty store under the given scheme, with a private
    /// timestamp oracle.
    pub fn new(scheme: CcScheme) -> Self {
        TxnManager::with_oracle(scheme, std::sync::Arc::new(TimestampOracle::new()))
    }

    /// Creates an empty store that draws timestamps from a **shared**
    /// oracle, so snapshots here and elsewhere (e.g. a columnar store's
    /// own snapshot reads) order against each other on one timeline.
    pub fn with_oracle(scheme: CcScheme, oracle: std::sync::Arc<TimestampOracle>) -> Self {
        TxnManager {
            versions: RwLock::new(HashMap::new()),
            locks: Mutex::new(HashMap::new()),
            oracle,
            scheme,
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
        }
    }

    /// The shared timestamp oracle.
    pub fn oracle(&self) -> &std::sync::Arc<TimestampOracle> {
        &self.oracle
    }

    /// The active scheme.
    pub fn scheme(&self) -> CcScheme {
        self.scheme
    }

    /// Starts a transaction at the current timestamp.
    pub fn begin(&self) -> Transaction {
        Transaction {
            start: self.oracle.next(),
            reads: Vec::new(),
            writes: HashMap::new(),
            locked_read: Vec::new(),
            locked_write: Vec::new(),
            aborted: false,
        }
    }

    /// Reads the committed value of `key` visible at `ts`, returning
    /// `(value, version_begin_ts)`.
    pub fn read_at(&self, key: Key, ts: Timestamp) -> Option<(RowValue, Timestamp)> {
        let map = self.versions.read();
        let chain = map.get(&key)?;
        chain.iter().rev().find(|v| v.begin <= ts && ts < v.end).map(|v| (v.value, v.begin))
    }

    /// The latest committed value of `key`.
    pub fn read_latest(&self, key: Key) -> Option<RowValue> {
        self.read_at(key, Timestamp(u64::MAX - 1)).map(|(v, _)| v)
    }

    /// Attempts to commit, returning the commit timestamp.
    ///
    /// # Errors
    ///
    /// Returns a [`CommitError`] and rolls the transaction back if
    /// validation (or lock acquisition) fails.
    pub fn commit(&self, mut txn: Transaction) -> Result<Timestamp, CommitError> {
        let result = self.commit_inner(&mut txn);
        self.release_locks(&txn);
        match &result {
            Ok(_) => {
                self.commits.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.aborts.fetch_add(1, Ordering::Relaxed);
            }
        }
        result
    }

    fn commit_inner(&self, txn: &mut Transaction) -> Result<Timestamp, CommitError> {
        if txn.aborted {
            let key = txn.reads.last().map(|&(k, _)| k).unwrap_or_default();
            return Err(CommitError::LockConflict(key));
        }
        if self.scheme == CcScheme::TwoPhaseLocking {
            // Upgrade/acquire write locks in sorted order (deadlock-free
            // by ordering; no-wait on conflict).
            let mut keys: Vec<Key> = txn.writes.keys().copied().collect();
            keys.sort_unstable();
            for k in keys {
                if !self.try_write_lock(k, txn) {
                    return Err(CommitError::LockConflict(k));
                }
            }
        }

        let mut map = self.versions.write();

        // Write-write validation (SI + OCC): no version newer than our
        // snapshot may exist on any written key.
        if self.scheme != CcScheme::TwoPhaseLocking {
            for key in txn.writes.keys() {
                if let Some(chain) = map.get(key) {
                    if let Some(last) = chain.last() {
                        if last.begin > txn.start {
                            return Err(CommitError::WriteConflict(*key));
                        }
                    }
                }
            }
        }
        // Read validation (OCC only): every read version must still be
        // the visible one.
        if self.scheme == CcScheme::SerializableOcc {
            for &(key, seen_ts) in &txn.reads {
                if let Some(chain) = map.get(&key) {
                    if let Some(last) = chain.last() {
                        if last.begin > txn.start && last.begin != seen_ts {
                            return Err(CommitError::ReadValidation(key));
                        }
                    }
                }
            }
        }

        let commit_ts = self.oracle.next();
        for (key, value) in txn.writes.drain() {
            let chain = match map.entry(key) {
                Entry::Occupied(e) => e.into_mut(),
                Entry::Vacant(e) => e.insert(Vec::new()),
            };
            if let Some(last) = chain.last_mut() {
                if last.end == Timestamp::INF {
                    last.end = commit_ts;
                }
            }
            chain.push(Version { value, begin: commit_ts, end: Timestamp::INF });
        }
        Ok(commit_ts)
    }

    /// Explicitly aborts a transaction (releases its locks).
    pub fn abort(&self, txn: Transaction) {
        self.release_locks(&txn);
        self.aborts.fetch_add(1, Ordering::Relaxed);
    }

    fn try_read_lock(&self, key: Key, txn: &mut Transaction) -> bool {
        if txn.locked_read.contains(&key) || txn.locked_write.contains(&key) {
            return true;
        }
        let mut locks = self.locks.lock();
        let state = locks.entry(key).or_default();
        if state.writer {
            return false;
        }
        state.readers += 1;
        txn.locked_read.push(key);
        true
    }

    fn try_write_lock(&self, key: Key, txn: &mut Transaction) -> bool {
        if txn.locked_write.contains(&key) {
            return true;
        }
        let mut locks = self.locks.lock();
        let state = locks.entry(key).or_default();
        let own_read = txn.locked_read.contains(&key);
        let other_readers = state.readers.saturating_sub(u32::from(own_read));
        if state.writer || other_readers > 0 {
            return false;
        }
        state.writer = true;
        if own_read {
            state.readers -= 1;
            txn.locked_read.retain(|&k| k != key);
        }
        txn.locked_write.push(key);
        true
    }

    fn release_locks(&self, txn: &Transaction) {
        if txn.locked_read.is_empty() && txn.locked_write.is_empty() {
            return;
        }
        let mut locks = self.locks.lock();
        for k in &txn.locked_read {
            if let Some(s) = locks.get_mut(k) {
                s.readers = s.readers.saturating_sub(1);
            }
        }
        for k in &txn.locked_write {
            if let Some(s) = locks.get_mut(k) {
                s.writer = false;
            }
        }
    }

    /// Total committed transactions.
    pub fn committed(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Total aborted transactions.
    pub fn aborted(&self) -> u64 {
        self.aborts.load(Ordering::Relaxed)
    }

    /// Number of versions retained for `key` (for GC/diagnostics).
    pub fn version_count(&self, key: Key) -> usize {
        self.versions.read().get(&key).map_or(0, Vec::len)
    }

    /// Drops versions no longer visible to any snapshot at or after
    /// `watermark`, returning how many were collected.
    pub fn vacuum(&self, watermark: Timestamp) -> usize {
        let mut map = self.versions.write();
        let mut removed = 0;
        for chain in map.values_mut() {
            let before = chain.len();
            // Keep the newest version visible at the watermark and
            // everything newer.
            if let Some(keep_from) = chain.iter().rposition(|v| v.begin <= watermark) {
                chain.drain(..keep_from);
            }
            removed += before - chain.len();
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_your_own_writes() {
        let mgr = TxnManager::new(CcScheme::SnapshotIsolation);
        let mut t = mgr.begin();
        assert_eq!(t.read(&mgr, 1), None);
        t.write(1, 7);
        assert_eq!(t.read(&mgr, 1), Some(7));
        mgr.commit(t).unwrap();
        assert_eq!(mgr.read_latest(1), Some(7));
    }

    #[test]
    fn snapshot_isolation_hides_later_commits() {
        let mgr = TxnManager::new(CcScheme::SnapshotIsolation);
        let mut setup = mgr.begin();
        setup.write(1, 10);
        mgr.commit(setup).unwrap();

        let mut reader = mgr.begin(); // snapshot before the update below
        let mut writer = mgr.begin();
        writer.write(1, 20);
        mgr.commit(writer).unwrap();

        assert_eq!(reader.read(&mgr, 1), Some(10), "reader sees its snapshot");
        assert_eq!(mgr.read_latest(1), Some(20));
    }

    #[test]
    fn first_committer_wins() {
        let mgr = TxnManager::new(CcScheme::SnapshotIsolation);
        let mut a = mgr.begin();
        let mut b = mgr.begin();
        a.write(5, 1);
        b.write(5, 2);
        mgr.commit(a).unwrap();
        let err = mgr.commit(b).unwrap_err();
        assert_eq!(err, CommitError::WriteConflict(5));
        assert_eq!(mgr.read_latest(5), Some(1));
        assert_eq!(mgr.committed(), 1);
        assert_eq!(mgr.aborted(), 1);
    }

    #[test]
    fn occ_detects_read_write_conflict() {
        let mgr = TxnManager::new(CcScheme::SerializableOcc);
        let mut setup = mgr.begin();
        setup.write(1, 100);
        mgr.commit(setup).unwrap();

        // T1 reads key 1, T2 updates key 1 and commits, then T1 tries to
        // commit a write based on the stale read → must fail validation.
        let mut t1 = mgr.begin();
        assert_eq!(t1.read(&mgr, 1), Some(100));
        let mut t2 = mgr.begin();
        t2.write(1, 200);
        mgr.commit(t2).unwrap();
        t1.write(2, 100 + 1);
        let err = mgr.commit(t1).unwrap_err();
        assert_eq!(err, CommitError::ReadValidation(1));
    }

    #[test]
    fn si_allows_stale_read_commit() {
        // Same interleaving as above commits fine under plain SI (write
        // skew is permitted) — this is precisely the SI/OCC difference.
        let mgr = TxnManager::new(CcScheme::SnapshotIsolation);
        let mut setup = mgr.begin();
        setup.write(1, 100);
        mgr.commit(setup).unwrap();
        let mut t1 = mgr.begin();
        assert_eq!(t1.read(&mgr, 1), Some(100));
        let mut t2 = mgr.begin();
        t2.write(1, 200);
        mgr.commit(t2).unwrap();
        t1.write(2, 101);
        assert!(mgr.commit(t1).is_ok());
    }

    #[test]
    fn two_phase_locking_conflicts() {
        let mgr = TxnManager::new(CcScheme::TwoPhaseLocking);
        let mut setup = mgr.begin();
        setup.write(1, 5);
        mgr.commit(setup).unwrap();

        let mut t1 = mgr.begin();
        assert_eq!(t1.read(&mgr, 1), Some(5)); // read lock held
        let mut t2 = mgr.begin();
        t2.write(1, 6);
        // t2 cannot write-lock while t1 holds the read lock.
        let err = mgr.commit(t2).unwrap_err();
        assert_eq!(err, CommitError::LockConflict(1));
        // t1 still commits fine (upgrades its own read lock).
        t1.write(1, 7);
        mgr.commit(t1).unwrap();
        assert_eq!(mgr.read_latest(1), Some(7));
    }

    #[test]
    fn doomed_2pl_txn_reports_lock_conflict() {
        let mgr = TxnManager::new(CcScheme::TwoPhaseLocking);
        let mut w = mgr.begin();
        w.write(9, 1);
        // Commit w but keep a second writer conflicting first.
        let mut other = mgr.begin();
        other.write(9, 2);
        mgr.commit(other).unwrap();
        mgr.commit(w).unwrap(); // 2PL: no conflict once locks free

        let mut t1 = mgr.begin();
        t1.write(9, 3); // buffered; lock taken at commit
        let mut t2 = mgr.begin();
        assert_eq!(t2.read(&mgr, 9), Some(1), "reads see last committer (w)");
        // t2 holds read lock; t1 commit fails.
        assert!(matches!(mgr.commit(t1), Err(CommitError::LockConflict(9))));
        mgr.abort(t2);
    }

    #[test]
    fn version_chain_and_vacuum() {
        let mgr = TxnManager::new(CcScheme::SnapshotIsolation);
        for v in 0..5 {
            let mut t = mgr.begin();
            t.write(1, v);
            mgr.commit(t).unwrap();
        }
        assert_eq!(mgr.version_count(1), 5);
        let removed = mgr.vacuum(mgr_latest_ts(&mgr));
        assert_eq!(removed, 4);
        assert_eq!(mgr.version_count(1), 1);
        assert_eq!(mgr.read_latest(1), Some(4));
    }

    fn mgr_latest_ts(mgr: &TxnManager) -> Timestamp {
        // A snapshot taken "now" sees only the newest committed versions.
        mgr.begin().start_ts()
    }

    #[test]
    fn concurrent_disjoint_writers_all_commit() {
        use std::sync::Arc;
        let mgr = Arc::new(TxnManager::new(CcScheme::SnapshotIsolation));
        let mut handles = Vec::new();
        for t in 0..4i64 {
            let mgr = Arc::clone(&mgr);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let mut txn = mgr.begin();
                    txn.write(t * 1000 + i, i);
                    mgr.commit(txn).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mgr.committed(), 400);
        assert_eq!(mgr.aborted(), 0);
        assert_eq!(mgr.read_latest(3 * 1000 + 99), Some(99));
    }

    #[test]
    fn display_impls() {
        assert_eq!(format!("{}", CcScheme::TwoPhaseLocking), "2pl");
        assert!(format!("{}", CommitError::WriteConflict(3)).contains("key 3"));
        let mgr = TxnManager::new(CcScheme::SnapshotIsolation);
        assert!(format!("{mgr:?}").contains("TxnManager"));
    }
}
