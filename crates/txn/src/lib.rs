//! # haec-txn
//!
//! Concurrency control, redo logging and database conversations — the
//! transactional substrate of the `haecdb` reproduction of *Lehner,
//! "Energy-Efficient In-Memory Database Computing" (DATE 2013)*.
//!
//! The paper touches transactions in three places, each mapped to a
//! module here:
//!
//! * §III "enhanced synchronization methods" + \[18\] → [`mvcc`]:
//!   multi-version storage with snapshot isolation, serializable OCC
//!   (the software analogue of TSX-style optimism), and a no-wait 2PL
//!   baseline — experiment E10 charts their contention behaviour.
//! * §III "multi-level reliability" + \[19\] → [`log`]: REDO logging with
//!   per-flush [`log::ReliabilityLevel`] QoS (volatile / local /
//!   replicated-k) and modelled latency/energy — experiment E15.
//! * §IV.A "database conversations" → [`conversation`]: long-lived
//!   application-private branches with explicit merge policies.
//!
//! ## Example
//!
//! ```
//! use haec_txn::prelude::*;
//!
//! let db = TxnManager::new(CcScheme::SerializableOcc);
//! let mut t = db.begin();
//! t.write(1, 10);
//! let ts = db.commit(t)?;
//! assert!(ts > Timestamp::ZERO);
//! # Ok::<(), haec_txn::mvcc::CommitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod conversation;
pub mod log;
pub mod mvcc;
pub mod oracle;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::conversation::{Conversation, MergePolicy, MergeReport};
    pub use crate::log::{CommitReceipt, Lsn, RedoLog, ReliabilityLevel};
    pub use crate::mvcc::{CcScheme, CommitError, Transaction, TxnManager};
    pub use crate::oracle::{Timestamp, TimestampOracle};
}

pub use conversation::{Conversation, MergePolicy};
pub use log::{RedoLog, ReliabilityLevel};
pub use mvcc::{CcScheme, CommitError, Transaction, TxnManager};
pub use oracle::{Timestamp, TimestampOracle};
