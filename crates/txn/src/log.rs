//! REDO logging with per-fragment reliability quality-of-service.
//!
//! The paper's "multi-level reliability" requirement (§III): *"REDO-log
//! information … should be stored in a replicated way, within a compute
//! cluster or even across multiple locations"* while *"intermediate
//! results of a currently running query could be placed in some 'cheap'
//! memory"*. [`ReliabilityLevel`] is exactly that QoS tag; the log
//! models the latency and energy each level costs so experiment E15 can
//! chart the overhead spectrum.

use haec_energy::units::ByteCount;
use haec_energy::ResourceProfile;
use std::fmt;
use std::time::Duration;

/// Durability class of a memory fragment or log record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReliabilityLevel {
    /// Plain DRAM: lost on failure; free. For recomputable intermediates.
    Volatile,
    /// Locally durable (battery-backed NVRAM / local SSD flush).
    Local,
    /// Synchronously replicated to `k` remote replicas.
    Replicated(
        /// Number of replicas (≥ 1).
        u8,
    ),
}

impl ReliabilityLevel {
    /// Can data at this level survive a single node crash?
    pub fn survives_node_failure(self) -> bool {
        matches!(self, ReliabilityLevel::Replicated(k) if k >= 1)
    }

    /// Can data at this level survive a process crash?
    pub fn survives_process_crash(self) -> bool {
        !matches!(self, ReliabilityLevel::Volatile)
    }
}

impl fmt::Display for ReliabilityLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReliabilityLevel::Volatile => f.write_str("volatile"),
            ReliabilityLevel::Local => f.write_str("local"),
            ReliabilityLevel::Replicated(k) => write!(f, "replicated({k})"),
        }
    }
}

/// Cost parameters of the logging substrate.
#[derive(Clone, Debug, PartialEq)]
pub struct LogCostModel {
    /// Local durable-write latency floor (e.g. NVRAM store fence).
    pub local_latency: Duration,
    /// Local durable-write bandwidth (bytes/s).
    pub local_bandwidth: f64,
    /// One-way network latency to a replica.
    pub replica_rtt_half: Duration,
    /// Replica link bandwidth (bytes/s).
    pub replica_bandwidth: f64,
}

impl Default for LogCostModel {
    fn default() -> Self {
        // SCM-logging numbers in the spirit of Fang et al. (ICDE'11),
        // which the paper cites for storage-class-memory logging.
        LogCostModel {
            local_latency: Duration::from_micros(5),
            local_bandwidth: 1.5e9,
            replica_rtt_half: Duration::from_micros(50),
            replica_bandwidth: 1.25e9,
        }
    }
}

/// A log sequence number.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lsn(pub u64);

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn{}", self.0)
    }
}

/// One REDO record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogRecord {
    /// Sequence number.
    pub lsn: Lsn,
    /// The writing transaction.
    pub txn_id: u64,
    /// Opaque payload (key/value image).
    pub payload: Vec<u8>,
}

/// Receipt returned by a (group) commit: what it cost.
#[derive(Clone, Debug, PartialEq)]
pub struct CommitReceipt {
    /// Records made durable by this flush.
    pub records: usize,
    /// Bytes made durable.
    pub bytes: ByteCount,
    /// Modelled time until durability at the requested level.
    pub latency: Duration,
    /// Modelled resource consumption (NIC traffic for replication).
    pub profile: ResourceProfile,
}

/// An in-memory REDO log with group commit and per-flush reliability
/// levels.
///
/// ```
/// use haec_txn::log::{RedoLog, ReliabilityLevel};
/// let mut log = RedoLog::new();
/// log.append(1, b"k=5,v=9".to_vec());
/// let receipt = log.flush(ReliabilityLevel::Replicated(2));
/// assert_eq!(receipt.records, 1);
/// assert!(receipt.latency.as_micros() >= 50);
/// ```
#[derive(Debug, Default)]
pub struct RedoLog {
    model: LogCostModel,
    records: Vec<LogRecord>,
    pending_from: usize,
    next_lsn: u64,
}

impl RedoLog {
    /// Creates a log with the default cost model.
    pub fn new() -> Self {
        RedoLog::default()
    }

    /// Creates a log with an explicit cost model.
    pub fn with_model(model: LogCostModel) -> Self {
        RedoLog { model, ..RedoLog::default() }
    }

    /// Appends a record to the pending group; returns its LSN. Nothing
    /// is durable until [`RedoLog::flush`].
    pub fn append(&mut self, txn_id: u64, payload: Vec<u8>) -> Lsn {
        let lsn = Lsn(self.next_lsn);
        self.next_lsn += 1;
        self.records.push(LogRecord { lsn, txn_id, payload });
        lsn
    }

    /// Number of records appended but not yet flushed.
    pub fn pending(&self) -> usize {
        self.records.len() - self.pending_from
    }

    /// Total records ever appended.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Flushes the pending group at `level`, returning the modelled
    /// cost. A flush with nothing pending returns a zero receipt (the
    /// group-commit no-op).
    pub fn flush(&mut self, level: ReliabilityLevel) -> CommitReceipt {
        let group = &self.records[self.pending_from..];
        let records = group.len();
        let bytes: u64 = group.iter().map(|r| r.payload.len() as u64 + 16).sum();
        self.pending_from = self.records.len();

        let bytes_ct = ByteCount::new(bytes);
        let (latency, profile) = match level {
            ReliabilityLevel::Volatile => (Duration::ZERO, ResourceProfile::default()),
            ReliabilityLevel::Local => {
                let t = self.model.local_latency
                    + Duration::from_secs_f64(bytes as f64 / self.model.local_bandwidth);
                let p = ResourceProfile { dram_written: bytes_ct, ..ResourceProfile::default() };
                (t, p)
            }
            ReliabilityLevel::Replicated(k) => {
                let k = k.max(1) as u64;
                // Replicas are written in parallel; latency is one RTT +
                // serialization of the group once (NIC is shared).
                let xfer = Duration::from_secs_f64((bytes * k) as f64 / self.model.replica_bandwidth);
                let t = self.model.replica_rtt_half * 2 + xfer;
                let p = ResourceProfile {
                    nic_bytes: ByteCount::new(bytes * k),
                    dram_written: bytes_ct,
                    ..ResourceProfile::default()
                };
                (t, p)
            }
        };
        CommitReceipt { records, bytes: bytes_ct, latency, profile }
    }

    /// Replays all durable records through `apply` (recovery path).
    pub fn replay<F: FnMut(&LogRecord)>(&self, mut apply: F) {
        for r in &self.records[..self.pending_from] {
            apply(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_flush_counts() {
        let mut log = RedoLog::new();
        assert!(log.is_empty());
        log.append(1, vec![0; 100]);
        log.append(1, vec![0; 50]);
        assert_eq!(log.pending(), 2);
        let r = log.flush(ReliabilityLevel::Local);
        assert_eq!(r.records, 2);
        assert_eq!(r.bytes.bytes(), 100 + 50 + 32);
        assert_eq!(log.pending(), 0);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn lsn_monotone() {
        let mut log = RedoLog::new();
        let a = log.append(1, vec![]);
        let b = log.append(2, vec![]);
        assert!(b > a);
    }

    #[test]
    fn volatile_is_free() {
        let mut log = RedoLog::new();
        log.append(1, vec![0; 4096]);
        let r = log.flush(ReliabilityLevel::Volatile);
        assert_eq!(r.latency, Duration::ZERO);
        assert!(r.profile.is_empty());
    }

    #[test]
    fn reliability_latency_ordering() {
        let payload = vec![0u8; 4096];
        let mk = |level| {
            let mut log = RedoLog::new();
            log.append(1, payload.clone());
            log.flush(level).latency
        };
        let v = mk(ReliabilityLevel::Volatile);
        let l = mk(ReliabilityLevel::Local);
        let r1 = mk(ReliabilityLevel::Replicated(1));
        let r3 = mk(ReliabilityLevel::Replicated(3));
        assert!(v < l && l < r1 && r1 < r3, "{v:?} {l:?} {r1:?} {r3:?}");
    }

    #[test]
    fn replication_charges_nic() {
        let mut log = RedoLog::new();
        log.append(1, vec![0; 1000]);
        let r = log.flush(ReliabilityLevel::Replicated(3));
        assert_eq!(r.profile.nic_bytes.bytes(), (1000 + 16) * 3);
    }

    #[test]
    fn empty_flush_is_noop() {
        let mut log = RedoLog::new();
        let r = log.flush(ReliabilityLevel::Replicated(2));
        assert_eq!(r.records, 0);
        assert_eq!(r.bytes.bytes(), 0);
    }

    #[test]
    fn group_commit_amortizes_latency() {
        // One flush of 10 records must be cheaper than 10 flushes of 1.
        let model = LogCostModel::default();
        let mut grouped = RedoLog::with_model(model.clone());
        for i in 0..10 {
            grouped.append(i, vec![0; 100]);
        }
        let grouped_latency = grouped.flush(ReliabilityLevel::Replicated(2)).latency;

        let mut single = RedoLog::with_model(model);
        let mut total = Duration::ZERO;
        for i in 0..10 {
            single.append(i, vec![0; 100]);
            total += single.flush(ReliabilityLevel::Replicated(2)).latency;
        }
        assert!(grouped_latency * 5 < total, "{grouped_latency:?} vs {total:?}");
    }

    #[test]
    fn replay_only_durable() {
        let mut log = RedoLog::new();
        log.append(1, vec![1]);
        log.flush(ReliabilityLevel::Local);
        log.append(2, vec![2]); // never flushed
        let mut seen = Vec::new();
        log.replay(|r| seen.push(r.txn_id));
        assert_eq!(seen, vec![1]);
    }

    #[test]
    fn survival_predicates() {
        assert!(!ReliabilityLevel::Volatile.survives_process_crash());
        assert!(ReliabilityLevel::Local.survives_process_crash());
        assert!(!ReliabilityLevel::Local.survives_node_failure());
        assert!(ReliabilityLevel::Replicated(2).survives_node_failure());
    }

    #[test]
    fn displays() {
        assert_eq!(format!("{}", ReliabilityLevel::Replicated(2)), "replicated(2)");
        assert_eq!(format!("{}", Lsn(4)), "lsn4");
    }
}
