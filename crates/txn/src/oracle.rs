//! The timestamp oracle: a wait-free source of monotonically increasing
//! logical timestamps shared by all transactions.

use std::fmt;

// Under `--cfg haec_loom` the counter becomes a model-checked atomic so
// `tests/loom_oracle.rs` can verify monotonicity across interleavings.
#[cfg(haec_loom)]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(haec_loom))]
use std::sync::atomic::{AtomicU64, Ordering};

/// Logical timestamp newtype.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The timestamp before any transaction.
    pub const ZERO: Timestamp = Timestamp(0);

    /// A timestamp later than every real one ("infinity", open version
    /// end).
    pub const INF: Timestamp = Timestamp(u64::MAX);
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Timestamp::INF {
            f.write_str("∞")
        } else {
            write!(f, "ts{}", self.0)
        }
    }
}

/// Hands out timestamps; one `fetch_add` per call, safe from any thread.
#[derive(Debug, Default)]
pub struct TimestampOracle {
    next: AtomicU64,
}

impl TimestampOracle {
    /// Creates an oracle starting at timestamp 1 (0 is reserved as the
    /// pre-history timestamp).
    pub fn new() -> Self {
        TimestampOracle { next: AtomicU64::new(1) }
    }

    /// Returns the next timestamp, strictly greater than all previous.
    pub fn next(&self) -> Timestamp {
        Timestamp(self.next.fetch_add(1, Ordering::SeqCst))
    }

    /// The most recently issued timestamp (0 if none yet).
    pub fn current(&self) -> Timestamp {
        Timestamp(self.next.load(Ordering::SeqCst).saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn monotonically_increasing() {
        let o = TimestampOracle::new();
        let a = o.next();
        let b = o.next();
        assert!(b > a);
        assert_eq!(o.current(), b);
    }

    #[test]
    fn starts_after_zero() {
        let o = TimestampOracle::new();
        assert_eq!(o.current(), Timestamp::ZERO);
        assert!(o.next() > Timestamp::ZERO);
    }

    #[test]
    fn unique_across_threads() {
        let o = Arc::new(TimestampOracle::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let o = Arc::clone(&o);
            handles.push(std::thread::spawn(move || (0..1000).map(|_| o.next().0).collect::<Vec<_>>()));
        }
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate timestamps issued");
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Timestamp(5)), "ts5");
        assert_eq!(format!("{}", Timestamp::INF), "∞");
    }
}
