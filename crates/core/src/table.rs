//! In-memory tables: columnar storage behind a schema.

use crate::error::{DbError, DbResult};
use crate::schema::{Record, SchemaMode, TableSchema};
use haec_columnar::chunk::Chunk;
use haec_columnar::column::Column;
use haec_columnar::value::{DataType, Value};

/// A named table: schema + dense columns + validity tracking.
#[derive(Clone, Debug)]
pub struct Table {
    name: String,
    schema: TableSchema,
    columns: Vec<Column>,
    /// Per-column validity (false = null sentinel at that row).
    validity: Vec<Vec<bool>>,
    rows: usize,
}

impl Table {
    /// Creates a table with the given schema.
    pub fn new(name: impl Into<String>, schema: TableSchema) -> Self {
        let columns = schema.columns().iter().map(|(_, t)| Column::new(*t)).collect();
        let width = schema.width();
        Table {
            name: name.into(),
            schema,
            columns,
            validity: vec![Vec::new(); width],
            rows: 0,
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Returns `true` if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Appends one record, evolving a flexible schema as needed.
    ///
    /// # Errors
    ///
    /// Propagates schema violations and type mismatches.
    pub fn insert(&mut self, record: &Record) -> DbResult<()> {
        let values = self.schema.admit(record)?;
        // Schema may have grown: materialize new columns backfilled with
        // sentinel nulls.
        while self.columns.len() < self.schema.width() {
            let (_, dtype) = &self.schema.columns()[self.columns.len()];
            let mut col = Column::new(*dtype);
            for _ in 0..self.rows {
                col.push(Value::Null).expect("null is universal");
            }
            self.columns.push(col);
            self.validity.push(vec![false; self.rows]);
        }
        for ((col, valid), value) in self.columns.iter_mut().zip(&mut self.validity).zip(values) {
            valid.push(!value.is_null());
            col.push(value).map_err(|e| DbError::TypeMismatch {
                column: String::new(),
                expected: e.expected,
            })?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Borrowed view of one column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.schema.position(name).map(|i| &self.columns[i])
    }

    /// The validity vector of one column.
    pub fn validity(&self, name: &str) -> Option<&[bool]> {
        self.schema.position(name).map(|i| self.validity[i].as_slice())
    }

    /// Count of nulls in a column.
    pub fn null_count(&self, name: &str) -> Option<usize> {
        self.validity(name).map(|v| v.iter().filter(|&&b| !b).count())
    }

    /// Materializes the whole table as a [`Chunk`].
    pub fn to_chunk(&self) -> Chunk {
        let cols = self
            .schema
            .columns()
            .iter()
            .zip(&self.columns)
            .map(|((n, _), c)| (n.clone(), c.clone()))
            .collect();
        Chunk::new(cols).expect("table columns are equal length")
    }

    /// Approximate footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.columns.iter().map(Column::size_bytes).sum::<usize>() + self.rows * self.columns.len() / 8
    }

    /// Per-table planner statistics.
    pub fn planner_meta(&self) -> haec_planner::catalog::TableMeta {
        let columns = self
            .schema
            .columns()
            .iter()
            .zip(&self.columns)
            .map(|((name, dtype), col)| {
                let stats = col.stats();
                let (min, max) = match (&stats.min, &stats.max) {
                    (Some(Value::Int(a)), Some(Value::Int(b))) => (*a, *b),
                    _ => (0, 0),
                };
                let _ = dtype;
                haec_planner::catalog::ColumnMeta {
                    name: name.clone(),
                    ndv: stats.distinct,
                    min,
                    max,
                    indexed: false, // the Database layer overlays index info
                }
            })
            .collect();
        haec_planner::catalog::TableMeta {
            name: self.name.clone(),
            rows: self.rows as u64,
            row_bytes: (self.size_bytes() / self.rows.max(1)) as u64,
            columns,
        }
    }
}

/// Convenience constructor for common strict schemas.
pub fn strict_schema(cols: &[(&str, DataType)]) -> TableSchema {
    TableSchema::strict(cols.iter().map(|(n, t)| (n.to_string(), *t)).collect())
}

/// Returns `true` if the table was declared flexible.
pub fn is_flexible(table: &Table) -> bool {
    table.schema().mode() == SchemaMode::Flexible
}

#[cfg(test)]
mod tests {
    use super::*;
    use haec_columnar::value::CmpOp;

    fn orders() -> Table {
        let mut t = Table::new("orders", strict_schema(&[("id", DataType::Int64), ("amount", DataType::Int64)]));
        for i in 0..10 {
            t.insert(&Record::new().with("id", i as i64).with("amount", (i * 10) as i64)).unwrap();
        }
        t
    }

    #[test]
    fn insert_and_read_back() {
        let t = orders();
        assert_eq!(t.rows(), 10);
        assert!(!t.is_empty());
        let chunk = t.to_chunk();
        assert_eq!(chunk.rows(), 10);
        assert_eq!(chunk.row(3).unwrap(), vec![Value::Int(3), Value::Int(30)]);
    }

    #[test]
    fn column_access() {
        let t = orders();
        assert!(t.column("amount").is_some());
        assert!(t.column("zz").is_none());
        assert_eq!(t.column("amount").unwrap().as_int64().unwrap()[5], 50);
    }

    #[test]
    fn flexible_table_grows_columns() {
        let mut t = Table::new("events", TableSchema::flexible());
        t.insert(&Record::new().with("a", 1i64)).unwrap();
        t.insert(&Record::new().with("a", 2i64).with("b", "x")).unwrap();
        t.insert(&Record::new().with("b", "y")).unwrap();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.schema().width(), 2);
        // Backfilled nulls: b missing in row 0, a missing in row 2.
        assert_eq!(t.null_count("b"), Some(1));
        assert_eq!(t.null_count("a"), Some(1));
        // Sentinel values are stored densely.
        assert_eq!(t.column("a").unwrap().as_int64().unwrap(), &[1, 2, 0]);
        assert!(is_flexible(&t));
    }

    #[test]
    fn strict_rejects_drift() {
        let mut t = orders();
        assert!(t.insert(&Record::new().with("id", 1i64)).is_err(), "missing amount");
        assert!(t
            .insert(&Record::new().with("id", 1i64).with("amount", 1i64).with("new", 1i64))
            .is_err());
        assert_eq!(t.rows(), 10, "failed inserts must not partially apply rows");
    }

    #[test]
    fn planner_meta_reflects_data() {
        let t = orders();
        let meta = t.planner_meta();
        assert_eq!(meta.rows, 10);
        let id = meta.columns.iter().find(|c| c.name == "id").unwrap();
        assert_eq!(id.min, 0);
        assert_eq!(id.max, 9);
        assert_eq!(id.ndv, 10);
        // Check the stats drive sane selectivity.
        let sel = haec_planner::access::estimate_selectivity(&meta, "id", CmpOp::Lt, 5);
        assert!((sel - 0.5).abs() < 0.01);
    }

    #[test]
    fn size_grows_with_rows() {
        let small = orders().size_bytes();
        let mut big = orders();
        for i in 10..1000 {
            big.insert(&Record::new().with("id", i as i64).with("amount", 1i64)).unwrap();
        }
        assert!(big.size_bytes() > small);
    }
}
