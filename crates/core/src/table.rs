//! In-memory tables: segmented main/delta columnar storage behind a
//! schema, versioned for MVCC snapshot reads.
//!
//! A [`Table`] is the paper's two-store design: an immutable, compressed
//! **main** (a vector of [`Segment`]s, each ≤ [`SEGMENT_ROWS`] rows,
//! int columns as [`haec_columnar::encoding::EncodedInts`], strings as
//! dictionary codes, per-column zone maps) plus a flat, append-only
//! **delta** tail that absorbs inserts at `Vec::push` speed. An explicit
//! [`Table::merge`] compacts the delta into new main segments and
//! reports the work done as [`MergeStats`] so the caller can charge it
//! to the energy meter; the `Database` layer triggers it automatically
//! once the delta exceeds [`Table::merge_threshold`].
//!
//! Concurrency model: the `Table` itself is a thread-safe handle.
//! Writers append under a short write lock, drawing one timestamp per
//! row from the shared [`TimestampOracle`]; readers pin a
//! [`TableSnapshot`] — an `Arc` to the current immutable main version
//! plus a copy of the delta prefix visible at their timestamp — and
//! then never touch the lock again. [`Table::merge`] runs in two
//! phases: it compresses the delta **outside** all locks and then
//! publishes the new segment set as an atomic `Arc` swap, so readers
//! are never blocked for the duration of a merge; old versions are
//! reclaimed epoch-style when the last snapshot pinning them drops.
//!
//! Row identity is stable: global row ids are insertion order, segments
//! cover `[0, main_rows)` in merge order and the delta covers
//! `[main_rows, rows)` — so secondary indexes survive merges untouched.

use crate::error::{DbError, DbResult};
use crate::schema::{Record, SchemaMode, TableSchema};
use crate::segment::{MainSet, MergeStats, SegColumn, Segment, SEGMENT_ROWS};
use haec_columnar::chunk::Chunk;
use haec_columnar::column::Column;
use haec_columnar::dict::DictColumn;
use haec_columnar::value::{DataType, Value};
use haec_planner::access::ZoneMapMeta;
use haec_txn::oracle::{Timestamp, TimestampOracle};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Hit-density crossover between the two ways to read a compressed
/// segment column: below one hit per `SPARSE_HIT_RATIO` rows, a gather
/// uses compressed random access (`EncodedInts::get` — O(1) per hit,
/// but a pointer-chase and partial-word decode per cell); at or above
/// it, stream-decoding the whole segment once wins, because a
/// sequential decode step costs roughly an eighth of a random access on
/// the bit-packed/FOR schemes and prefetches perfectly. Every sparse-
/// vs-dense branch in projection, gather, join-key extraction and
/// aggregation pushdown tests the same 1:8 crossover via
/// [`sparse_hits`], so execution and billing can never disagree on
/// which path ran.
pub const SPARSE_HIT_RATIO: usize = 8;

/// Returns `true` when `hits` out of `rows` is below the 1-in-
/// [`SPARSE_HIT_RATIO`] density — read per hit (compressed random
/// access), not per segment (stream-decode).
pub fn sparse_hits(hits: usize, rows: usize) -> bool {
    hits * SPARSE_HIT_RATIO < rows
}

/// Where a global row id physically lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowLoc {
    /// In main segment `seg` at local offset `local`.
    Main {
        /// Segment index.
        seg: usize,
        /// Row offset within the segment.
        local: usize,
    },
    /// In the delta tail at offset `local`.
    Delta {
        /// Row offset within the delta.
        local: usize,
    },
}

/// One store's share of an ascending position list (see
/// `TableSnapshot::for_each_store`); `hits: None` = every row of the
/// store.
enum StoreHits<'p> {
    /// Positions landing in main segment `seg` (first global row `base`).
    Main {
        /// Segment index.
        seg: usize,
        /// First global row id of the segment.
        base: usize,
        /// The positions (global row ids), or `None` for all rows.
        hits: Option<&'p [u32]>,
    },
    /// Positions landing in the delta tail.
    Delta {
        /// The positions (global row ids), or `None` for all rows.
        hits: Option<&'p [u32]>,
    },
}

/// The mutable state of a table, guarded by the handle's `RwLock`.
#[derive(Debug)]
struct TableState {
    schema: TableSchema,
    /// The current immutable main version; swapped wholesale at merge.
    main: Arc<MainSet>,
    /// Flat write-optimized tail (one dense column per schema column).
    delta: Vec<Column>,
    /// Per-column validity of the delta (false = null sentinel).
    delta_validity: Vec<Vec<bool>>,
    /// Insert timestamp of each delta row, in append order. Timestamps
    /// are drawn from the database's shared oracle *under the write
    /// lock*, so this vector is always sorted ascending: timestamp
    /// order and append order agree, and "rows visible at ts" is
    /// always a prefix.
    insert_ts: Vec<u64>,
    rows: usize,
}

/// A named table: a thread-safe handle over compressed main segments +
/// flat delta + validity tracking.
///
/// All reads go through a [`TableSnapshot`] (see [`Table::snapshot`],
/// [`Table::pin_at`], [`Table::read`]); writes ([`Table::insert`],
/// [`Table::merge`]) take `&self` and synchronize internally, so a
/// `Table` can be shared across threads behind an `Arc`.
#[derive(Debug)]
pub struct Table {
    name: String,
    inner: RwLock<TableState>,
    /// Serializes mergers with each other (readers and writers are
    /// *not* held up by this — merge publishes via a brief write lock).
    merge_lock: Mutex<()>,
    /// Delta row count that triggers an automatic merge (at the
    /// `Database` layer, so the work is metered).
    merge_threshold: AtomicUsize,
}

impl Table {
    /// Creates a table with the given schema.
    pub fn new(name: impl Into<String>, schema: TableSchema) -> Self {
        let delta: Vec<Column> = schema.columns().iter().map(|(_, t)| Column::new(*t)).collect();
        let width = schema.width();
        Table {
            name: name.into(),
            inner: RwLock::new(TableState {
                schema,
                main: Arc::new(MainSet::empty()),
                delta,
                delta_validity: vec![Vec::new(); width],
                insert_ts: Vec::new(),
                rows: 0,
            }),
            merge_lock: Mutex::new(()),
            merge_threshold: AtomicUsize::new(SEGMENT_ROWS),
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A clone of the current schema (which may evolve under flexible
    /// mode; a [`TableSnapshot`] carries the schema it pinned).
    pub fn schema(&self) -> TableSchema {
        self.inner.read().schema.clone()
    }

    /// Number of rows (main + delta) right now.
    pub fn rows(&self) -> usize {
        self.inner.read().rows
    }

    /// Returns `true` if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows() == 0
    }

    /// Rows in the compressed main store right now.
    pub fn main_rows(&self) -> usize {
        self.inner.read().main.rows
    }

    /// Rows in the flat delta tail right now.
    pub fn delta_rows(&self) -> usize {
        let st = self.inner.read();
        st.rows - st.main.rows
    }

    /// The current main-version epoch (bumped once per merge).
    pub fn epoch(&self) -> u64 {
        self.inner.read().main.epoch
    }

    /// Delta size (rows) above which the `Database` merges automatically.
    pub fn merge_threshold(&self) -> usize {
        self.merge_threshold.load(Ordering::Relaxed)
    }

    /// Sets the auto-merge threshold (use `usize::MAX` to disable).
    pub fn set_merge_threshold(&self, rows: usize) {
        self.merge_threshold.store(rows.max(1), Ordering::Relaxed);
    }

    /// Returns `true` once the delta has outgrown the merge threshold.
    pub fn needs_merge(&self) -> bool {
        self.delta_rows() >= self.merge_threshold()
    }

    /// Appends one record to the delta, evolving a flexible schema as
    /// needed, and stamps the row with the next timestamp from
    /// `oracle`. Returns the timestamp and the row's global id.
    ///
    /// The timestamp is drawn **under the table's write lock**, so
    /// append order and timestamp order always agree (`insert_ts` stays
    /// sorted) — the property that makes "rows visible at ts" a prefix.
    /// All inserts into one table must therefore share one oracle (the
    /// `Database` owns it).
    ///
    /// Inserts never touch the main store; call [`Table::merge`] (or let
    /// the `Database` auto-merge) to compact the delta.
    ///
    /// # Errors
    ///
    /// Propagates schema violations and type mismatches.
    pub fn insert(&self, record: &Record, oracle: &TimestampOracle) -> DbResult<(Timestamp, u32)> {
        let mut st = self.inner.write();
        let delta_rows = st.rows - st.main.rows;
        let st = &mut *st;
        append_record(&mut st.schema, &mut st.delta, &mut st.delta_validity, delta_rows, record)?;
        let ts = oracle.next();
        debug_assert!(
            st.insert_ts.last().is_none_or(|&t| t < ts.0),
            "all inserts into a table must share one oracle"
        );
        st.insert_ts.push(ts.0);
        let row = st.rows as u32;
        st.rows += 1;
        Ok((ts, row))
    }

    /// Pins a snapshot of the table as of a fresh timestamp drawn from
    /// `oracle`: the entire current state is visible (every existing
    /// delta row committed before the lock was taken, and nothing
    /// after).
    pub fn snapshot(&self, oracle: &TimestampOracle) -> TableSnapshot {
        let st = self.inner.read();
        // Drawn under the read lock: inserts (write lock) cannot
        // interleave, so every row present has a smaller timestamp and
        // every later insert gets a larger one.
        let ts = oracle.next();
        self.snap(&st, st.rows - st.main.rows, ts)
    }

    /// Pins a snapshot as of an **existing** timestamp `ts`: exactly
    /// the rows with insert timestamp ≤ `ts` are visible.
    ///
    /// Returns `None` if a merge has already folded rows *newer* than
    /// `ts` into the main store — segments carry no per-row timestamps,
    /// so such a version cannot serve the older snapshot; the caller
    /// (the `Database`'s multi-table pin) retries with a fresh
    /// timestamp.
    pub fn pin_at(&self, ts: Timestamp) -> Option<TableSnapshot> {
        let st = self.inner.read();
        if st.main.max_ts > ts.0 {
            return None;
        }
        let visible = st.insert_ts.partition_point(|&t| t <= ts.0);
        Some(self.snap(&st, visible, ts))
    }

    /// The latest state as a snapshot (timestamp ∞) — the view used by
    /// single-statement reads, diagnostics and tests.
    pub fn read(&self) -> TableSnapshot {
        let st = self.inner.read();
        self.snap(&st, st.rows - st.main.rows, Timestamp::INF)
    }

    fn snap(&self, st: &TableState, visible: usize, ts: Timestamp) -> TableSnapshot {
        TableSnapshot {
            name: self.name.clone(),
            schema: st.schema.clone(),
            main: Arc::clone(&st.main),
            delta: st.delta.iter().map(|c| column_prefix(c, visible)).collect(),
            delta_validity: st.delta_validity.iter().map(|v| v[..visible].to_vec()).collect(),
            rows: st.main.rows + visible,
            ts,
        }
    }

    /// Compacts the entire delta into new immutable main segments of at
    /// most [`SEGMENT_ROWS`] rows each, re-encoding every column with
    /// [`haec_columnar::encoding::EncodedInts::auto`] and remapping
    /// strings into the table-global dictionaries, then publishes the
    /// result as a new main version in one atomic swap.
    ///
    /// Readers are never blocked: the expensive re-encoding runs with
    /// no lock held, bracketed by two brief critical sections (pin the
    /// delta; publish the new `MainSet` and drop the compacted delta
    /// prefix). Snapshots pinned before the swap keep reading the old
    /// version through their `Arc`; the old segments are freed when the
    /// last such snapshot drops. Concurrent mergers serialize on an
    /// internal lock; inserts landing during the build simply stay in
    /// the delta for the next merge.
    ///
    /// Returns [`MergeStats`] describing the re-encoding work so the
    /// caller can charge its CPU/DRAM cost; merging an empty delta is a
    /// free no-op.
    pub fn merge(&self) -> MergeStats {
        let _serialize = self.merge_lock.lock();
        // Phase 1 — pin: under a brief read lock, clone the delta
        // prefix to compact and the Arc of the version to extend.
        let (old_main, delta, validity, schema, n, max_ts) = {
            let st = self.inner.read();
            let n = st.rows - st.main.rows;
            if n == 0 {
                return MergeStats::default();
            }
            (
                Arc::clone(&st.main),
                st.delta.clone(),
                st.delta_validity.clone(),
                st.schema.clone(),
                n,
                st.insert_ts[n - 1],
            )
        };
        // Build — no lock held; readers pin snapshots and writers
        // append freely while the delta is re-encoded. A fault anywhere
        // in this phase unwinds with only local state in hand: the
        // pinned `Arc`s drop, the table keeps its old version, and the
        // next merge re-pins the (still intact) delta from scratch.
        fail::fail_point!("merge::build");
        let mut dicts: Vec<Option<DictColumn>> = (0..schema.width())
            .map(|idx| {
                old_main
                    .dicts
                    .get(idx)
                    .cloned()
                    .flatten()
                    .or_else(|| (schema.columns()[idx].1 == DataType::Str).then(DictColumn::new))
            })
            .collect();
        // Local→global dictionary remaps, once per merge (every segment
        // of this merge shares the same delta-local dictionaries).
        let remaps: Vec<Option<Vec<i64>>> = delta
            .iter()
            .zip(&mut dicts)
            .map(|(col, dict)| match (col.as_str(), dict.as_mut()) {
                (Some(local), Some(global)) => Some(crate::segment::build_remap(local, global)),
                _ => None,
            })
            .collect();
        fail::fail_point!("merge::remap");
        // Sorting merge: a declared sort key reorders the pinned batch
        // before it is chunked into segments, so every segment built
        // here is internally sorted and the batch's segments carry
        // disjoint ascending key ranges. The sort is **stable**, which
        // together with prefix visibility keeps MVCC correct: a merge
        // folds an entire timestamp prefix and `pin_at` refuses
        // timestamps older than the folded `max_ts`, so no snapshot can
        // ever observe part of a reordered batch. String keys sort by
        // their **global dictionary code** (insertion order of first
        // appearance, not collation) — the remap is computed above
        // precisely so the sort and the stored codes agree.
        let sorted_by = schema.sort_key().and_then(|k| schema.position(k));
        let (delta, validity) = match sorted_by {
            Some(key) => {
                let keys: Vec<i64> = match &delta[key] {
                    Column::Int64(v) => v.clone(),
                    Column::Str(d) => {
                        let remap = remaps[key].as_ref().expect("string column has a remap table");
                        d.codes().iter().map(|&c| remap[c as usize]).collect()
                    }
                    Column::Float64(_) => unreachable!("sort keys are validated Int64 or Str"),
                };
                let mut perm: Vec<u32> = (0..n as u32).collect();
                perm.sort_by_key(|&i| keys[i as usize]); // stable
                let delta = delta.iter().map(|c| permute_column(c, &perm)).collect();
                let validity =
                    validity.iter().map(|v| perm.iter().map(|&i| v[i as usize]).collect()).collect();
                (delta, validity)
            }
            None => (delta, validity),
        };
        let mut stats = MergeStats { rows_merged: n, ..MergeStats::default() };
        let mut segments = old_main.segments.clone();
        let mut bases = old_main.bases.clone();
        let mut main_rows = old_main.rows;
        let mut start = 0;
        while start < n {
            fail::fail_point!("merge::segment");
            let end = (start + SEGMENT_ROWS).min(n);
            let seg = Segment::build(&delta, &validity, start, end, &remaps, sorted_by);
            stats.raw_bytes += seg.raw_bytes();
            stats.encoded_bytes += seg.encoded_bytes();
            stats.segments_created += 1;
            bases.push(main_rows);
            main_rows += seg.rows();
            segments.push(Arc::new(seg));
            start = end;
        }
        let new_main =
            Arc::new(MainSet { segments, bases, rows: main_rows, dicts, epoch: old_main.epoch + 1, max_ts });
        // Phase 2 — publish: under a brief write lock, swap in the new
        // version and drop the compacted prefix from the delta. Rows
        // appended during the build (and columns a flexible schema grew
        // meanwhile — their first `n` cells are null backfill for rows
        // that now live in segments predating the column) keep their
        // tail positions.
        let mut st = self.inner.write();
        // The publish failpoint sits after the write lock is taken but
        // before the first field mutation: an injected panic here
        // releases the (non-poisoning) lock on unwind with the old
        // state untouched — the strictest spot to prove the swap is
        // all-or-nothing.
        fail::fail_point!("merge::publish");
        debug_assert_eq!(st.main.epoch, old_main.epoch, "mergers are serialized");
        st.delta = st.delta.iter().map(|c| column_suffix(c, n)).collect();
        st.delta_validity = st.delta_validity.iter().map(|v| v[n..].to_vec()).collect();
        st.insert_ts.drain(..n);
        st.main = new_main;
        st.rows = st.main.rows + st.insert_ts.len();
        stats
    }
}

/// Copies the first `visible` rows of a delta column — the prefix an
/// MVCC snapshot sees. String columns keep their full delta-local
/// dictionary ([`DictColumn::sliced`]): the kept codes stay decodable
/// and later dictionary growth is invisible through the slice.
fn column_prefix(col: &Column, visible: usize) -> Column {
    match col {
        Column::Int64(v) => Column::Int64(v[..visible].to_vec()),
        Column::Float64(v) => Column::Float64(v[..visible].to_vec()),
        Column::Str(d) => Column::Str(d.sliced(0, visible)),
    }
}

/// Drops the first `n` rows of a delta column — the remainder kept
/// after a merge compacted the prefix. String columns **rebuild** a
/// compact delta-local dictionary from the surviving rows rather than
/// slicing: `build_remap` interns every local dictionary entry into the
/// table-global dictionary at the next merge, so stale entries carried
/// over from compacted rows would pollute the global dictionary and
/// inflate the planner's distinct counts.
fn column_suffix(col: &Column, n: usize) -> Column {
    match col {
        Column::Int64(v) => Column::Int64(v[n..].to_vec()),
        Column::Float64(v) => Column::Float64(v[n..].to_vec()),
        Column::Str(d) => {
            let mut out = DictColumn::new();
            for i in n..d.len() {
                out.push(d.get(i).expect("row in range"));
            }
            Column::Str(out)
        }
    }
}

/// Reorders a pinned delta column by a sort permutation (`perm[i]` is
/// the source row of output row `i`). String columns keep their
/// delta-local dictionary untouched and permute only the code vector,
/// so the local→global remap tables computed before the sort stay
/// valid for the permuted column.
fn permute_column(col: &Column, perm: &[u32]) -> Column {
    match col {
        Column::Int64(v) => Column::Int64(perm.iter().map(|&i| v[i as usize]).collect()),
        Column::Float64(v) => Column::Float64(perm.iter().map(|&i| v[i as usize]).collect()),
        Column::Str(d) => Column::Str(DictColumn::from_codes(
            d.iter_dict().map(String::from).collect(),
            perm.iter().map(|&i| d.codes()[i as usize]).collect(),
        )),
    }
}

/// Appends one record to a delta (shared by [`Table::insert`] and
/// [`TableSnapshot::with_pending`]), evolving a flexible schema as
/// needed: new columns materialize backfilled with sentinel nulls
/// (`delta_rows` of them — main segments that predate a column report
/// their rows as null implicitly).
fn append_record(
    schema: &mut TableSchema,
    delta: &mut Vec<Column>,
    delta_validity: &mut Vec<Vec<bool>>,
    delta_rows: usize,
    record: &Record,
) -> DbResult<()> {
    let values = schema.admit(record)?;
    while delta.len() < schema.width() {
        let (_, dtype) = &schema.columns()[delta.len()];
        let mut col = Column::new(*dtype);
        for _ in 0..delta_rows {
            col.push(Value::Null).expect("null is universal");
        }
        delta.push(col);
        delta_validity.push(vec![false; delta_rows]);
    }
    for ((col, valid), value) in delta.iter_mut().zip(delta_validity.iter_mut()).zip(values) {
        valid.push(!value.is_null());
        col.push(value).map_err(|e| DbError::TypeMismatch { column: String::new(), expected: e.expected })?;
    }
    Ok(())
}

/// An immutable view of a table as of one timestamp: an `Arc` to the
/// main version current at the pin plus a copy of the delta prefix
/// visible at the snapshot's timestamp.
///
/// This is the type the whole read path operates on — scans,
/// aggregates, joins, projections and planner statistics all see one
/// frozen state, whatever inserts and merges do concurrently. The
/// pinned `MainSet` also freezes the table-global string
/// dictionaries, so codes always decode against exactly the dictionary
/// state the snapshot saw.
#[derive(Clone, Debug)]
pub struct TableSnapshot {
    name: String,
    schema: TableSchema,
    main: Arc<MainSet>,
    /// The visible delta prefix (one dense column per schema column).
    delta: Vec<Column>,
    /// Per-column validity of the visible delta (false = null).
    delta_validity: Vec<Vec<bool>>,
    rows: usize,
    ts: Timestamp,
}

impl TableSnapshot {
    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema as of the pin.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The snapshot's timestamp ([`Timestamp::INF`] for a latest-state
    /// view).
    pub fn timestamp(&self) -> Timestamp {
        self.ts
    }

    /// The main-version epoch this snapshot pinned.
    pub fn epoch(&self) -> u64 {
        self.main.epoch
    }

    /// Number of visible rows (main + visible delta prefix).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Returns `true` if the snapshot sees no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Rows in the compressed main store.
    pub fn main_rows(&self) -> usize {
        self.main.rows
    }

    /// Visible rows in the flat delta tail.
    pub fn delta_rows(&self) -> usize {
        self.rows - self.main.rows
    }

    /// The immutable main segments, oldest first.
    pub fn segments(&self) -> &[Arc<Segment>] {
        &self.main.segments
    }

    /// First global row id of segment `i`.
    pub fn segment_base(&self, i: usize) -> usize {
        self.main.bases[i]
    }

    /// The table-global dictionary of string column `idx` as pinned
    /// (`None` for non-string columns and before the first merge).
    pub fn global_dict(&self, idx: usize) -> Option<&DictColumn> {
        self.main.dicts.get(idx).and_then(Option::as_ref)
    }

    /// The visible delta tail of column `idx` (dense, uncompressed).
    pub fn delta_column(&self, idx: usize) -> Option<&Column> {
        self.delta.get(idx)
    }

    /// A copy of this snapshot with `records` appended as extra
    /// (uncommitted) delta rows — the read-your-own-writes view a
    /// transaction evaluates queries against: committed state as pinned,
    /// plus the transaction's private overlay, visible to nobody else.
    ///
    /// # Errors
    ///
    /// Propagates schema violations and type mismatches.
    pub fn with_pending(&self, records: &[Record]) -> DbResult<TableSnapshot> {
        let mut snap = self.clone();
        for record in records {
            let delta_rows = snap.rows - snap.main.rows;
            append_record(&mut snap.schema, &mut snap.delta, &mut snap.delta_validity, delta_rows, record)?;
            snap.rows += 1;
        }
        Ok(snap)
    }

    /// Resolves a global row id to its physical location.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()`.
    pub fn locate(&self, row: usize) -> RowLoc {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        if row >= self.main.rows {
            return RowLoc::Delta { local: row - self.main.rows };
        }
        let seg = self.main.bases.partition_point(|&b| b <= row) - 1;
        RowLoc::Main { seg, local: row - self.main.bases[seg] }
    }

    /// The integer value of column `idx` at global row `row` (sentinel 0
    /// for rows in segments that predate the column).
    ///
    /// Returns `None` if the column is not an integer column.
    pub fn get_int(&self, idx: usize, row: usize) -> Option<i64> {
        match self.locate(row) {
            RowLoc::Delta { local } => self.delta.get(idx)?.as_int64().map(|v| v[local]),
            RowLoc::Main { seg, local } => {
                if *self.schema.columns().get(idx).map(|(_, t)| t)? != DataType::Int64 {
                    return None;
                }
                match self.main.segments[seg].column(idx) {
                    Some(SegColumn::Int { data, .. }) => Some(data.get(local)),
                    None => Some(0), // segment predates the column: sentinel
                    _ => None,
                }
            }
        }
    }

    /// Returns whether the string value of column `idx` at global row
    /// `row` equals `value` (`None` if not a string column).
    pub fn str_eq(&self, idx: usize, row: usize, value: &str) -> Option<bool> {
        match self.locate(row) {
            RowLoc::Delta { local } => {
                let d = self.delta.get(idx)?.as_str()?;
                Some(d.get(local) == Some(value))
            }
            RowLoc::Main { seg, local } => {
                let global = self.global_dict(idx)?;
                match self.main.segments[seg].column(idx) {
                    Some(SegColumn::Str { codes, .. }) => {
                        Some(global.decode(codes.get(local) as u32) == Some(value))
                    }
                    None => Some(value.is_empty()), // sentinel ""
                    _ => None,
                }
            }
        }
    }

    /// Gathers the integer values of column `name` at `positions`
    /// (ascending global row ids), or the full column when `positions`
    /// is `None` — an **unmetered** convenience over
    /// [`TableSnapshot::materialize_columns`] for index builds,
    /// diagnostics and tests. Query execution goes through
    /// `materialize_columns`, which reports the work done.
    pub fn gather_ints(&self, name: &str, positions: Option<&[u32]>) -> Option<Vec<i64>> {
        let idx = self.schema.position(name)?;
        if self.schema.columns()[idx].1 != DataType::Int64 {
            return None;
        }
        match self.materialize_column(idx, positions, &mut GatherStats::default()) {
            Column::Int64(v) => Some(v),
            _ => None,
        }
    }

    /// Gathers the named columns at arbitrary `rows` — global row ids in
    /// **any order, duplicates allowed** — the shape a join's surviving
    /// `(build_row, probe_row)` pairs have. This is the late-
    /// materialization step of join execution: only the rows that
    /// actually survive the join are ever touched.
    ///
    /// Integer and float cells use per-row (compressed random-access)
    /// reads; string cells are gathered **code-to-code**: the output
    /// [`DictColumn`] shares one dictionary across all gathered rows,
    /// each distinct segment/delta code is decoded and interned exactly
    /// once, and every further occurrence is appended by code
    /// ([`DictColumn::push_code`]) without hashing the string again.
    ///
    /// Returns the gathered columns plus [`GatherStats`] so the caller
    /// can bill the decode cycles and DRAM traffic honestly.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchColumn`] for unknown names.
    pub fn gather_rows(
        &self,
        names: &[String],
        rows: &[u32],
    ) -> DbResult<(Vec<(String, Column)>, GatherStats)> {
        let mut stats = GatherStats::default();
        let mut out = Vec::with_capacity(names.len());
        for name in names {
            let idx = self
                .schema
                .position(name)
                .ok_or_else(|| DbError::NoSuchColumn { table: self.name.clone(), column: name.clone() })?;
            let col = match self.schema.columns()[idx].1 {
                DataType::Int64 => {
                    let delta = self.delta[idx].as_int64().expect("schema type matches storage");
                    let mut v = Vec::with_capacity(rows.len());
                    for &r in rows {
                        match self.locate(r as usize) {
                            RowLoc::Delta { local } => {
                                v.push(delta[local]);
                                stats.bytes_read += 8;
                            }
                            RowLoc::Main { seg, local } => match self.main.segments[seg].column(idx) {
                                Some(SegColumn::Int { data, .. }) => {
                                    v.push(data.get(local));
                                    stats.decode_items += 1;
                                    stats.bytes_read += 8;
                                }
                                None => v.push(0), // sentinel: no data exists
                                _ => unreachable!("schema says Int64"),
                            },
                        }
                    }
                    Column::Int64(v)
                }
                DataType::Float64 => {
                    let delta = self.delta[idx].as_float64().expect("schema type matches storage");
                    let mut v = Vec::with_capacity(rows.len());
                    for &r in rows {
                        match self.locate(r as usize) {
                            RowLoc::Delta { local } => {
                                v.push(delta[local]);
                                stats.bytes_read += 8;
                            }
                            RowLoc::Main { seg, local } => match self.main.segments[seg].column(idx) {
                                Some(SegColumn::Float(data)) => {
                                    v.push(data[local]);
                                    stats.bytes_read += 8;
                                }
                                None => v.push(0.0),
                                _ => unreachable!("schema says Float64"),
                            },
                        }
                    }
                    Column::Float64(v)
                }
                DataType::Str => {
                    let mut g = StrCodeGather::new(self, idx);
                    for &r in rows {
                        match self.locate(r as usize) {
                            RowLoc::Delta { local } => {
                                stats.bytes_read += 4;
                                g.push_delta(local, &mut stats);
                            }
                            RowLoc::Main { seg, local } => match self.main.segments[seg].column(idx) {
                                Some(SegColumn::Str { codes, .. }) => {
                                    stats.decode_items += 1;
                                    stats.bytes_read += 4;
                                    g.push_main(codes.get(local) as u32, &mut stats);
                                }
                                None => g.push_sentinel(&mut stats),
                                _ => unreachable!("schema says Str"),
                            },
                        }
                    }
                    g.finish()
                }
            };
            stats.bytes_written += col.size_bytes() as u64;
            out.push((name.clone(), col));
        }
        Ok((out, stats))
    }

    /// Materializes the named columns at `positions` (ascending global
    /// row ids; `None` = all rows) into dense output columns — the
    /// projection step after a filter. Only the requested columns are
    /// touched, and string columns come back **as codes + one shared
    /// output dictionary**: each distinct code is
    /// decoded exactly once, repeats are appended by code, and no string
    /// is ever hashed per row — late materialization all the way to the
    /// client [`Chunk`].
    ///
    /// Returns the columns plus [`GatherStats`] billing each store path
    /// as executed: segments past the [`sparse_hits`] crossover
    /// stream-decode once (their **encoded** bytes), sparse hits pay
    /// compressed random access per cell, the delta reads its flat
    /// cells, and each distinct string pays one first-touch
    /// dictionary-entry read.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchColumn`] for unknown names.
    pub fn materialize_columns(
        &self,
        names: &[String],
        positions: Option<&[u32]>,
    ) -> DbResult<(Vec<(String, Column)>, GatherStats)> {
        let mut stats = GatherStats::default();
        let mut out = Vec::with_capacity(names.len());
        for name in names {
            let idx = self
                .schema
                .position(name)
                .ok_or_else(|| DbError::NoSuchColumn { table: self.name.clone(), column: name.clone() })?;
            let col = self.materialize_column(idx, positions, &mut stats);
            stats.bytes_written += col.size_bytes() as u64;
            out.push((name.clone(), col));
        }
        Ok((out, stats))
    }

    fn materialize_column(&self, idx: usize, positions: Option<&[u32]>, stats: &mut GatherStats) -> Column {
        let dtype = self.schema.columns()[idx].1;
        let cap = positions.map_or(self.rows, <[u32]>::len);
        match dtype {
            DataType::Int64 => {
                let delta = self.delta[idx].as_int64().expect("schema type matches storage");
                let mut out = Vec::with_capacity(cap);
                self.for_each_store(positions, |hits| match hits {
                    StoreHits::Main { seg, base, hits } => {
                        let rows = self.main.segments[seg].rows();
                        match self.main.segments[seg].column(idx) {
                            Some(SegColumn::Int { data, .. }) => match hits {
                                Some(h) if sparse_hits(h.len(), rows) => {
                                    out.extend(h.iter().map(|&p| data.get(p as usize - base)));
                                    stats.decode_items += h.len() as u64;
                                    stats.bytes_read += h.len() as u64 * 8;
                                }
                                hits => {
                                    let dec = data.decode();
                                    stats.decode_items += rows as u64;
                                    stats.bytes_read += data.size_bytes() as u64;
                                    match hits {
                                        Some(h) => out.extend(h.iter().map(|&p| dec[p as usize - base])),
                                        None => out.extend_from_slice(&dec),
                                    }
                                }
                            },
                            None => out.extend(std::iter::repeat_n(0i64, hits.map_or(rows, <[u32]>::len))),
                            _ => unreachable!("schema says Int64"),
                        }
                    }
                    StoreHits::Delta { hits } => {
                        match hits {
                            Some(h) => out.extend(h.iter().map(|&p| delta[p as usize - self.main.rows])),
                            None => out.extend_from_slice(delta),
                        }
                        stats.bytes_read += hits.map_or(delta.len(), <[u32]>::len) as u64 * 8;
                    }
                });
                Column::Int64(out)
            }
            DataType::Float64 => {
                let delta = self.delta[idx].as_float64().expect("schema type matches storage");
                let mut out = Vec::with_capacity(cap);
                self.for_each_store(positions, |hits| match hits {
                    StoreHits::Main { seg, base, hits } => {
                        let rows = self.main.segments[seg].rows();
                        match self.main.segments[seg].column(idx) {
                            Some(SegColumn::Float(v)) => match hits {
                                Some(h) if sparse_hits(h.len(), rows) => {
                                    out.extend(h.iter().map(|&p| v[p as usize - base]));
                                    stats.bytes_read += h.len() as u64 * 8;
                                }
                                hits => {
                                    stats.bytes_read += (rows * 8) as u64;
                                    match hits {
                                        Some(h) => out.extend(h.iter().map(|&p| v[p as usize - base])),
                                        None => out.extend_from_slice(v),
                                    }
                                }
                            },
                            None => out.extend(std::iter::repeat_n(0.0, hits.map_or(rows, <[u32]>::len))),
                            _ => unreachable!("schema says Float64"),
                        }
                    }
                    StoreHits::Delta { hits } => {
                        match hits {
                            Some(h) => out.extend(h.iter().map(|&p| delta[p as usize - self.main.rows])),
                            None => out.extend_from_slice(delta),
                        }
                        stats.bytes_read += hits.map_or(delta.len(), <[u32]>::len) as u64 * 8;
                    }
                });
                Column::Float64(out)
            }
            DataType::Str => {
                let mut g = StrCodeGather::new(self, idx);
                self.for_each_store(positions, |hits| match hits {
                    StoreHits::Main { seg, base, hits } => {
                        let rows = self.main.segments[seg].rows();
                        match self.main.segments[seg].column(idx) {
                            Some(SegColumn::Str { codes, .. }) => match hits {
                                Some(h) if sparse_hits(h.len(), rows) => {
                                    // Sparse hits: compressed random access,
                                    // remapped code-to-code.
                                    for &p in h {
                                        g.push_main(codes.get(p as usize - base) as u32, stats);
                                    }
                                    stats.decode_items += h.len() as u64;
                                    stats.bytes_read += h.len() as u64 * 4;
                                }
                                hits => {
                                    // Dense (or full): stream-decode the code
                                    // vector once, then copy codes.
                                    let dec = codes.decode();
                                    stats.decode_items += rows as u64;
                                    stats.bytes_read += codes.size_bytes() as u64;
                                    match hits {
                                        Some(h) => {
                                            for &p in h {
                                                g.push_main(dec[p as usize - base] as u32, stats);
                                            }
                                        }
                                        None => {
                                            for c in dec {
                                                g.push_main(c as u32, stats);
                                            }
                                        }
                                    }
                                }
                            },
                            None => {
                                for _ in 0..hits.map_or(rows, <[u32]>::len) {
                                    g.push_sentinel(stats);
                                }
                            }
                            _ => unreachable!("schema says Str"),
                        }
                    }
                    StoreHits::Delta { hits } => {
                        match hits {
                            Some(h) => {
                                for &p in h {
                                    g.push_delta(p as usize - self.main.rows, stats);
                                }
                            }
                            None => {
                                for local in 0..self.delta_rows() {
                                    g.push_delta(local, stats);
                                }
                            }
                        }
                        stats.bytes_read += hits.map_or(self.delta_rows(), <[u32]>::len) as u64 * 4;
                    }
                });
                g.finish()
            }
        }
    }

    /// Walks the stores in row order, handing each segment (and finally
    /// the delta) to `f` together with its slice of `positions` —
    /// `hits: None` means "all rows of this store". Segments without
    /// hits are skipped.
    fn for_each_store<'p>(&self, positions: Option<&'p [u32]>, mut f: impl FnMut(StoreHits<'p>)) {
        match positions {
            None => {
                for (si, _) in self.main.segments.iter().enumerate() {
                    f(StoreHits::Main { seg: si, base: self.main.bases[si], hits: None });
                }
                f(StoreHits::Delta { hits: None });
            }
            Some(pos) => {
                let mut i = 0;
                for (si, seg) in self.main.segments.iter().enumerate() {
                    let end_base = self.main.bases[si] + seg.rows();
                    let from = i;
                    while i < pos.len() && (pos[i] as usize) < end_base {
                        i += 1;
                    }
                    if i > from {
                        f(StoreHits::Main { seg: si, base: self.main.bases[si], hits: Some(&pos[from..i]) });
                    }
                }
                if i < pos.len() {
                    f(StoreHits::Delta { hits: Some(&pos[i..]) });
                }
            }
        }
    }

    /// Materializes one whole column (main decoded + delta) by name.
    ///
    /// This is a full, unmetered decode — query execution never calls
    /// it; it exists for index builds, diagnostics and tests.
    pub fn column(&self, name: &str) -> Option<Column> {
        let idx = self.schema.position(name)?;
        Some(self.materialize_column(idx, None, &mut GatherStats::default()))
    }

    /// The validity vector of one column (false = null sentinel); rows
    /// in segments that predate the column are null.
    pub fn validity(&self, name: &str) -> Option<Vec<bool>> {
        let idx = self.schema.position(name)?;
        let mut out = Vec::with_capacity(self.rows);
        for seg in &self.main.segments {
            if idx >= seg.width() {
                out.extend(std::iter::repeat_n(false, seg.rows()));
            } else {
                match seg.validity(idx) {
                    Some(v) => out.extend_from_slice(v),
                    None => out.extend(std::iter::repeat_n(true, seg.rows())),
                }
            }
        }
        out.extend_from_slice(&self.delta_validity[idx]);
        Some(out)
    }

    /// Count of nulls in a column.
    pub fn null_count(&self, name: &str) -> Option<usize> {
        let idx = self.schema.position(name)?;
        let main: usize = self.main.segments.iter().map(|s| s.null_count(idx)).sum();
        let delta = self.delta_validity[idx].iter().filter(|&&b| !b).count();
        Some(main + delta)
    }

    /// Materializes the whole snapshot as a [`Chunk`] — string columns
    /// as codes + shared output dictionaries, like every projection.
    pub fn to_chunk(&self) -> Chunk {
        let names: Vec<String> = self.schema.columns().iter().map(|(n, _)| n.clone()).collect();
        let (cols, _) = self.materialize_columns(&names, None).expect("schema columns exist");
        Chunk::new(cols).expect("table columns are equal length")
    }

    /// Approximate footprint in bytes: **encoded** main segments plus the
    /// flat delta (this is what the planner's scan costs scale with).
    pub fn size_bytes(&self) -> usize {
        self.encoded_bytes() + self.rows * self.delta.len() / 8
    }

    /// Encoded bytes of the main store plus the (plain) delta bytes.
    pub fn encoded_bytes(&self) -> usize {
        let main: usize = self.main.segments.iter().map(|s| s.encoded_bytes()).sum();
        let delta: usize = self.delta.iter().map(Column::size_bytes).sum();
        main + delta
    }

    /// Plain bytes the same data would occupy without compression.
    pub fn raw_bytes(&self) -> usize {
        let main: usize = self.main.segments.iter().map(|s| s.raw_bytes()).sum();
        let delta: usize = self.delta.iter().map(Column::size_bytes).sum();
        main + delta
    }

    /// Encoded bytes of one column across main segments plus its delta
    /// tail — the DRAM traffic a scan of this column costs.
    pub fn column_encoded_bytes(&self, name: &str) -> Option<usize> {
        let idx = self.schema.position(name)?;
        let main: usize =
            self.main.segments.iter().map(|s| s.column(idx).map_or(0, SegColumn::encoded_bytes)).sum();
        Some(main + self.delta.get(idx).map_or(0, Column::size_bytes))
    }

    /// Per-segment zone maps of an integer column (the delta tail is the
    /// final entry), for the planner's segment-pruning estimate. `None`
    /// for non-integer columns.
    pub fn zone_maps(&self, name: &str) -> Option<Vec<ZoneMapMeta>> {
        let idx = self.schema.position(name)?;
        if self.schema.columns()[idx].1 != DataType::Int64 {
            return None;
        }
        let mut zones = Vec::with_capacity(self.main.segments.len() + 1);
        for seg in &self.main.segments {
            let (min, max) = seg.zone(idx).unwrap_or((0, 0));
            // The sortedness claim flows from the segment the sorting
            // merge built — never computed here, so a snapshot pinned
            // across a merge always reports the flag its pinned
            // segments actually carry.
            let sorted = seg.sorted_by() == Some(idx);
            zones.push(ZoneMapMeta { rows: seg.rows() as u64, min, max, sorted });
        }
        let delta = self.delta[idx].as_int64()?;
        if !delta.is_empty() {
            let min = delta.iter().copied().min().expect("non-empty");
            let max = delta.iter().copied().max().expect("non-empty");
            zones.push(ZoneMapMeta { rows: delta.len() as u64, min, max, sorted: false });
        }
        Some(zones)
    }

    /// Per-table planner statistics, computed from zone maps and delta
    /// extrema — O(segments + delta), never decoding the main store.
    pub fn planner_meta(&self) -> haec_planner::catalog::TableMeta {
        let columns = self
            .schema
            .columns()
            .iter()
            .enumerate()
            .map(|(idx, (name, dtype))| {
                let (min, max, ndv) = match dtype {
                    DataType::Int64 => {
                        let (min, max) = self.int_extrema(idx);
                        // Sum of per-segment measured counts (stored at
                        // merge time) + the delta's measured distinct,
                        // capped by the value range and the row count.
                        // Over-counts values shared across stores but
                        // never collapses a sparse domain.
                        let measured: u64 = self
                            .main
                            .segments
                            .iter()
                            // Segments predating the column hold one
                            // distinct value (the null sentinel 0).
                            .map(|s| s.ndv(idx).unwrap_or(1))
                            .sum::<u64>()
                            + self.delta[idx].stats().distinct;
                        let range = (max as i128 - min as i128 + 1).max(0) as u64;
                        (min, max, measured.min(range).min(self.rows as u64))
                    }
                    DataType::Str => {
                        // Distinct = global dict + delta-local values the
                        // global dict has not seen (no double counting).
                        let global = self.global_dict(idx);
                        let g = global.map_or(0, DictColumn::dict_size);
                        let fresh = self.delta[idx].as_str().map_or(0, |local| {
                            local
                                .iter_dict()
                                .filter(|s| global.is_none_or(|d| d.code_of(s).is_none()))
                                .count()
                        });
                        (0, 0, ((g + fresh) as u64).min(self.rows as u64))
                    }
                    DataType::Float64 => (0, 0, self.rows as u64),
                };
                haec_planner::catalog::ColumnMeta {
                    name: name.clone(),
                    ndv,
                    min,
                    max,
                    indexed: false, // the Database layer overlays index info
                }
            })
            .collect();
        haec_planner::catalog::TableMeta {
            name: self.name.clone(),
            rows: self.rows as u64,
            row_bytes: (self.size_bytes() / self.rows.max(1)) as u64,
            columns,
        }
    }

    /// Min/max of an int column over zone maps + delta (0,0 if empty).
    fn int_extrema(&self, idx: usize) -> (i64, i64) {
        let mut acc: Option<(i64, i64)> = None;
        let mut fold = |lo: i64, hi: i64| {
            acc = Some(match acc {
                None => (lo, hi),
                Some((a, b)) => (a.min(lo), b.max(hi)),
            });
        };
        for seg in &self.main.segments {
            let (lo, hi) = seg.zone(idx).unwrap_or((0, 0));
            fold(lo, hi);
        }
        if let Some(delta) = self.delta[idx].as_int64() {
            if !delta.is_empty() {
                let lo = delta.iter().copied().min().expect("non-empty");
                let hi = delta.iter().copied().max().expect("non-empty");
                fold(lo, hi);
            }
        }
        acc.unwrap_or((0, 0))
    }
}

/// Work done by one projection or positional gather
/// ([`TableSnapshot::materialize_columns`] /
/// [`TableSnapshot::gather_rows`]), for the caller to charge to the
/// energy meter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GatherStats {
    /// Decode steps performed on encoded main columns — one per cell
    /// randomly accessed, one per row of a stream-decoded segment.
    pub decode_items: u64,
    /// Bytes read gathering the inputs: encoded bytes of stream-decoded
    /// segments, per-cell reads for sparse hits, flat delta cells, and
    /// one first-touch read per distinct dictionary entry.
    pub bytes_read: u64,
    /// Bytes written into the output columns.
    pub bytes_written: u64,
}

/// Translates a table's two string code spaces — the table-global
/// dictionary backing main segments and the delta-local dictionary
/// backing the tail — into **one output code space**, building the
/// projection's shared output dictionary as it goes. This is the
/// codes-to-client machinery behind both [`TableSnapshot::gather_rows`]
/// and [`TableSnapshot::materialize_columns`]: each distinct source
/// code is decoded and interned exactly once (O(distinct) string
/// hashes, billed as first-touch dictionary-entry reads), and every
/// repeat is an O(1) array-indexed cache hit plus a code push — never a
/// string hash. Values shared between the global and delta dictionaries
/// (and the `""` sentinel) still collapse to one output entry, because
/// the intern goes through the output dictionary's own lookup on first
/// touch.
struct StrCodeGather<'a> {
    global: Option<&'a DictColumn>,
    delta: &'a DictColumn,
    out: DictColumn,
    /// Global code → output code, filled on first touch.
    main_cache: Vec<Option<u32>>,
    /// Delta-local code → output code, filled on first touch.
    delta_cache: Vec<Option<u32>>,
    /// Output code of the sentinel `""` (segments predating the column).
    sentinel: Option<u32>,
}

impl<'a> StrCodeGather<'a> {
    fn new(t: &'a TableSnapshot, idx: usize) -> StrCodeGather<'a> {
        let delta = t.delta[idx].as_str().expect("schema type matches storage");
        let global = t.global_dict(idx);
        StrCodeGather {
            global,
            delta,
            out: DictColumn::new(),
            main_cache: vec![None; global.map_or(0, DictColumn::dict_size)],
            delta_cache: vec![None; delta.dict_size()],
            sentinel: None,
        }
    }

    /// Appends the row holding table-global dictionary `code`.
    fn push_main(&mut self, code: u32, stats: &mut GatherStats) {
        let global = self.global.expect("main string rows imply a global dictionary");
        let c = cached_intern(&mut self.main_cache[code as usize], &mut self.out, global.decode(code), stats);
        self.out.push_code(c);
    }

    /// Appends delta row `local` (resolved through its local code).
    fn push_delta(&mut self, local: usize, stats: &mut GatherStats) {
        let code = self.delta.codes()[local] as usize;
        let c = cached_intern(&mut self.delta_cache[code], &mut self.out, self.delta.get(local), stats);
        self.out.push_code(c);
    }

    /// Appends the `""` sentinel of a segment predating the column.
    fn push_sentinel(&mut self, stats: &mut GatherStats) {
        let c = cached_intern(&mut self.sentinel, &mut self.out, Some(""), stats);
        self.out.push_code(c);
    }

    fn finish(self) -> Column {
        Column::Str(self.out)
    }
}

/// Interns a decoded string into the gather's output dictionary exactly
/// once per distinct source code (see [`StrCodeGather`]).
fn cached_intern(
    cache: &mut Option<u32>,
    dict: &mut DictColumn,
    value: Option<&str>,
    stats: &mut GatherStats,
) -> u32 {
    match cache {
        Some(c) => *c,
        None => {
            let s = value.expect("code resolves through its dictionary");
            // First touch reads the dictionary entry itself.
            stats.bytes_read += s.len() as u64;
            let c = dict.intern(s);
            *cache = Some(c);
            c
        }
    }
}

/// Convenience constructor for common strict schemas.
pub fn strict_schema(cols: &[(&str, DataType)]) -> TableSchema {
    TableSchema::strict(cols.iter().map(|(n, t)| (n.to_string(), *t)).collect())
}

/// Returns `true` if the snapshot's table was declared flexible.
pub fn is_flexible(table: &TableSnapshot) -> bool {
    table.schema().mode() == SchemaMode::Flexible
}

#[cfg(test)]
mod tests {
    use super::*;
    use haec_columnar::value::CmpOp;

    fn ins(t: &Table, o: &TimestampOracle, r: &Record) {
        t.insert(r, o).unwrap();
    }

    fn orders() -> (Table, TimestampOracle) {
        let t = Table::new("orders", strict_schema(&[("id", DataType::Int64), ("amount", DataType::Int64)]));
        let o = TimestampOracle::new();
        for i in 0..10 {
            ins(&t, &o, &Record::new().with("id", i as i64).with("amount", (i * 10) as i64));
        }
        (t, o)
    }

    #[test]
    fn insert_and_read_back() {
        let (t, _) = orders();
        assert_eq!(t.rows(), 10);
        assert!(!t.is_empty());
        let chunk = t.read().to_chunk();
        assert_eq!(chunk.rows(), 10);
        assert_eq!(chunk.row(3).unwrap(), vec![Value::Int(3), Value::Int(30)]);
    }

    #[test]
    fn column_access() {
        let (t, _) = orders();
        let s = t.read();
        assert!(s.column("amount").is_some());
        assert!(s.column("zz").is_none());
        assert_eq!(s.column("amount").unwrap().as_int64().unwrap()[5], 50);
    }

    #[test]
    fn merge_moves_delta_to_compressed_main() {
        let (t, _) = orders();
        assert_eq!(t.delta_rows(), 10);
        assert_eq!(t.main_rows(), 0);
        let stats = t.merge();
        assert_eq!(stats.rows_merged, 10);
        assert_eq!(stats.segments_created, 1);
        assert!(stats.encoded_bytes > 0);
        assert_eq!(t.delta_rows(), 0);
        assert_eq!(t.main_rows(), 10);
        assert_eq!(t.rows(), 10);
        let s = t.read();
        // Data survives the merge unchanged, in insertion order.
        assert_eq!(s.column("amount").unwrap().as_int64().unwrap(), &[0, 10, 20, 30, 40, 50, 60, 70, 80, 90]);
        // Zone maps reflect the data.
        assert_eq!(s.segments()[0].zone(0), Some((0, 9)));
        assert_eq!(s.segments()[0].zone(1), Some((0, 90)));
        // A second merge with an empty delta is a no-op.
        assert_eq!(t.merge(), MergeStats::default());
    }

    #[test]
    fn merge_interleaves_with_inserts() {
        let t = Table::new("t", strict_schema(&[("v", DataType::Int64)]));
        let o = TimestampOracle::new();
        for round in 0..4 {
            for i in 0..100i64 {
                ins(&t, &o, &Record::new().with("v", round * 100 + i));
            }
            t.merge();
        }
        for i in 400..450i64 {
            ins(&t, &o, &Record::new().with("v", i));
        }
        let s = t.read();
        assert_eq!(s.segments().len(), 4);
        assert_eq!(s.main_rows(), 400);
        assert_eq!(s.delta_rows(), 50);
        let v = s.column("v").unwrap();
        let expected: Vec<i64> = (0..450).collect();
        assert_eq!(v.as_int64().unwrap(), &expected[..]);
        // Global row ids locate correctly on both sides of the boundary.
        assert_eq!(s.locate(0), RowLoc::Main { seg: 0, local: 0 });
        assert_eq!(s.locate(399), RowLoc::Main { seg: 3, local: 99 });
        assert_eq!(s.locate(400), RowLoc::Delta { local: 0 });
        assert_eq!(s.get_int(0, 250), Some(250));
    }

    #[test]
    fn large_merge_splits_into_segments() {
        let t = Table::new("t", strict_schema(&[("v", DataType::Int64)]));
        let o = TimestampOracle::new();
        let n = SEGMENT_ROWS + 1000;
        for i in 0..n as i64 {
            ins(&t, &o, &Record::new().with("v", i));
        }
        let stats = t.merge();
        assert_eq!(stats.segments_created, 2);
        let s = t.read();
        assert_eq!(s.segments()[0].rows(), SEGMENT_ROWS);
        assert_eq!(s.segments()[1].rows(), 1000);
        assert_eq!(s.segment_base(1), SEGMENT_ROWS);
        // Sorted ints compress hard.
        assert!(s.encoded_bytes() * 4 < s.raw_bytes());
    }

    #[test]
    fn strings_survive_merge_via_global_dict() {
        let t = Table::new("users", strict_schema(&[("id", DataType::Int64), ("country", DataType::Str)]));
        let o = TimestampOracle::new();
        let countries = ["de", "us", "fr", "de"];
        for (i, c) in countries.iter().enumerate() {
            ins(&t, &o, &Record::new().with("id", i as i64).with("country", *c));
        }
        t.merge();
        // New delta rows after the merge get a fresh local dictionary.
        ins(&t, &o, &Record::new().with("id", 4i64).with("country", "jp"));
        ins(&t, &o, &Record::new().with("id", 5i64).with("country", "de"));
        let s = t.read();
        let col = s.column("country").unwrap();
        let vals: Vec<&str> = col.as_str().unwrap().iter().collect();
        assert_eq!(vals, vec!["de", "us", "fr", "de", "jp", "de"]);
        assert!(s.str_eq(1, 0, "de").unwrap());
        assert!(!s.str_eq(1, 1, "de").unwrap());
        assert!(s.str_eq(1, 5, "de").unwrap());
        // Distinct count: "de" lives in both the global (merged) and the
        // delta-local dictionary but is counted once — {de, us, fr, jp}.
        let meta = s.planner_meta();
        assert_eq!(meta.columns.iter().find(|c| c.name == "country").unwrap().ndv, 4);
    }

    #[test]
    fn flexible_table_grows_columns() {
        let t = Table::new("events", TableSchema::flexible());
        let o = TimestampOracle::new();
        ins(&t, &o, &Record::new().with("a", 1i64));
        ins(&t, &o, &Record::new().with("a", 2i64).with("b", "x"));
        ins(&t, &o, &Record::new().with("b", "y"));
        let s = t.read();
        assert_eq!(s.rows(), 3);
        assert_eq!(s.schema().width(), 2);
        // Backfilled nulls: b missing in row 0, a missing in row 2.
        assert_eq!(s.null_count("b"), Some(1));
        assert_eq!(s.null_count("a"), Some(1));
        // Sentinel values are stored densely.
        assert_eq!(s.column("a").unwrap().as_int64().unwrap(), &[1, 2, 0]);
        assert!(is_flexible(&s));
    }

    #[test]
    fn columns_evolved_after_merge_read_as_null() {
        let t = Table::new("events", TableSchema::flexible());
        let o = TimestampOracle::new();
        ins(&t, &o, &Record::new().with("a", 1i64));
        ins(&t, &o, &Record::new().with("a", 2i64));
        t.merge();
        ins(&t, &o, &Record::new().with("a", 3i64).with("b", 9i64));
        // Segment rows predate b: null there, value in the delta.
        let s = t.read();
        assert_eq!(s.null_count("b"), Some(2));
        assert_eq!(s.validity("b").unwrap(), vec![false, false, true]);
        assert_eq!(s.column("b").unwrap().as_int64().unwrap(), &[0, 0, 9]);
        assert_eq!(s.get_int(1, 0), Some(0), "sentinel for pre-evolution segment rows");
        // And merging again folds b into the new segment.
        t.merge();
        let s = t.read();
        assert_eq!(s.null_count("b"), Some(2));
        assert_eq!(s.column("b").unwrap().as_int64().unwrap(), &[0, 0, 9]);
    }

    #[test]
    fn strict_rejects_drift() {
        let (t, o) = orders();
        assert!(t.insert(&Record::new().with("id", 1i64), &o).is_err(), "missing amount");
        assert!(t
            .insert(&Record::new().with("id", 1i64).with("amount", 1i64).with("new", 1i64), &o)
            .is_err());
        assert_eq!(t.rows(), 10, "failed inserts must not partially apply rows");
    }

    #[test]
    fn planner_meta_reflects_data() {
        let (t, _) = orders();
        let meta = t.read().planner_meta();
        assert_eq!(meta.rows, 10);
        let id = meta.columns.iter().find(|c| c.name == "id").unwrap();
        assert_eq!(id.min, 0);
        assert_eq!(id.max, 9);
        assert_eq!(id.ndv, 10);
        // Check the stats drive sane selectivity.
        let sel = haec_planner::access::estimate_selectivity(&meta, "id", CmpOp::Lt, 5);
        assert!((sel - 0.5).abs() < 0.01);
    }

    #[test]
    fn planner_meta_stable_across_merge() {
        let (t, _) = orders();
        let before = t.read().planner_meta();
        t.merge();
        let after = t.read().planner_meta();
        assert_eq!(before.rows, after.rows);
        let (b, a) = (
            before.columns.iter().find(|c| c.name == "amount").unwrap(),
            after.columns.iter().find(|c| c.name == "amount").unwrap(),
        );
        assert_eq!((b.min, b.max, b.ndv), (a.min, a.max, a.ndv));
        // Merged representation is what size (and thus scan cost) sees.
        assert!(after.row_bytes <= before.row_bytes);
    }

    #[test]
    fn zone_maps_cover_main_and_delta() {
        let t = Table::new("t", strict_schema(&[("v", DataType::Int64)]));
        let o = TimestampOracle::new();
        for i in 0..100i64 {
            ins(&t, &o, &Record::new().with("v", i));
        }
        t.merge();
        for i in 500..520i64 {
            ins(&t, &o, &Record::new().with("v", i));
        }
        let s = t.read();
        let zones = s.zone_maps("v").unwrap();
        assert_eq!(zones.len(), 2);
        assert_eq!((zones[0].min, zones[0].max, zones[0].rows), (0, 99, 100));
        assert_eq!((zones[1].min, zones[1].max, zones[1].rows), (500, 519, 20));
        assert!(s.zone_maps("nope").is_none());
    }

    #[test]
    fn gather_ints_spans_storage_kinds() {
        let t = Table::new("t", strict_schema(&[("v", DataType::Int64)]));
        let o = TimestampOracle::new();
        for i in 0..200i64 {
            ins(&t, &o, &Record::new().with("v", i * 2));
        }
        t.merge();
        for i in 200..250i64 {
            ins(&t, &o, &Record::new().with("v", i * 2));
        }
        let s = t.read();
        // Sparse positions (compressed random access) + delta positions.
        let pos: Vec<u32> = vec![0, 3, 199, 200, 249];
        assert_eq!(s.gather_ints("v", Some(&pos)).unwrap(), vec![0, 6, 398, 400, 498]);
        // Dense positions (whole-segment decode path).
        let all: Vec<u32> = (0..250).collect();
        let full = s.gather_ints("v", Some(&all)).unwrap();
        assert_eq!(full, s.gather_ints("v", None).unwrap());
        assert_eq!(full[123], 246);
    }

    #[test]
    fn gather_rows_any_order_with_duplicates() {
        let t = Table::new(
            "t",
            strict_schema(&[("v", DataType::Int64), ("f", DataType::Float64), ("s", DataType::Str)]),
        );
        let o = TimestampOracle::new();
        let tags = ["de", "us", "fr", "de"];
        for i in 0..200i64 {
            ins(
                &t,
                &o,
                &Record::new()
                    .with("v", i * 2)
                    .with("f", i as f64 / 2.0)
                    .with("s", tags[i as usize % tags.len()]),
            );
        }
        t.merge();
        for i in 200..220i64 {
            ins(
                &t,
                &o,
                &Record::new()
                    .with("v", i * 2)
                    .with("f", i as f64 / 2.0)
                    .with("s", tags[i as usize % tags.len()]),
            );
        }
        let snap = t.read();
        // Unsorted rows with duplicates, spanning main and delta.
        let rows: Vec<u32> = vec![210, 3, 199, 3, 1, 215];
        let names: Vec<String> = ["v", "f", "s"].iter().map(ToString::to_string).collect();
        let (cols, stats) = snap.gather_rows(&names, &rows).unwrap();
        assert_eq!(cols[0].1.as_int64().unwrap(), &[420, 6, 398, 6, 2, 430]);
        assert_eq!(cols[1].1.as_float64().unwrap(), &[105.0, 1.5, 99.5, 1.5, 0.5, 107.5]);
        let s = cols[2].1.as_str().unwrap();
        let got: Vec<&str> = s.iter().collect();
        assert_eq!(got, vec!["fr", "de", "de", "de", "us", "de"]);
        // Code-to-code: the output dictionary holds each distinct value
        // once, despite duplicate gathers.
        assert_eq!(s.dict_size(), 3);
        assert!(stats.decode_items > 0, "main-segment cells are compressed random accesses");
        assert!(stats.bytes_read > 0 && stats.bytes_written > 0);
        // Empty gathers are free and shaped correctly.
        let (empty, es) = snap.gather_rows(&names, &[]).unwrap();
        assert!(empty.iter().all(|(_, c)| c.is_empty()));
        assert_eq!(es.decode_items, 0);
        assert!(snap.gather_rows(&["nope".to_string()], &[]).is_err());
    }

    #[test]
    fn sparse_dense_threshold() {
        assert!(sparse_hits(0, 1));
        assert!(sparse_hits(7, 64));
        assert!(!sparse_hits(8, 64), "exactly 1:{SPARSE_HIT_RATIO} streams");
        assert!(!sparse_hits(10, 10));
    }

    fn tagged_table() -> (Table, TimestampOracle) {
        let t = Table::new("t", strict_schema(&[("v", DataType::Int64), ("s", DataType::Str)]));
        let o = TimestampOracle::new();
        let tags = ["de", "us", "fr", "de"];
        for i in 0..200i64 {
            ins(&t, &o, &Record::new().with("v", i).with("s", tags[i as usize % tags.len()]));
        }
        t.merge();
        // Delta tail re-uses "de" (shared with the global dict) and adds
        // a fresh value.
        for i in 200..220i64 {
            ins(&t, &o, &Record::new().with("v", i).with("s", if i % 2 == 0 { "de" } else { "jp" }));
        }
        (t, o)
    }

    #[test]
    fn string_projection_carries_codes_with_shared_dict() {
        let (t, _) = tagged_table();
        let snap = t.read();
        let names = vec!["s".to_string()];
        // Full projection: every store, one output dictionary.
        let (cols, stats) = snap.materialize_columns(&names, None).unwrap();
        let s = cols[0].1.as_str().unwrap();
        assert_eq!(s.len(), 220);
        // Distinct values appear once each, despite living in two code
        // spaces ("de" is in both the global and the delta dictionary).
        assert_eq!(s.dict_size(), 4, "de/us/fr/jp, shared across stores");
        assert_eq!(s.get(0), Some("de"));
        assert_eq!(s.get(219), Some("jp"));
        assert!(stats.decode_items >= 200, "main codes stream-decoded");
        assert!(stats.bytes_read > 0 && stats.bytes_written > 0);
        // Sparse projection: compressed random access, same answers.
        let pos: Vec<u32> = vec![1, 50, 201];
        let (cols, sp) = snap.materialize_columns(&names, Some(&pos)).unwrap();
        let s = cols[0].1.as_str().unwrap();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec!["us", "fr", "jp"]);
        assert_eq!(s.dict_size(), 3, "only touched values enter the dictionary");
        assert_eq!(sp.decode_items, 2, "two main cells randomly accessed");
    }

    #[test]
    fn materialize_stats_bill_the_path_taken() {
        let (t, _) = tagged_table();
        let snap = t.read();
        let names = vec!["v".to_string()];
        // Dense: the segment streams its encoded bytes once.
        let (_, dense) = snap.materialize_columns(&names, None).unwrap();
        let encoded = snap.segments()[0].column(0).unwrap().encoded_bytes() as u64;
        assert_eq!(dense.decode_items, 200);
        assert_eq!(dense.bytes_read, encoded + 20 * 8, "encoded segment + flat delta");
        // Sparse: per-cell random access, 8 B each.
        let pos: Vec<u32> = vec![0, 199, 210];
        let (_, sparse) = snap.materialize_columns(&names, Some(&pos)).unwrap();
        assert_eq!(sparse.decode_items, 2);
        assert_eq!(sparse.bytes_read, 2 * 8 + 8, "two random cells + one delta cell");
        assert!(snap.materialize_columns(&["nope".to_string()], None).is_err());
    }

    #[test]
    fn size_grows_with_rows() {
        let small = orders().0.read().size_bytes();
        let (big, o) = orders();
        for i in 10..1000 {
            ins(&big, &o, &Record::new().with("id", i as i64).with("amount", 1i64));
        }
        assert!(big.read().size_bytes() > small);
    }

    #[test]
    fn merge_threshold_knob() {
        let (t, _) = orders();
        assert_eq!(t.merge_threshold(), SEGMENT_ROWS);
        assert!(!t.needs_merge());
        t.set_merge_threshold(5);
        assert!(t.needs_merge());
        t.merge();
        assert!(!t.needs_merge());
    }

    // ---- MVCC: snapshots, timestamps, merge swap ----

    #[test]
    fn snapshot_is_immutable_under_inserts() {
        let (t, o) = orders();
        let snap = t.snapshot(&o);
        assert_eq!(snap.rows(), 10);
        ins(&t, &o, &Record::new().with("id", 10i64).with("amount", 100i64));
        assert_eq!(t.rows(), 11);
        assert_eq!(snap.rows(), 10, "the pin is a copy, not a view of live state");
        assert_eq!(snap.column("amount").unwrap().as_int64().unwrap().len(), 10);
        // A fresh snapshot sees the new row.
        assert_eq!(t.snapshot(&o).rows(), 11);
    }

    #[test]
    fn pin_at_sees_exactly_the_prefix() {
        let t = Table::new("t", strict_schema(&[("v", DataType::Int64)]));
        let o = TimestampOracle::new();
        let mut stamps = Vec::new();
        for i in 0..6i64 {
            stamps.push(t.insert(&Record::new().with("v", i), &o).unwrap().0);
        }
        for (i, &ts) in stamps.iter().enumerate() {
            let s = t.pin_at(ts).expect("nothing merged yet");
            assert_eq!(s.rows(), i + 1, "exactly the rows committed before the pin");
            assert_eq!(s.timestamp(), ts);
            assert_eq!(s.get_int(0, i), Some(i as i64));
        }
        assert_eq!(t.pin_at(Timestamp::ZERO).unwrap().rows(), 0, "pre-history sees nothing");
    }

    #[test]
    fn pin_at_refuses_timestamps_older_than_a_merge() {
        let (t, o) = orders();
        let old = t.snapshot(&o).timestamp();
        ins(&t, &o, &Record::new().with("id", 10i64).with("amount", 100i64));
        t.merge();
        // The merge folded a row newer than `old` into timestamp-less
        // segments; that version can no longer serve the old pin.
        assert!(t.pin_at(old).is_none());
        // A fresh timestamp pins fine (and sees everything).
        let fresh = t.pin_at(o.next()).expect("current version serves fresh timestamps");
        assert_eq!(fresh.rows(), 11);
        // And a second merge with an empty delta changes nothing.
        t.merge();
        assert!(t.pin_at(fresh.timestamp()).is_some());
    }

    #[test]
    fn snapshot_survives_merge_swap() {
        let (t, o) = orders();
        let snap = t.snapshot(&o);
        let epoch = snap.epoch();
        t.merge();
        assert_eq!(t.epoch(), epoch + 1, "merge published a new version");
        // The old pin still reads the pre-merge layout, answers intact.
        assert_eq!(snap.epoch(), epoch);
        assert_eq!(snap.main_rows(), 0);
        assert_eq!(snap.delta_rows(), 10);
        assert_eq!(
            snap.column("amount").unwrap().as_int64().unwrap(),
            &[0, 10, 20, 30, 40, 50, 60, 70, 80, 90]
        );
        // The new layout holds identical data.
        let now = t.read();
        assert_eq!(now.main_rows(), 10);
        assert_eq!(
            now.column("amount").unwrap().as_int64().unwrap(),
            snap.column("amount").unwrap().as_int64().unwrap()
        );
    }

    #[test]
    fn snapshot_pins_dictionary_state() {
        let t = Table::new("t", strict_schema(&[("s", DataType::Str)]));
        let o = TimestampOracle::new();
        ins(&t, &o, &Record::new().with("s", "a"));
        ins(&t, &o, &Record::new().with("s", "b"));
        let snap = t.snapshot(&o);
        // Grow the dictionary after the pin, then freeze it via merge.
        ins(&t, &o, &Record::new().with("s", "c"));
        ins(&t, &o, &Record::new().with("s", "d"));
        t.merge();
        let col = snap.column("s").unwrap();
        let s = col.as_str().unwrap();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(s.dict_size(), 2, "dictionary growth after the pin is invisible");
        assert_eq!(t.read().column("s").unwrap().as_str().unwrap().dict_size(), 4);
    }

    #[test]
    fn oracle_timestamps_monotone_across_insert_merge_snapshot() {
        let t = Table::new("t", strict_schema(&[("v", DataType::Int64)]));
        let o = TimestampOracle::new();
        let mut last = Timestamp::ZERO;
        for round in 0..3i64 {
            for i in 0..5i64 {
                let (ts, row) = t.insert(&Record::new().with("v", round * 5 + i), &o).unwrap();
                assert!(ts > last, "insert timestamps strictly increase");
                assert_eq!(row as i64, round * 6 + i, "row ids are insertion order");
                last = ts;
            }
            let snap = t.snapshot(&o);
            assert!(snap.timestamp() > last, "snapshot timestamps join the same total order");
            last = snap.timestamp();
            t.merge();
            let (ts, _) = t.insert(&Record::new().with("v", -1), &o).unwrap();
            assert!(ts > last, "a merge never resets or reuses timestamps");
            last = ts;
        }
    }

    #[test]
    fn with_pending_reads_own_writes() {
        let (t, o) = orders();
        let snap = t.snapshot(&o);
        let pending = vec![Record::new().with("id", 10i64).with("amount", 100i64)];
        let rw = snap.with_pending(&pending).unwrap();
        assert_eq!(rw.rows(), 11);
        assert_eq!(rw.get_int(1, 10), Some(100), "the overlay row reads back");
        assert_eq!(snap.rows(), 10, "the base pin is untouched");
        assert_eq!(t.rows(), 10, "nothing was committed to the table");
        // Schema violations in the overlay surface as errors.
        assert!(snap.with_pending(&[Record::new().with("id", 1i64)]).is_err());
    }

    #[test]
    fn delta_suffix_rebuilds_compact_dictionary() {
        let mut d = DictColumn::new();
        for v in ["a", "b", "a", "c"] {
            d.push(v);
        }
        let suffix = column_suffix(&Column::Str(d), 3);
        let s = suffix.as_str().unwrap();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec!["c"]);
        assert_eq!(s.dict_size(), 1, "stale entries must not leak into the next merge's global dict");
    }

    #[test]
    fn concurrent_inserts_during_merge_stay_in_delta() {
        use std::sync::Barrier;
        let t = Arc::new(Table::new("t", strict_schema(&[("v", DataType::Int64)])));
        let o = Arc::new(TimestampOracle::new());
        for i in 0..1000i64 {
            ins(&t, &o, &Record::new().with("v", i));
        }
        let barrier = Arc::new(Barrier::new(2));
        let writer = {
            let (t, o, barrier) = (Arc::clone(&t), Arc::clone(&o), Arc::clone(&barrier));
            std::thread::spawn(move || {
                barrier.wait();
                for i in 1000..1200i64 {
                    ins(&t, &o, &Record::new().with("v", i));
                }
            })
        };
        barrier.wait();
        t.merge();
        writer.join().unwrap();
        t.merge();
        let s = t.read();
        assert_eq!(s.rows(), 1200);
        let v = s.column("v").unwrap();
        let expected: Vec<i64> = (0..1200).collect();
        assert_eq!(v.as_int64().unwrap(), &expected[..], "no row lost or duplicated across the swap");
    }
}
