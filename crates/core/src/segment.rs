//! Immutable, compressed main-store segments.
//!
//! The paper's storage architecture (and SAP HANA's, which it draws on)
//! splits every table into a read-optimized **main** and a
//! write-optimized **delta**: inserts land in a flat delta tail, and a
//! periodic merge re-encodes the delta into immutable main segments of at
//! most [`SEGMENT_ROWS`] rows. Each segment stores integer columns as
//! [`EncodedInts`] (the smallest of plain/RLE/FOR/delta), string columns
//! as compressed dictionary codes into the table-global dictionary, and a
//! per-column min/max **zone map** so whole segments can be skipped
//! without touching their data. Queries scan segments *compressed* — see
//! [`Segment::scan_int`] — which is where the energy win of "data
//! reduction" becomes real: fewer DRAM bytes per answered query.

use haec_columnar::bitmap::Bitmap;
use haec_columnar::column::Column;
use haec_columnar::dict::DictColumn;
use haec_columnar::encoding::EncodedInts;
use haec_columnar::value::CmpOp;
use haec_planner::access::ZoneMapMeta;

/// Target (and maximum) number of rows per main segment.
pub const SEGMENT_ROWS: usize = 64 * 1024;

/// One column of a segment, in its compressed physical form.
#[derive(Clone, Debug)]
pub enum SegColumn {
    /// An integer column, lightweight-compressed with a min/max zone map
    /// (`None` only for zero-row segments, which never exist in
    /// practice).
    Int {
        /// The compressed values.
        data: EncodedInts,
        /// `(min, max)` over all rows.
        zone: Option<(i64, i64)>,
        /// Exact distinct-value count, measured at merge time (while the
        /// data was still flat) so planner statistics never require a
        /// decode.
        ndv: u64,
    },
    /// A float column (stored plain; no lightweight codec applies).
    Float(Vec<f64>),
    /// A string column as compressed codes into the **table-global**
    /// dictionary, with a zone map over the codes (prunes equality
    /// probes).
    Str {
        /// The compressed dictionary codes.
        codes: EncodedInts,
        /// `(min, max)` over the codes.
        zone: Option<(i64, i64)>,
    },
}

impl SegColumn {
    /// Encoded payload bytes of this column.
    pub fn encoded_bytes(&self) -> usize {
        match self {
            SegColumn::Int { data, .. } => data.size_bytes(),
            SegColumn::Float(v) => v.len() * 8,
            SegColumn::Str { codes, .. } => codes.size_bytes(),
        }
    }

    /// Uncompressed (plain) bytes of this column.
    pub fn raw_bytes(&self, rows: usize) -> usize {
        match self {
            SegColumn::Int { .. } => rows * 8,
            SegColumn::Float(_) => rows * 8,
            SegColumn::Str { .. } => rows * 8,
        }
    }
}

/// Returns `true` if a segment whose column spans `[lo, hi]` may contain
/// a row matching `value op literal`.
///
/// Delegates to [`ZoneMapMeta::may_match`] so the executor's pruning and
/// the planner's [`haec_planner::access::zone_survival`] estimate can
/// never disagree.
pub fn zone_may_match(op: CmpOp, literal: i64, lo: i64, hi: i64) -> bool {
    ZoneMapMeta { rows: 0, min: lo, max: hi, sorted: false }.may_match(op, literal)
}

/// Returns `true` if **every** row of a segment whose column spans
/// `[lo, hi]` matches `value op literal` — the dual shortcut to pruning:
/// the predicate is a tautology on this segment and needs no scan at all.
pub fn zone_all_match(op: CmpOp, literal: i64, lo: i64, hi: i64) -> bool {
    match op {
        CmpOp::Eq => lo == hi && lo == literal,
        CmpOp::Ne => literal < lo || literal > hi,
        CmpOp::Lt => hi < literal,
        CmpOp::Le => hi <= literal,
        CmpOp::Gt => lo > literal,
        CmpOp::Ge => lo >= literal,
    }
}

/// An immutable run of up to [`SEGMENT_ROWS`] rows in compressed,
/// read-optimized form. Created only by the delta→main merge
/// ([`crate::table::Table::merge`]); never mutated afterwards.
#[derive(Clone, Debug)]
pub struct Segment {
    rows: usize,
    columns: Vec<SegColumn>,
    /// Per-column validity; `None` = every row valid (the common case).
    validity: Vec<Option<Vec<bool>>>,
    /// Column index this segment's rows are sorted ascending by
    /// (dictionary-code order for string columns). Set only by the
    /// sorting merge — see [`crate::table::Table::merge`] — and it is
    /// the source of truth behind every `ZoneMapMeta::sorted` flag.
    sorted_by: Option<usize>,
}

/// Builds the local→global code translation table for one string column:
/// every distinct delta string is interned into the global dictionary
/// exactly once, no matter how many rows or segments the merge spans.
pub(crate) fn build_remap(local: &DictColumn, global: &mut DictColumn) -> Vec<i64> {
    (0..local.dict_size())
        .map(|c| {
            let s = local.decode(c as u32).expect("local code in range");
            global.intern(s) as i64
        })
        .collect()
}

impl Segment {
    /// Builds a segment from rows `[start, end)` of a flat delta store.
    ///
    /// String values are re-mapped from the delta's local dictionary into
    /// the table-global dictionaries through `remaps` (parallel to
    /// `columns`, `Some` for string columns — see [`build_remap`];
    /// computed once per merge, not once per segment).
    ///
    /// `sorted_by` records which column (if any) the caller arranged the
    /// rows of `[start, end)` in ascending order by; only the sorting
    /// merge passes `Some` here, and it is asserted in debug builds.
    pub(crate) fn build(
        columns: &[Column],
        validity: &[Vec<bool>],
        start: usize,
        end: usize,
        remaps: &[Option<Vec<i64>>],
        sorted_by: Option<usize>,
    ) -> Segment {
        let rows = end - start;
        let mut seg_cols = Vec::with_capacity(columns.len());
        for (ci, col) in columns.iter().enumerate() {
            let seg_col = match col {
                Column::Int64(v) => {
                    let slice = &v[start..end];
                    let data = EncodedInts::auto(slice);
                    let zone = data.min_max();
                    let ndv = slice.iter().collect::<std::collections::HashSet<_>>().len() as u64;
                    SegColumn::Int { data, zone, ndv }
                }
                Column::Float64(v) => SegColumn::Float(v[start..end].to_vec()),
                Column::Str(local) => {
                    let remap = remaps[ci].as_ref().expect("string column has a remap table");
                    let codes_i64: Vec<i64> =
                        local.codes()[start..end].iter().map(|&c| remap[c as usize]).collect();
                    let codes = EncodedInts::auto(&codes_i64);
                    let zone = codes.min_max();
                    SegColumn::Str { codes, zone }
                }
            };
            seg_cols.push(seg_col);
        }
        let seg_validity = validity
            .iter()
            .map(|v| {
                let slice = &v[start..end];
                if slice.iter().all(|&b| b) {
                    None
                } else {
                    Some(slice.to_vec())
                }
            })
            .collect();
        let seg = Segment { rows, columns: seg_cols, validity: seg_validity, sorted_by };
        #[cfg(debug_assertions)]
        if let Some(k) = sorted_by {
            let mut prev = i64::MIN;
            for row in 0..seg.rows {
                let v = seg.get_int(k, row).expect("sort key must be an int or string column");
                debug_assert!(prev <= v, "segment claims sorted_by {k} but row {row} regresses");
                prev = v;
            }
        }
        seg
    }

    /// Number of rows in this segment.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of physical columns (may be narrower than the table schema
    /// if columns evolved after this segment was merged).
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// The physical column at `idx`, or `None` if this segment predates
    /// the column (all its rows are null sentinels for it).
    pub fn column(&self, idx: usize) -> Option<&SegColumn> {
        self.columns.get(idx)
    }

    /// The zone map of column `idx` (`Some` for int and string-code
    /// columns that exist in this segment).
    pub fn zone(&self, idx: usize) -> Option<(i64, i64)> {
        match self.columns.get(idx) {
            Some(SegColumn::Int { zone, .. }) | Some(SegColumn::Str { zone, .. }) => *zone,
            _ => None,
        }
    }

    /// The column index this segment is physically sorted ascending by
    /// (dictionary-code order for strings), or `None` for merge-ordered
    /// segments. Only [`crate::table::Table::merge`] sets this.
    pub fn sorted_by(&self) -> Option<usize> {
        self.sorted_by
    }

    /// Measured distinct-value count of integer column `idx` (`None` for
    /// other column kinds or columns this segment predates).
    pub fn ndv(&self, idx: usize) -> Option<u64> {
        match self.columns.get(idx) {
            Some(SegColumn::Int { ndv, .. }) => Some(*ndv),
            _ => None,
        }
    }

    /// Evaluates `column[idx] op literal` **on the compressed data** into
    /// `out` (which must be zeroed, `rows()` long). Returns `false` if
    /// the column is not scannable this way (float, or missing — the
    /// caller handles sentinels).
    pub fn scan_int(&self, idx: usize, op: CmpOp, literal: i64, out: &mut Bitmap) -> bool {
        match self.columns.get(idx) {
            Some(SegColumn::Int { data, .. }) => {
                data.scan(op, literal, out);
                true
            }
            Some(SegColumn::Str { codes, .. }) => {
                codes.scan(op, literal, out);
                true
            }
            _ => false,
        }
    }

    /// Random access to an integer (or string-code) value.
    pub fn get_int(&self, idx: usize, row: usize) -> Option<i64> {
        match self.columns.get(idx) {
            Some(SegColumn::Int { data, .. }) => Some(data.get(row)),
            Some(SegColumn::Str { codes, .. }) => Some(codes.get(row)),
            _ => None,
        }
    }

    /// Validity slice of column `idx`: `None` = all valid.
    pub fn validity(&self, idx: usize) -> Option<&[bool]> {
        self.validity.get(idx).and_then(|v| v.as_deref())
    }

    /// Nulls in column `idx`; columns this segment predates are all-null.
    pub fn null_count(&self, idx: usize) -> usize {
        if idx >= self.columns.len() {
            return self.rows;
        }
        match self.validity(idx) {
            Some(v) => v.iter().filter(|&&b| !b).count(),
            None => 0,
        }
    }

    /// Encoded payload bytes of the whole segment.
    pub fn encoded_bytes(&self) -> usize {
        self.columns.iter().map(SegColumn::encoded_bytes).sum()
    }

    /// Plain (8 B/value) bytes the same data would occupy uncompressed.
    pub fn raw_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.raw_bytes(self.rows)).sum()
    }
}

/// One immutable **version** of a table's main store: the segment list,
/// their base offsets, the table-global string dictionaries those
/// segments encode into, and the version metadata MVCC snapshots pin.
///
/// A [`crate::table::Table`] publishes a new `MainSet` (behind an `Arc`)
/// at every delta→main merge; readers that pinned the previous version
/// keep it alive through their `Arc` until the last snapshot drops —
/// epoch-style reclamation with no reader-side locking.
#[derive(Debug)]
pub(crate) struct MainSet {
    /// The immutable segments, shared (never deep-copied) across
    /// versions: a merge appends new segments to a clone of this vector.
    pub(crate) segments: Vec<std::sync::Arc<Segment>>,
    /// Global row offset of each segment (parallel to `segments`).
    pub(crate) bases: Vec<usize>,
    /// Total rows across all segments.
    pub(crate) rows: usize,
    /// Per-column table-global dictionaries (`Some` for string columns),
    /// frozen with this version: a pinned snapshot decodes against
    /// exactly the dictionary state it saw, however the dictionary grows
    /// in later versions.
    pub(crate) dicts: Vec<Option<DictColumn>>,
    /// Version counter, bumped once per merge.
    pub(crate) epoch: u64,
    /// The largest insert timestamp folded into these segments
    /// (`0` before the first merge). A snapshot older than this cannot
    /// be served from this version: segments carry no per-row
    /// timestamps, so rows newer than the snapshot would be
    /// indistinguishable.
    pub(crate) max_ts: u64,
}

impl MainSet {
    /// The empty pre-merge version (epoch 0, no rows, no dictionaries).
    pub(crate) fn empty() -> MainSet {
        MainSet { segments: Vec::new(), bases: Vec::new(), rows: 0, dicts: Vec::new(), epoch: 0, max_ts: 0 }
    }
}

/// What one delta→main merge did — returned by
/// [`crate::table::Table::merge`] so the caller (the `Database`) can
/// charge the re-encoding work to the energy meter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Rows moved from the delta into main segments.
    pub rows_merged: usize,
    /// Main segments created.
    pub segments_created: usize,
    /// Plain bytes of the merged rows (the encode input).
    pub raw_bytes: usize,
    /// Encoded bytes of the created segments (the encode output).
    pub encoded_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zone_predicates_cover_all_ops() {
        // Zone [10, 20].
        let (lo, hi) = (10, 20);
        assert!(zone_may_match(CmpOp::Eq, 15, lo, hi));
        assert!(!zone_may_match(CmpOp::Eq, 9, lo, hi));
        assert!(!zone_may_match(CmpOp::Lt, 10, lo, hi));
        assert!(zone_may_match(CmpOp::Le, 10, lo, hi));
        assert!(!zone_may_match(CmpOp::Gt, 20, lo, hi));
        assert!(zone_may_match(CmpOp::Ge, 20, lo, hi));
        assert!(zone_may_match(CmpOp::Ne, 15, lo, hi));
        // Constant zone [7, 7]: Ne 7 can never match, Eq 7 always does.
        assert!(!zone_may_match(CmpOp::Ne, 7, 7, 7));
        assert!(zone_all_match(CmpOp::Eq, 7, 7, 7));
        assert!(zone_all_match(CmpOp::Lt, 21, lo, hi));
        assert!(zone_all_match(CmpOp::Ge, 10, lo, hi));
        assert!(!zone_all_match(CmpOp::Ge, 11, lo, hi));
        assert!(zone_all_match(CmpOp::Ne, 9, lo, hi));
    }

    #[test]
    fn zone_shortcuts_agree_with_row_evaluation() {
        let data: Vec<i64> = (10..=20).collect();
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            for lit in 5..25 {
                let any = data.iter().any(|&v| op.eval(v, lit));
                let all = data.iter().all(|&v| op.eval(v, lit));
                assert_eq!(zone_may_match(op, lit, 10, 20), any, "{op:?} {lit} may");
                assert_eq!(zone_all_match(op, lit, 10, 20), all, "{op:?} {lit} all");
            }
        }
    }

    #[test]
    fn build_compresses_and_zones() {
        let ints: Column = (0..1000i64).collect::<Vec<_>>().into_iter().collect();
        let validity = vec![vec![true; 1000]];
        let seg = Segment::build(&[ints], &validity, 100, 900, &[None], None);
        assert_eq!(seg.rows(), 800);
        assert_eq!(seg.zone(0), Some((100, 899)));
        assert_eq!(seg.sorted_by(), None, "merge-ordered build claims no sort");
        assert!(seg.encoded_bytes() < seg.raw_bytes(), "sorted ints must compress");
        assert_eq!(seg.get_int(0, 0), Some(100));
        assert_eq!(seg.null_count(0), 0);
        assert_eq!(seg.null_count(5), 800, "missing column is all-null");
    }

    #[test]
    fn build_records_sort_claim() {
        let ints: Column = vec![1i64, 1, 2, 3, 5, 8].into_iter().collect();
        let validity = vec![vec![true; 6]];
        let seg = Segment::build(&[ints], &validity, 0, 6, &[None], Some(0));
        assert_eq!(seg.sorted_by(), Some(0));
    }

    #[test]
    fn build_remaps_strings_into_global_dict() {
        let mut local = DictColumn::new();
        for s in ["b", "a", "b", "c"] {
            local.push(s);
        }
        let validity = vec![vec![true; 4]];
        let mut global = DictColumn::new();
        global.intern("z"); // pre-existing global entry
        let remap = build_remap(&local, &mut global);
        let seg = Segment::build(&[Column::Str(local)], &validity, 0, 4, &[Some(remap)], None);
        // Codes stored in the segment resolve through the global dict.
        let decoded: Vec<&str> =
            (0..4).map(|i| global.decode(seg.get_int(0, i).unwrap() as u32).unwrap()).collect();
        assert_eq!(decoded, vec!["b", "a", "b", "c"]);
    }
}
