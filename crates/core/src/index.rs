//! Secondary indexes with Need-to-Know maintenance (paper §IV.A).
//!
//! The Need-to-Know principle: *"a system … would only update the index
//! if another application has indicated interest in reading the index"*,
//! versus the classical principle of ubiquity that maintains every index
//! on every update. [`IndexMaintenance`] selects the behaviour;
//! experiment E9 measures maintenance work and lookup latency under
//! update-heavy workloads with varying reader interest.

use std::collections::HashMap;
use std::fmt;

/// Index maintenance discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IndexMaintenance {
    /// Classical ubiquity: update the index on every write.
    Eager,
    /// Need-to-Know: defer maintenance until a reader shows interest.
    NeedToKnow,
}

impl fmt::Display for IndexMaintenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexMaintenance::Eager => f.write_str("eager"),
            IndexMaintenance::NeedToKnow => f.write_str("need-to-know"),
        }
    }
}

/// Work counters for the E9 comparison.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Individual key insertions performed (eager or catch-up).
    pub maintenance_ops: u64,
    /// Catch-up passes triggered by readers.
    pub catchups: u64,
    /// Lookups served.
    pub lookups: u64,
}

/// A hash index over an `i64` column, mapping key → row ids.
///
/// ```
/// use haecdb::index::{IndexMaintenance, SecondaryIndex};
/// let mut idx = SecondaryIndex::new(IndexMaintenance::NeedToKnow);
/// idx.on_insert(7, 0);
/// idx.on_insert(7, 1);
/// assert_eq!(idx.stats().maintenance_ops, 0); // deferred
/// assert_eq!(idx.lookup(7), vec![0, 1]);      // reader triggers catch-up
/// assert_eq!(idx.stats().maintenance_ops, 2);
/// ```
#[derive(Clone, Debug)]
pub struct SecondaryIndex {
    maintenance: IndexMaintenance,
    map: HashMap<i64, Vec<u32>>,
    /// Writes not yet reflected in `map` (Need-to-Know backlog).
    backlog: Vec<(i64, u32)>,
    stats: IndexStats,
}

impl SecondaryIndex {
    /// Creates an empty index under the given discipline.
    pub fn new(maintenance: IndexMaintenance) -> Self {
        SecondaryIndex { maintenance, map: HashMap::new(), backlog: Vec::new(), stats: IndexStats::default() }
    }

    /// The maintenance discipline.
    pub fn maintenance(&self) -> IndexMaintenance {
        self.maintenance
    }

    /// Work counters so far.
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    /// Rows pending in the backlog (Need-to-Know only).
    pub fn backlog_len(&self) -> usize {
        self.backlog.len()
    }

    /// Notifies the index of a new row with key `key` at `row`.
    pub fn on_insert(&mut self, key: i64, row: u32) {
        match self.maintenance {
            IndexMaintenance::Eager => {
                self.map.entry(key).or_default().push(row);
                self.stats.maintenance_ops += 1;
            }
            IndexMaintenance::NeedToKnow => {
                self.backlog.push((key, row));
            }
        }
    }

    /// Brings a Need-to-Know index up to date (no-op when eager or
    /// already current).
    pub fn catch_up(&mut self) {
        if self.backlog.is_empty() {
            return;
        }
        self.stats.catchups += 1;
        for (key, row) in self.backlog.drain(..) {
            self.map.entry(key).or_default().push(row);
            self.stats.maintenance_ops += 1;
        }
    }

    /// Looks up the rows for `key`. A lookup *is* reader interest, so a
    /// deferred index catches up first — that latency is the price of
    /// the saved maintenance, and exactly what E9 charts.
    pub fn lookup(&mut self, key: i64) -> Vec<u32> {
        self.catch_up();
        self.stats.lookups += 1;
        self.map.get(&key).cloned().unwrap_or_default()
    }

    /// Number of distinct keys currently indexed (excludes backlog).
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eager_maintains_immediately() {
        let mut idx = SecondaryIndex::new(IndexMaintenance::Eager);
        for i in 0..100u32 {
            idx.on_insert((i % 10) as i64, i);
        }
        assert_eq!(idx.stats().maintenance_ops, 100);
        assert_eq!(idx.backlog_len(), 0);
        assert_eq!(idx.lookup(3).len(), 10);
        assert_eq!(idx.stats().catchups, 0);
    }

    #[test]
    fn need_to_know_defers_until_read() {
        let mut idx = SecondaryIndex::new(IndexMaintenance::NeedToKnow);
        for i in 0..100u32 {
            idx.on_insert((i % 10) as i64, i);
        }
        assert_eq!(idx.stats().maintenance_ops, 0, "no reader, no work");
        assert_eq!(idx.backlog_len(), 100);
        // First read pays the catch-up.
        assert_eq!(idx.lookup(3).len(), 10);
        assert_eq!(idx.stats().maintenance_ops, 100);
        assert_eq!(idx.stats().catchups, 1);
        assert_eq!(idx.backlog_len(), 0);
        // Subsequent reads are cheap.
        assert_eq!(idx.lookup(4).len(), 10);
        assert_eq!(idx.stats().catchups, 1);
    }

    #[test]
    fn write_only_workload_never_pays() {
        // The paper's motivating case: an index nobody reads costs an
        // eager system work and a need-to-know system nothing.
        let mut eager = SecondaryIndex::new(IndexMaintenance::Eager);
        let mut ntk = SecondaryIndex::new(IndexMaintenance::NeedToKnow);
        for i in 0..10_000u32 {
            eager.on_insert(i as i64, i);
            ntk.on_insert(i as i64, i);
        }
        assert_eq!(eager.stats().maintenance_ops, 10_000);
        assert_eq!(ntk.stats().maintenance_ops, 0);
    }

    #[test]
    fn results_identical_across_disciplines() {
        let mut eager = SecondaryIndex::new(IndexMaintenance::Eager);
        let mut ntk = SecondaryIndex::new(IndexMaintenance::NeedToKnow);
        for i in 0..1000u32 {
            let k = (i % 37) as i64;
            eager.on_insert(k, i);
            ntk.on_insert(k, i);
        }
        for k in 0..37 {
            assert_eq!(eager.lookup(k), ntk.lookup(k), "key {k}");
        }
    }

    #[test]
    fn interleaved_writes_and_reads() {
        let mut idx = SecondaryIndex::new(IndexMaintenance::NeedToKnow);
        idx.on_insert(1, 0);
        assert_eq!(idx.lookup(1), vec![0]);
        idx.on_insert(1, 1);
        idx.on_insert(2, 2);
        assert_eq!(idx.backlog_len(), 2);
        assert_eq!(idx.lookup(1), vec![0, 1]);
        assert_eq!(idx.lookup(2), vec![2]);
        assert_eq!(idx.stats().catchups, 2);
    }

    #[test]
    fn missing_key_empty() {
        let mut idx = SecondaryIndex::new(IndexMaintenance::Eager);
        assert!(idx.lookup(99).is_empty());
        assert_eq!(idx.distinct_keys(), 0);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", IndexMaintenance::NeedToKnow), "need-to-know");
    }
}
