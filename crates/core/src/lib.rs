//! # haecdb
//!
//! An energy-efficient in-memory column-store database — the facade
//! crate of the reproduction of *W. Lehner, "Energy-Efficient In-Memory
//! Database Computing" (DATE 2013, pp. 470–474)*.
//!
//! The paper is a vision paper: it describes the system a main-memory
//! DBMS must become — flexible schemas, energy-metered execution,
//! adaptive operators, need-to-know index maintenance, conversations,
//! robustness, elasticity. `haecdb` is that system, assembled from the
//! substrate crates:
//!
//! | concern | crate |
//! |---|---|
//! | power/energy model, RAPL emulation | `haec-energy` |
//! | columnar storage + compression | `haec-columnar` |
//! | vectorized adaptive operators | `haec-exec` |
//! | MVCC / OCC / logging / conversations | `haec-txn` |
//! | storage tiers + aging | `haec-storage` |
//! | interconnect + compressed shipping | `haec-net` |
//! | DVFS governors + elasticity | `haec-sched` |
//! | dual-objective optimizer | `haec-planner` |
//! | discrete-event simulation core | `haec-sim` |
//!
//! This crate adds what only the integrated system can provide: the
//! [`db::Database`] facade with flexible-schema, segmented main/delta
//! tables ([`schema`], [`table`], [`segment`]), Need-to-Know indexes
//! ([`index`]), the energy-metered scan-on-compressed query path
//! ([`db`]), and failure-compensating execution ([`robust`]).
//!
//! ## Quickstart
//!
//! ```
//! use haecdb::prelude::*;
//!
//! let db = Database::new();
//! db.create_table("orders", &[("id", DataType::Int64), ("amount", DataType::Int64)])?;
//! for i in 0..1000i64 {
//!     db.insert("orders", &Record::new().with("id", i).with("amount", i % 97))?;
//! }
//! let result = db.execute(&Query::scan("orders")
//!     .filter("amount", CmpOp::Lt, 10)
//!     .aggregate(AggKind::Count, "amount"))?;
//! assert!(result.energy.joules() > 0.0); // every query is energy-metered
//! # Ok::<(), haecdb::error::DbError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod db;
pub mod error;
pub mod index;
pub mod robust;
pub mod schema;
pub mod segment;
pub mod table;

/// Convenient glob-import of the crate's main types (plus the commonly
/// used types of the substrate crates).
pub mod prelude {
    pub use crate::db::{Database, DbSnapshot, DbTransaction, Filter, Query, QueryResult, StrFilter};
    pub use crate::error::{DbError, DbResult, QueryError};
    pub use crate::index::{IndexMaintenance, IndexStats, SecondaryIndex};
    pub use crate::robust::{run_with_failures, RestartPolicy, RobustReport};
    pub use crate::schema::{Record, SchemaMode, TableSchema};
    pub use crate::segment::{MergeStats, Segment, SEGMENT_ROWS};
    pub use crate::table::{Table, TableSnapshot};
    pub use haec_columnar::value::{CmpOp, DataType, Value};
    pub use haec_exec::agg::AggKind;
    pub use haec_exec::cancel::CancelToken;
    pub use haec_exec::pool::{ExecOpts, MorselGate, WorkerPool};
    pub use haec_planner::optimizer::Goal;
    pub use haec_txn::oracle::{Timestamp, TimestampOracle};
}

pub use db::{Database, DbSnapshot, DbTransaction, Query, QueryResult};
pub use error::{DbError, DbResult, QueryError};
pub use index::IndexMaintenance;
pub use schema::{Record, SchemaMode, TableSchema};
pub use table::{Table, TableSnapshot};
