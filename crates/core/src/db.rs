//! The `haecdb` facade: tables, indexes, and the energy-metered query
//! path.
//!
//! Every query is planned with the dual-objective cost model (index vs
//! scan per the session [`Goal`]), executed with the adaptive vectorized
//! kernels, and charged to the database's [`EnergyMeter`] — making
//! "energy per query" a first-class observable, as the paper demands.
//!
//! Execution is **segment-granular** over the main/delta store of
//! [`crate::table::Table`]: whole segments are skipped via zone maps,
//! integer and string predicates on main segments run directly on the
//! compressed data ([`haec_columnar::encoding::EncodedInts::scan`] — no
//! decode), the flat delta tail uses the vectorized selection kernels,
//! and segments are dispatched as morsels across real threads for large
//! tables. Aggregation pushes down the same way: each segment folds a
//! partial [`AggState`] straight from its encoded columns via streaming
//! decode ([`haec_columnar::encoding::EncodedInts::iter`] — no
//! full-column materialization), zone maps answer MIN/MAX and COUNT for
//! fully-surviving segments without touching a single column byte, and
//! partials merge with [`AggState::merge`]. Scanning (and folding)
//! encoded bytes instead of raw rows is the paper's "energy efficiency
//! by data reduction" made concrete: less DRAM traffic per answered
//! query — and every path, including the decode itself, is billed to the
//! meter.

use crate::error::{DbError, DbResult};
use crate::index::{IndexMaintenance, IndexStats, SecondaryIndex};
use crate::schema::{Record, TableSchema};
use crate::segment::{zone_all_match, zone_may_match, MergeStats, SegColumn};
use crate::table::Table;
use haec_columnar::bitmap::Bitmap;
use haec_columnar::chunk::Chunk;
use haec_columnar::column::Column;
use haec_columnar::dict::DictColumn;
use haec_columnar::encoding::{EncodedInts, EncodedIter};
use haec_columnar::value::{CmpOp, DataType, Value};
use haec_energy::calibrate::{Kernel, KernelCosts};
use haec_energy::machine::MachineSpec;
use haec_energy::meter::EnergyMeter;
use haec_energy::profile::{CostEstimator, ExecutionContext, ResourceProfile};
use haec_energy::units::{ByteCount, Joules};
use haec_exec::agg::{aggregate, AggKind, AggState};
use haec_exec::morsel::parallel_morsels;
use haec_exec::select::{select_metered, SelectKernel};
use haec_planner::access::{choose_access_segmented, AccessPath};
use haec_planner::cost::CostModel;
use haec_planner::optimizer::{choose, Goal};
use std::collections::HashMap;
use std::time::Duration;

/// One conjunct of a query's WHERE clause (integer columns).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Filter {
    /// Column name.
    pub column: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal operand.
    pub literal: i64,
}

/// An equality predicate on a dictionary-encoded string column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StrFilter {
    /// Column name.
    pub column: String,
    /// The value rows must equal (`negated` flips to `<>`).
    pub value: String,
    /// `true` for `<>`, `false` for `=`.
    pub negated: bool,
}

/// A declarative query against one table.
///
/// ```
/// use haecdb::db::Query;
/// use haec_columnar::value::CmpOp;
/// use haec_exec::agg::AggKind;
/// let q = Query::scan("orders")
///     .filter("amount", CmpOp::Ge, 100)
///     .filter_str_eq("country", "de")
///     .group_by("region")
///     .aggregate(AggKind::Sum, "amount");
/// assert_eq!(q.table(), "orders");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    table: String,
    filters: Vec<Filter>,
    str_filters: Vec<StrFilter>,
    group_by: Option<String>,
    agg: Option<(AggKind, String)>,
    select: Option<Vec<String>>,
}

impl Query {
    /// Starts a query over `table`.
    pub fn scan(table: impl Into<String>) -> Self {
        Query {
            table: table.into(),
            filters: Vec::new(),
            str_filters: Vec::new(),
            group_by: None,
            agg: None,
            select: None,
        }
    }

    /// Adds a conjunctive integer predicate.
    pub fn filter(mut self, column: impl Into<String>, op: CmpOp, literal: i64) -> Self {
        self.filters.push(Filter { column: column.into(), op, literal });
        self
    }

    /// Adds a conjunctive string-equality predicate (evaluated on
    /// dictionary codes, never on the strings themselves).
    pub fn filter_str_eq(mut self, column: impl Into<String>, value: impl Into<String>) -> Self {
        self.str_filters.push(StrFilter { column: column.into(), value: value.into(), negated: false });
        self
    }

    /// Adds a conjunctive string-inequality predicate.
    pub fn filter_str_ne(mut self, column: impl Into<String>, value: impl Into<String>) -> Self {
        self.str_filters.push(StrFilter { column: column.into(), value: value.into(), negated: true });
        self
    }

    /// Groups by an integer or string column (string keys group on
    /// dictionary codes; the strings are decoded once per group for the
    /// output).
    pub fn group_by(mut self, column: impl Into<String>) -> Self {
        self.group_by = Some(column.into());
        self
    }

    /// Aggregates `column` with `kind`.
    pub fn aggregate(mut self, kind: AggKind, column: impl Into<String>) -> Self {
        self.agg = Some((kind, column.into()));
        self
    }

    /// Restricts output columns (ignored when aggregating).
    pub fn select<I, S>(mut self, columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.select = Some(columns.into_iter().map(Into::into).collect());
        self
    }

    /// The queried table.
    pub fn table(&self) -> &str {
        &self.table
    }
}

/// Row-count threshold above which the segment scan runs morsel-parallel
/// on real threads (one morsel = one segment) instead of serially.
pub const PARALLEL_SCAN_ROWS: usize = 262_144;

/// The outcome of a query: rows plus full metering.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The result rows.
    pub rows: Chunk,
    /// Modelled energy charged for this query.
    pub energy: Joules,
    /// Modelled execution time.
    pub modeled_time: Duration,
    /// Measured wall time of the real execution.
    pub wall_time: Duration,
    /// The access path taken for the first indexable predicate.
    pub access_path: Option<AccessPath>,
    /// The resource profile the energy charge was computed from (decode
    /// cycles, DRAM traffic, …) — lets callers verify *what* was billed,
    /// e.g. that a zone-answered MIN touched zero column bytes.
    pub profile: ResourceProfile,
}

/// An integer predicate resolved to a column index.
#[derive(Clone, Copy)]
struct IntPred {
    col: usize,
    op: CmpOp,
    literal: i64,
}

/// A string predicate resolved to dictionary codes: `global_code` for
/// main segments (table-global dictionary), `delta_code` for the current
/// delta tail (its local dictionary).
#[derive(Clone)]
struct StrPred {
    col: usize,
    value: String,
    global_code: Option<i64>,
    delta_code: Option<u32>,
    negated: bool,
}

/// Key reserved for the sentinel `""` of string-group rows in segments
/// that predate the column, when neither dictionary has interned `""`.
const SENTINEL_STR_KEY: i64 = -1;

/// A group-by column resolved for segment-wise aggregation.
enum GroupCol {
    /// An integer key column.
    Int(usize),
    /// A string key column, grouped on dictionary codes (never on the
    /// strings themselves). Keys live in a unified space: codes of the
    /// table-global dictionary first, then delta-local codes the global
    /// dictionary has not seen, shifted by `global_len`.
    Str {
        /// Column index.
        col: usize,
        /// Delta-local code → unified key.
        delta_remap: Vec<i64>,
        /// Unified key of the sentinel `""` (for segments predating the
        /// column).
        sentinel_key: i64,
        /// Size of the table-global dictionary (the shift).
        global_len: usize,
    },
}

/// What to compute per execution unit (segment or delta chunk).
#[derive(Clone, Copy)]
struct AggSpec<'a> {
    kind: AggKind,
    /// Value column index (validated `Int64`).
    vidx: usize,
    group: Option<&'a GroupCol>,
}

/// A partial aggregate from one execution unit, merged across units with
/// [`AggState::merge`] (commutative, so parallel completion order does
/// not matter).
#[derive(Clone)]
enum AggAcc {
    Global(AggState),
    Grouped(HashMap<i64, AggState>),
}

impl AggAcc {
    fn identity(grouped: bool) -> AggAcc {
        if grouped {
            AggAcc::Grouped(HashMap::new())
        } else {
            AggAcc::Global(AggState::empty())
        }
    }

    fn merge(&mut self, other: AggAcc) {
        match (self, other) {
            (AggAcc::Global(a), AggAcc::Global(b)) => a.merge(&b),
            (AggAcc::Grouped(a), AggAcc::Grouped(b)) => {
                for (k, s) in b {
                    a.entry(k).or_default().merge(&s);
                }
            }
            _ => unreachable!("all units of one query share the group shape"),
        }
    }
}

/// A segment column as an aggregation input: encoded data, or a constant
/// (the sentinel of a column this segment predates, or a skipped value
/// read for COUNT).
#[derive(Clone, Copy)]
enum SegSource<'a> {
    Enc(&'a EncodedInts),
    Const(i64),
}

impl<'a> SegSource<'a> {
    fn iter(&self, rows: usize) -> SegIter<'a> {
        match self {
            SegSource::Enc(e) => SegIter::Enc(e.iter()),
            SegSource::Const(v) => SegIter::Const { v: *v, left: rows },
        }
    }

    fn get(&self, i: usize) -> i64 {
        match self {
            SegSource::Enc(e) => e.get(i),
            SegSource::Const(v) => *v,
        }
    }

    /// Decode work per inspected item (constants cost nothing).
    fn decode_items(&self, items: usize) -> u64 {
        match self {
            SegSource::Enc(_) => items as u64,
            SegSource::Const(_) => 0,
        }
    }

    /// DRAM bytes for streaming `streamed` of `rows` rows.
    fn stream_bytes(&self, streamed: usize, rows: usize) -> u64 {
        match self {
            SegSource::Enc(e) => (e.size_bytes() * streamed / rows.max(1)) as u64,
            SegSource::Const(_) => 0,
        }
    }
}

/// Streaming view of a [`SegSource`].
enum SegIter<'a> {
    Enc(EncodedIter<'a>),
    Const { v: i64, left: usize },
}

impl Iterator for SegIter<'_> {
    type Item = i64;

    fn next(&mut self) -> Option<i64> {
        match self {
            SegIter::Enc(it) => it.next(),
            SegIter::Const { v, left } => {
                if *left == 0 {
                    return None;
                }
                *left -= 1;
                Some(*v)
            }
        }
    }
}

/// The in-memory, energy-metered database.
///
/// ```
/// use haecdb::prelude::*;
///
/// let mut db = Database::new();
/// db.create_table("t", &[("k", DataType::Int64), ("v", DataType::Int64)])?;
/// db.insert("t", &Record::new().with("k", 1i64).with("v", 10i64))?;
/// db.insert("t", &Record::new().with("k", 2i64).with("v", 20i64))?;
/// let out = db.execute(&Query::scan("t").filter("v", CmpOp::Gt, 15))?;
/// assert_eq!(out.rows.rows(), 1);
/// assert!(out.energy.joules() > 0.0);
/// # Ok::<(), haecdb::error::DbError>(())
/// ```
#[derive(Debug)]
pub struct Database {
    machine: MachineSpec,
    estimator: CostEstimator,
    costs: KernelCosts,
    meter: EnergyMeter,
    tables: HashMap<String, Table>,
    indexes: HashMap<(String, String), SecondaryIndex>,
    goal: Goal,
}

impl Database {
    /// Creates a database on the default 2013 commodity machine model.
    pub fn new() -> Self {
        Database::with_machine(MachineSpec::commodity_2013())
    }

    /// Creates a database over an explicit machine model.
    pub fn with_machine(machine: MachineSpec) -> Self {
        Database {
            estimator: CostEstimator::new(machine.clone()),
            machine,
            costs: KernelCosts::default_2013(),
            meter: EnergyMeter::new(),
            tables: HashMap::new(),
            indexes: HashMap::new(),
            goal: Goal::MinTime,
        }
    }

    /// Sets the session optimization goal (Fig. 2's knob).
    pub fn set_goal(&mut self, goal: Goal) {
        self.goal = goal;
    }

    /// The session goal.
    pub fn goal(&self) -> Goal {
        self.goal
    }

    /// The machine model.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// The cumulative energy meter.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Creates a strict-schema table.
    ///
    /// # Errors
    ///
    /// [`DbError::TableExists`] on name collisions.
    pub fn create_table(&mut self, name: &str, columns: &[(&str, DataType)]) -> DbResult<()> {
        if self.tables.contains_key(name) {
            return Err(DbError::TableExists(name.to_string()));
        }
        let schema = TableSchema::strict(columns.iter().map(|(n, t)| (n.to_string(), *t)).collect());
        self.tables.insert(name.to_string(), Table::new(name, schema));
        Ok(())
    }

    /// Creates a flexible-schema ("data first") table.
    ///
    /// # Errors
    ///
    /// [`DbError::TableExists`] on name collisions.
    pub fn create_flexible_table(&mut self, name: &str) -> DbResult<()> {
        if self.tables.contains_key(name) {
            return Err(DbError::TableExists(name.to_string()));
        }
        self.tables.insert(name.to_string(), Table::new(name, TableSchema::flexible()));
        Ok(())
    }

    /// Looks a table up.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Inserts one record into the table's delta tail, maintaining
    /// indexes per their discipline. Once the delta outgrows the table's
    /// merge threshold, a delta→main merge runs automatically (and its
    /// re-encoding cost is charged to the meter).
    ///
    /// # Errors
    ///
    /// Propagates schema violations; unknown table is
    /// [`DbError::NoSuchTable`].
    pub fn insert(&mut self, table: &str, record: &Record) -> DbResult<()> {
        let t = self.tables.get_mut(table).ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        let row = t.rows() as u32;
        t.insert(record)?;
        let needs_merge = t.needs_merge();
        // Feed indexes on this table.
        for ((tname, col), idx) in self.indexes.iter_mut() {
            if tname == table {
                if let Some(Value::Int(key)) = record.get(col) {
                    idx.on_insert(*key, row);
                }
            }
        }
        // Charge ingestion: one materialize per field, billing the bytes
        // each field actually writes (a string is its payload plus a
        // 4-byte dictionary code, not an 8-byte cell).
        let payload: u64 = record
            .iter()
            .map(|(_, v)| match v {
                Value::Int(_) | Value::Float(_) => 8,
                Value::Str(s) => 4 + s.len() as u64,
                Value::Null => 1, // validity bit, rounded up
            })
            .sum();
        let profile = ResourceProfile {
            cpu_cycles: self.costs.cycles_for(Kernel::Materialize, record.len() as u64),
            dram_written: ByteCount::new(payload),
            ..ResourceProfile::default()
        };
        self.estimator.charge(&profile, self.exec_ctx(), &mut self.meter);
        if needs_merge {
            self.merge(table)?;
        }
        Ok(())
    }

    /// Compacts `table`'s delta into compressed main segments, charging
    /// the re-encoding CPU and DRAM traffic to the energy meter. A
    /// no-op (and free) when the delta is empty.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] for unknown tables.
    pub fn merge(&mut self, table: &str) -> DbResult<MergeStats> {
        let t = self.tables.get_mut(table).ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        let stats = t.merge();
        if stats.rows_merged > 0 {
            let values = (stats.raw_bytes / 8) as u64;
            // `EncodedInts::auto` trial-encodes every scheme and keeps
            // the smallest; charge all four attempts, plus reading the
            // flat delta and writing the encoded segments.
            let profile = ResourceProfile {
                cpu_cycles: self.costs.cycles_for(Kernel::CompressEncode, values * 4),
                dram_read: ByteCount::new(stats.raw_bytes as u64),
                dram_written: ByteCount::new(stats.encoded_bytes as u64),
                ..ResourceProfile::default()
            };
            self.estimator.charge(&profile, self.exec_ctx(), &mut self.meter);
        }
        Ok(stats)
    }

    /// Sets the delta row count that triggers an automatic merge on
    /// `table` (`usize::MAX` disables auto-merging).
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] for unknown tables.
    pub fn set_merge_threshold(&mut self, table: &str, rows: usize) -> DbResult<()> {
        let t = self.tables.get_mut(table).ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        t.set_merge_threshold(rows);
        Ok(())
    }

    /// Creates a hash index on an integer column, backfilling existing
    /// rows under the chosen maintenance discipline.
    ///
    /// # Errors
    ///
    /// Unknown table/column errors.
    pub fn create_index(&mut self, table: &str, column: &str, maintenance: IndexMaintenance) -> DbResult<()> {
        let t = self.tables.get(table).ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        let col = t
            .column(column)
            .ok_or_else(|| DbError::NoSuchColumn { table: table.to_string(), column: column.to_string() })?;
        let data = col
            .as_int64()
            .ok_or_else(|| DbError::TypeMismatch { column: column.to_string(), expected: DataType::Int64 })?;
        let mut idx = SecondaryIndex::new(maintenance);
        for (row, &key) in data.iter().enumerate() {
            idx.on_insert(key, row as u32);
        }
        // The backfill is real work: decode the compressed main, read the
        // flat delta, and build the hash table — all billed to the meter.
        let rows = data.len() as u64;
        let profile = ResourceProfile {
            cpu_cycles: self.costs.cycles_for(Kernel::CompressDecode, t.main_rows() as u64)
                + self.costs.cycles_for(Kernel::HashBuild, rows),
            dram_read: ByteCount::new(t.column_encoded_bytes(column).unwrap_or(0) as u64),
            dram_written: ByteCount::new(rows * 12), // key + row id per entry
            ..ResourceProfile::default()
        };
        self.estimator.charge(&profile, self.exec_ctx(), &mut self.meter);
        self.indexes.insert((table.to_string(), column.to_string()), idx);
        Ok(())
    }

    /// Work counters of an index.
    pub fn index_stats(&self, table: &str, column: &str) -> Option<IndexStats> {
        self.indexes.get(&(table.to_string(), column.to_string())).map(|i| i.stats())
    }

    fn exec_ctx(&self) -> ExecutionContext {
        ExecutionContext::parallel(self.machine.pstates().fastest(), self.machine.cores())
    }

    /// Executes a query, charging its energy to the meter.
    ///
    /// Main-segment predicates run on compressed data behind zone maps;
    /// the delta tail uses the flat vectorized kernels; large tables scan
    /// segment-parallel.
    ///
    /// # Errors
    ///
    /// Unknown tables/columns, type mismatches, and malformed queries.
    pub fn execute(&mut self, query: &Query) -> DbResult<QueryResult> {
        let started = std::time::Instant::now();
        let t = self.tables.get(&query.table).ok_or_else(|| DbError::NoSuchTable(query.table.clone()))?;
        let mut profile = ResourceProfile::default();
        let mut access_path = None;

        // --- resolve + type-check all predicates up front --------------
        let int_preds = resolve_int_preds(t, &query.table, &query.filters)?;
        let str_preds = resolve_str_preds(t, &query.table, &query.str_filters)?;

        // --- access path for the first filter -------------------------
        let mut positions: Option<Vec<u32>> = None;
        let mut remaining: &[IntPred] = &int_preds;
        if let Some(first) = query.filters.first() {
            let key = (query.table.clone(), first.column.clone());
            if self.indexes.contains_key(&key) && first.op == CmpOp::Eq {
                // Cost both paths against the *compressed* footprint and
                // zone maps, pick per the session goal.
                let mut meta = t.planner_meta();
                if let Some(c) = meta.columns.iter_mut().find(|c| c.name == first.column) {
                    c.indexed = true;
                }
                let zones = t.zone_maps(&first.column).expect("validated int column");
                let encoded = t.column_encoded_bytes(&first.column).expect("column exists") as u64;
                let model = CostModel::new(self.machine.clone()).with_kernel_costs(self.costs.clone());
                let decision = choose_access_segmented(
                    &model,
                    &meta,
                    &first.column,
                    first.op,
                    first.literal,
                    &zones,
                    encoded,
                );
                let candidates = [decision.scan_cost, decision.index_cost.unwrap_or(decision.scan_cost)];
                let planner_costs = [
                    haec_planner::cost::PlanCost { time: candidates[0].time, energy: candidates[0].energy },
                    haec_planner::cost::PlanCost { time: candidates[1].time, energy: candidates[1].energy },
                ];
                let pick = choose(&planner_costs, self.goal).unwrap_or(0);
                if pick == 1 && decision.index_cost.is_some() {
                    let idx = self.indexes.get_mut(&key).expect("checked above");
                    let mut rows = idx.lookup(first.literal);
                    rows.sort_unstable();
                    profile.cpu_cycles +=
                        self.costs.cycles_for(Kernel::IndexLookup, rows.len().max(1) as u64);
                    profile.dram_read += ByteCount::new(rows.len() as u64 * 128 + 128);
                    positions = Some(rows);
                    access_path = Some(AccessPath::IndexLookup);
                    remaining = &int_preds[1..];
                } else {
                    access_path = Some(AccessPath::FullScan);
                }
            }
        }
        let t = self.tables.get(&query.table).expect("still present");

        match &mut positions {
            Some(pos) => {
                // --- index path: point re-checks per surviving row -----
                for p in remaining {
                    // Bill the rows *inspected* (pre-retain), not the
                    // rows that survive.
                    let inspected = pos.len() as u64;
                    pos.retain(|&r| {
                        p.op.eval(t.get_int(p.col, r as usize).expect("validated int column"), p.literal)
                    });
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::SelectPredicated, inspected);
                    profile.dram_read += ByteCount::new(inspected * 8);
                }
                for p in &str_preds {
                    let inspected = pos.len() as u64;
                    pos.retain(|&r| {
                        t.str_eq(p.col, r as usize, &p.value).expect("validated str column") != p.negated
                    });
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::SelectPredicated, inspected);
                    profile.dram_read += ByteCount::new(inspected * 4);
                }
            }
            None if !int_preds.is_empty() || !str_preds.is_empty() => {
                // --- segment-granular scan on compressed data ----------
                let (pos, scan_profile) = self.scan_segmented(t, &int_preds, &str_preds);
                profile += scan_profile;
                positions = Some(pos);
            }
            None => {} // no predicates: all rows
        }

        // --- aggregation / projection ---------------------------------
        let out = match (&query.group_by, &query.agg) {
            (Some(_), None) => return Err(DbError::BadQuery("group_by requires an aggregate".into())),
            (None, None) => {
                // Materialize only the projected columns (all schema
                // columns when no projection is given).
                let names: Vec<String> = match &query.select {
                    Some(cols) => cols.clone(),
                    None => t.schema().columns().iter().map(|(n, _)| n.clone()).collect(),
                };
                let cols = t.materialize_columns(&names, positions.as_deref())?;
                let chunk = Chunk::new(cols).expect("gathered columns are equal length");
                profile.cpu_cycles += self.costs.cycles_for(Kernel::Materialize, chunk.rows() as u64);
                profile.dram_written += ByteCount::new(chunk.size_bytes() as u64);
                chunk
            }
            (group, Some((kind, value_col))) => {
                let vidx = check_int_column(t, &query.table, value_col)?;
                let gcol = match group {
                    Some(name) => Some(resolve_group_col(t, &query.table, name)?),
                    None => None,
                };
                let spec = AggSpec { kind: *kind, vidx, group: gcol.as_ref() };
                let (acc, agg_profile) = self.aggregate_segmented(t, spec, positions.as_deref());
                profile += agg_profile;
                let agg_name = format!("{kind}({value_col})");
                match (acc, &gcol) {
                    (AggAcc::Global(st), _) => {
                        let result = st.value(*kind).unwrap_or(f64::NAN);
                        Chunk::new(vec![(agg_name, vec![result].into_iter().collect::<Column>())])
                            .expect("one column")
                    }
                    (AggAcc::Grouped(map), Some(GroupCol::Int(_))) => {
                        let mut grouped: Vec<(i64, AggState)> = map.into_iter().collect();
                        grouped.sort_unstable_by_key(|&(k, _)| k);
                        let key_col: Column =
                            grouped.iter().map(|&(k, _)| k).collect::<Vec<i64>>().into_iter().collect();
                        let val_col = agg_value_column(&grouped, *kind);
                        let gname = group.clone().expect("grouped result implies group column");
                        Chunk::new(vec![(gname, key_col), (agg_name, val_col)]).expect("two columns")
                    }
                    (AggAcc::Grouped(map), Some(GroupCol::Str { col, global_len, .. })) => {
                        // Keys are dictionary codes; decode once per
                        // *group* (not per row) and sort by string so the
                        // output order is independent of code assignment.
                        let mut grouped: Vec<(String, AggState)> = map
                            .into_iter()
                            .map(|(k, s)| (decode_group_key(t, *col, *global_len, k), s))
                            .collect();
                        grouped.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                        let mut keys = DictColumn::new();
                        for (k, _) in &grouped {
                            keys.push(k);
                        }
                        let val_col = agg_value_column(&grouped, *kind);
                        let gname = group.clone().expect("grouped result implies group column");
                        Chunk::new(vec![(gname, Column::Str(keys)), (agg_name, val_col)])
                            .expect("two columns")
                    }
                    (AggAcc::Grouped(_), None) => unreachable!("grouped result without group column"),
                }
            }
        };

        // --- metering ---------------------------------------------------
        let before = self.meter.snapshot();
        let est = self.estimator.charge(&profile, self.exec_ctx(), &mut self.meter);
        let delta = self.meter.since(&before);
        Ok(QueryResult {
            rows: out,
            energy: delta.grand_total(),
            modeled_time: est.time,
            wall_time: started.elapsed(),
            access_path,
            profile,
        })
    }

    /// Evaluates all predicates over every segment plus the delta tail,
    /// returning matching global row ids (ascending) and the work done.
    ///
    /// Per segment: zone maps first (prune whole segments, or skip
    /// tautological predicates), then
    /// [`haec_columnar::encoding::EncodedInts::scan`] directly on the
    /// compressed column — main-segment data is **never decoded** for
    /// predicate evaluation. The delta runs the flat bitwise kernel,
    /// chunked into [`crate::segment::SEGMENT_ROWS`]-sized units so an
    /// oversized (merge-disabled) delta still parallelizes. Above
    /// [`PARALLEL_SCAN_ROWS`] total rows, units are dispatched as
    /// morsels over real threads.
    fn scan_segmented(
        &self,
        t: &Table,
        int_preds: &[IntPred],
        str_preds: &[StrPred],
    ) -> (Vec<u32>, ResourceProfile) {
        let nsegs = t.segments().len();
        let parts = self.eval_units(t, |u| {
            if u < nsegs {
                self.eval_segment(t, u, int_preds, str_preds)
            } else {
                let (start, end) = delta_chunk(t, u - nsegs);
                self.eval_delta(t, start, end, int_preds, str_preds)
            }
        });
        let mut pos = Vec::new();
        let mut profile = ResourceProfile::default();
        for (p, pr) in parts {
            pos.extend(p);
            profile += pr;
        }
        (pos, profile)
    }

    /// Runs `eval` over every execution unit of `t` — one per main
    /// segment plus one per [`crate::segment::SEGMENT_ROWS`]-sized delta
    /// chunk (see [`delta_chunk`]) — and returns the per-unit results in
    /// unit order. Above [`PARALLEL_SCAN_ROWS`] total rows, units are
    /// dispatched as one-unit morsels over real threads. Both the scan
    /// and the aggregation pushdown go through here, so they can never
    /// disagree on parallel granularity.
    fn eval_units<R>(&self, t: &Table, eval: impl Fn(usize) -> R + Sync) -> Vec<R>
    where
        R: Send + Clone,
    {
        let units = t.segments().len() + t.delta_rows().div_ceil(crate::segment::SEGMENT_ROWS);
        if t.rows() >= PARALLEL_SCAN_ROWS && units > 1 {
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(self.machine.cores())
                .min(units);
            let mut parts = parallel_morsels(
                units,
                threads,
                1, // one morsel = one segment (or delta chunk)
                |m| (m.start..m.end).map(|u| (u, eval(u))).collect::<Vec<_>>(),
                |mut a: Vec<(usize, R)>, b| {
                    a.extend(b);
                    a
                },
                Vec::new(),
            );
            parts.sort_unstable_by_key(|&(u, _)| u);
            parts.into_iter().map(|(_, r)| r).collect()
        } else {
            (0..units).map(eval).collect()
        }
    }

    /// One segment's worth of predicate evaluation, on compressed data.
    fn eval_segment(
        &self,
        t: &Table,
        si: usize,
        int_preds: &[IntPred],
        str_preds: &[StrPred],
    ) -> (Vec<u32>, ResourceProfile) {
        let seg = &t.segments()[si];
        let base = t.segment_base(si);
        let rows = seg.rows();
        let mut profile = ResourceProfile::default();
        let mut bm: Option<Bitmap> = None;
        for p in int_preds {
            match seg.column(p.col) {
                None => {
                    // Segment predates the column: every row holds the
                    // null sentinel 0.
                    if !p.op.eval(0, p.literal) {
                        return (Vec::new(), profile);
                    }
                }
                Some(SegColumn::Int { data, zone, .. }) => {
                    let (lo, hi) = zone.expect("non-empty segment has a zone");
                    if !zone_may_match(p.op, p.literal, lo, hi) {
                        return (Vec::new(), profile); // pruned: no data touched
                    }
                    if zone_all_match(p.op, p.literal, lo, hi) {
                        continue; // tautology on this segment: no scan needed
                    }
                    let mut m = Bitmap::zeros(rows);
                    data.scan(p.op, p.literal, &mut m);
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::SelectBitwise, rows as u64);
                    profile.dram_read += ByteCount::new(data.size_bytes() as u64);
                    and_into(&mut bm, m);
                }
                Some(_) => unreachable!("predicate validated as integer column"),
            }
        }
        for p in str_preds {
            match seg.column(p.col) {
                None => {
                    // Sentinel "" everywhere.
                    if (p.value.is_empty()) == p.negated {
                        return (Vec::new(), profile);
                    }
                }
                Some(SegColumn::Str { codes, zone }) => {
                    let Some(code) = p.global_code else {
                        // Value never interned: `=` matches nothing,
                        // `<>` everything.
                        if p.negated {
                            continue;
                        }
                        return (Vec::new(), profile);
                    };
                    let op = if p.negated { CmpOp::Ne } else { CmpOp::Eq };
                    let (lo, hi) = zone.expect("non-empty segment has a zone");
                    if !zone_may_match(op, code, lo, hi) {
                        return (Vec::new(), profile);
                    }
                    if zone_all_match(op, code, lo, hi) {
                        continue;
                    }
                    let mut m = Bitmap::zeros(rows);
                    codes.scan(op, code, &mut m);
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::SelectBitwise, rows as u64);
                    profile.dram_read += ByteCount::new(codes.size_bytes() as u64);
                    and_into(&mut bm, m);
                }
                Some(_) => unreachable!("predicate validated as string column"),
            }
        }
        let pos = match bm {
            Some(b) => b.iter_ones().map(|i| (base + i) as u32).collect(),
            // Every predicate was a tautology on this segment.
            None => (base..base + rows).map(|i| i as u32).collect(),
        };
        (pos, profile)
    }

    /// Predicate evaluation over delta rows `[start, end)`: flat
    /// vectorized kernels over the dense columns, exactly the
    /// pre-segmentation scan path (one chunk = one parallel unit).
    fn eval_delta(
        &self,
        t: &Table,
        start: usize,
        end: usize,
        int_preds: &[IntPred],
        str_preds: &[StrPred],
    ) -> (Vec<u32>, ResourceProfile) {
        let base = t.main_rows() + start;
        let rows = end - start;
        let mut profile = ResourceProfile::default();
        let mut positions: Option<Vec<u32>> = None;
        for p in int_preds {
            let data = &t
                .delta_column(p.col)
                .and_then(Column::as_int64)
                .expect("predicate validated as integer column")[start..end];
            let (hits, stats) = select_metered(data, p.op, p.literal, SelectKernel::Bitwise, &self.costs);
            profile += stats.profile;
            positions = Some(match positions.take() {
                None => hits,
                Some(prev) => haec_exec::select::intersect_positions(&prev, &hits),
            });
        }
        for p in str_preds {
            let codes = &t
                .delta_column(p.col)
                .and_then(Column::as_str)
                .expect("predicate validated as string column")
                .codes()[start..end];
            // Bill the rows actually *inspected*: the full chunk only for
            // the first predicate; afterwards just the surviving
            // positions that are re-checked.
            let inspected = positions.as_ref().map_or(codes.len(), Vec::len) as u64;
            profile.cpu_cycles += self.costs.cycles_for(Kernel::SelectBitwise, inspected);
            profile.dram_read += ByteCount::new(inspected * 4);
            let keep = |row: usize| -> bool {
                match p.delta_code {
                    Some(c) => (codes[row] == c) != p.negated,
                    None => p.negated,
                }
            };
            positions = Some(match positions.take() {
                Some(mut pos) => {
                    pos.retain(|&r| keep(r as usize));
                    pos
                }
                None => (0..codes.len()).filter(|&i| keep(i)).map(|i| i as u32).collect(),
            });
        }
        let pos = positions.unwrap_or_else(|| (0..rows as u32).collect());
        (pos.into_iter().map(|p| p + base as u32).collect(), profile)
    }

    /// Segment-wise aggregation pushdown: every main segment folds a
    /// partial [`AggState`] (or per-group hash of states) directly from
    /// its encoded columns via streaming decode — no full-column
    /// materialization — the delta tail folds flat, and partials merge
    /// with [`AggState::merge`]. Units dispatch over the same morsel
    /// machinery as [`Database::scan_segmented`], so large aggregates
    /// parallelize.
    ///
    /// Fast paths answer whole segments from metadata when every row of
    /// the segment survives the filters: COUNT from the row count,
    /// MIN/MAX from the zone map — zero column bytes touched. All other
    /// paths bill decode cycles plus the encoded bytes actually read.
    fn aggregate_segmented(
        &self,
        t: &Table,
        spec: AggSpec<'_>,
        positions: Option<&[u32]>,
    ) -> (AggAcc, ResourceProfile) {
        let nsegs = t.segments().len();
        let units = nsegs + t.delta_rows().div_ceil(crate::segment::SEGMENT_ROWS);
        // Split the ascending global position list into per-unit slices.
        let unit_hits: Option<Vec<&[u32]>> = positions.map(|pos| {
            let mut out = Vec::with_capacity(units);
            let mut i = 0;
            for u in 0..units {
                let end_row = if u < nsegs {
                    t.segment_base(u) + t.segments()[u].rows()
                } else {
                    t.main_rows() + delta_chunk(t, u - nsegs).1
                };
                let from = i;
                while i < pos.len() && (pos[i] as usize) < end_row {
                    i += 1;
                }
                out.push(&pos[from..i]);
            }
            out
        });
        let parts = self.eval_units(t, |u| {
            let hits = unit_hits.as_ref().map(|v| v[u]);
            if hits.is_some_and(<[u32]>::is_empty) {
                return (AggAcc::identity(spec.group.is_some()), ResourceProfile::default());
            }
            if u < nsegs {
                self.agg_segment(t, u, spec, hits)
            } else {
                let (start, end) = delta_chunk(t, u - nsegs);
                self.agg_delta(t, start, end, spec, hits)
            }
        });
        let mut acc = AggAcc::identity(spec.group.is_some());
        let mut profile = ResourceProfile::default();
        for (a, p) in parts {
            acc.merge(a);
            profile += p;
        }
        (acc, profile)
    }

    /// One main segment's partial aggregate, computed from the encoded
    /// data (or from zone metadata when possible).
    fn agg_segment(
        &self,
        t: &Table,
        si: usize,
        spec: AggSpec<'_>,
        hits: Option<&[u32]>,
    ) -> (AggAcc, ResourceProfile) {
        let seg = &t.segments()[si];
        let base = t.segment_base(si);
        let rows = seg.rows();
        let mut profile = ResourceProfile::default();
        // A hit list covering every row of the segment is the tautology
        // case: the filters kept the whole segment.
        let full = hits.is_none_or(|h| h.len() == rows);
        let vsrc = match seg.column(spec.vidx) {
            Some(SegColumn::Int { data, .. }) => SegSource::Enc(data),
            None => SegSource::Const(0), // segment predates the column
            Some(_) => unreachable!("aggregate value validated as integer column"),
        };
        // COUNT never needs the values — only how many rows survive.
        let vsrc = if spec.kind == AggKind::Count { SegSource::Const(0) } else { vsrc };
        let Some(g) = spec.group else {
            let mut st = AggState::empty();
            if full {
                match (spec.kind, vsrc, seg.zone(spec.vidx)) {
                    // Sentinel column: `rows` copies of 0, no data exists.
                    (_, SegSource::Const(v), _) if spec.kind != AggKind::Count => {
                        st.update_repeated(v, rows);
                    }
                    // Zone-answered: zero column bytes touched.
                    (AggKind::Count, _, _) => {
                        st.count = rows as u64;
                        profile.cpu_cycles += self.costs.cycles_for(Kernel::AggUpdate, 1);
                    }
                    (AggKind::Min | AggKind::Max, _, Some((lo, hi))) => {
                        st.count = rows as u64;
                        st.min = lo;
                        st.max = hi;
                        profile.cpu_cycles += self.costs.cycles_for(Kernel::AggUpdate, 1);
                    }
                    (_, SegSource::Enc(EncodedInts::Rle(r)), _) => {
                        // SUM/AVG on RLE: one multiply per run.
                        for run in r.runs() {
                            st.update_repeated(run.value, run.len);
                        }
                        let items = r.runs().len() as u64;
                        profile.cpu_cycles += self.costs.cycles_for(Kernel::CompressDecode, items)
                            + self.costs.cycles_for(Kernel::AggUpdate, items);
                        profile.dram_read += ByteCount::new(vsrc.stream_bytes(rows, rows));
                    }
                    (_, SegSource::Enc(data), _) => {
                        for v in data.iter() {
                            st.update(v);
                        }
                        profile.cpu_cycles += self.costs.cycles_for(Kernel::CompressDecode, rows as u64)
                            + self.costs.cycles_for(Kernel::AggUpdate, rows as u64);
                        profile.dram_read += ByteCount::new(vsrc.stream_bytes(rows, rows));
                    }
                    (_, SegSource::Const(_), _) => unreachable!("count handled above"),
                }
            } else {
                let hits = hits.expect("not full implies a hit list");
                if spec.kind == AggKind::Count {
                    st.count = hits.len() as u64;
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::AggUpdate, 1);
                } else if hits.len() * 8 < rows {
                    // Sparse survivors: compressed random access.
                    for &p in hits {
                        st.update(vsrc.get(p as usize - base));
                    }
                    let n = hits.len();
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::CompressDecode, vsrc.decode_items(n))
                        + self.costs.cycles_for(Kernel::AggUpdate, n as u64);
                    profile.dram_read += ByteCount::new(vsrc.decode_items(n) * 8);
                } else {
                    // Dense survivors: stream-decode up to the last hit.
                    let mut hi = 0;
                    for (local, v) in vsrc.iter(rows).enumerate() {
                        if hi == hits.len() {
                            break;
                        }
                        if hits[hi] as usize - base == local {
                            st.update(v);
                            hi += 1;
                        }
                    }
                    let streamed = hits.last().map_or(0, |&p| p as usize - base + 1);
                    profile.cpu_cycles +=
                        self.costs.cycles_for(Kernel::CompressDecode, vsrc.decode_items(streamed))
                            + self.costs.cycles_for(Kernel::AggUpdate, hits.len() as u64);
                    profile.dram_read += ByteCount::new(vsrc.stream_bytes(streamed, rows));
                }
            }
            return (AggAcc::Global(st), profile);
        };
        // Grouped: stream keys and values together into per-group states.
        let gsrc = match g {
            GroupCol::Int(gidx) => match seg.column(*gidx) {
                Some(SegColumn::Int { data, .. }) => SegSource::Enc(data),
                None => SegSource::Const(0),
                Some(_) => unreachable!("group key validated as integer column"),
            },
            GroupCol::Str { col, sentinel_key, .. } => match seg.column(*col) {
                // Segment codes index the table-global dictionary, which
                // is exactly the unified key space.
                Some(SegColumn::Str { codes, .. }) => SegSource::Enc(codes),
                None => SegSource::Const(*sentinel_key),
                Some(_) => unreachable!("group key validated as string column"),
            },
        };
        let mut map: HashMap<i64, AggState> = HashMap::new();
        if full {
            for (k, v) in gsrc.iter(rows).zip(vsrc.iter(rows)) {
                map.entry(k).or_default().update(v);
            }
            let items = gsrc.decode_items(rows) + vsrc.decode_items(rows);
            profile.cpu_cycles += self.costs.cycles_for(Kernel::CompressDecode, items)
                + self.costs.cycles_for(Kernel::AggUpdate, rows as u64)
                + self.costs.cycles_for(Kernel::HashProbe, rows as u64);
            profile.dram_read +=
                ByteCount::new(gsrc.stream_bytes(rows, rows) + vsrc.stream_bytes(rows, rows));
        } else {
            let hits = hits.expect("not full implies a hit list");
            let n = hits.len();
            if n * 8 < rows {
                for &p in hits {
                    let local = p as usize - base;
                    map.entry(gsrc.get(local)).or_default().update(vsrc.get(local));
                }
                let items = gsrc.decode_items(n) + vsrc.decode_items(n);
                profile.cpu_cycles += self.costs.cycles_for(Kernel::CompressDecode, items)
                    + self.costs.cycles_for(Kernel::AggUpdate, n as u64)
                    + self.costs.cycles_for(Kernel::HashProbe, n as u64);
                // Codes are 4-byte cells, int keys and values 8-byte.
                let key_width = if matches!(g, GroupCol::Str { .. }) { 4 } else { 8 };
                profile.dram_read +=
                    ByteCount::new(gsrc.decode_items(n) * key_width + vsrc.decode_items(n) * 8);
            } else {
                let mut hi = 0;
                for (local, (k, v)) in gsrc.iter(rows).zip(vsrc.iter(rows)).enumerate() {
                    if hi == n {
                        break;
                    }
                    if hits[hi] as usize - base == local {
                        map.entry(k).or_default().update(v);
                        hi += 1;
                    }
                }
                let streamed = hits.last().map_or(0, |&p| p as usize - base + 1);
                let items = gsrc.decode_items(streamed) + vsrc.decode_items(streamed);
                profile.cpu_cycles += self.costs.cycles_for(Kernel::CompressDecode, items)
                    + self.costs.cycles_for(Kernel::AggUpdate, n as u64)
                    + self.costs.cycles_for(Kernel::HashProbe, n as u64);
                profile.dram_read +=
                    ByteCount::new(gsrc.stream_bytes(streamed, rows) + vsrc.stream_bytes(streamed, rows));
            }
        }
        (AggAcc::Grouped(map), profile)
    }

    /// Partial aggregate over delta rows `[start, end)`: the flat tail
    /// folds with the existing kernels (dense column slices, no decode).
    fn agg_delta(
        &self,
        t: &Table,
        start: usize,
        end: usize,
        spec: AggSpec<'_>,
        hits: Option<&[u32]>,
    ) -> (AggAcc, ResourceProfile) {
        let base = t.main_rows();
        let rows = end - start;
        let mut profile = ResourceProfile::default();
        let full = hits.is_none_or(|h| h.len() == rows);
        let vals = t
            .delta_column(spec.vidx)
            .and_then(Column::as_int64)
            .expect("aggregate value validated as integer column");
        let Some(g) = spec.group else {
            let st = if spec.kind == AggKind::Count {
                // Counting needs no value reads.
                let mut st = AggState::empty();
                st.count = if full { rows } else { hits.expect("not full").len() } as u64;
                profile.cpu_cycles += self.costs.cycles_for(Kernel::AggUpdate, 1);
                st
            } else if full {
                let st = aggregate(&vals[start..end]);
                profile.cpu_cycles += self.costs.cycles_for(Kernel::AggUpdate, rows as u64);
                profile.dram_read += ByteCount::new(rows as u64 * 8);
                st
            } else {
                let hits = hits.expect("not full implies a hit list");
                let mut st = AggState::empty();
                for &p in hits {
                    st.update(vals[p as usize - base]);
                }
                profile.cpu_cycles += self.costs.cycles_for(Kernel::AggUpdate, hits.len() as u64);
                profile.dram_read += ByteCount::new(hits.len() as u64 * 8);
                st
            };
            return (AggAcc::Global(st), profile);
        };
        // Grouped delta fold. Key bytes: 8 per int key, 4 per code.
        let (key_of, key_bytes): (Box<dyn Fn(usize) -> i64 + '_>, u64) = match g {
            GroupCol::Int(gidx) => {
                let keys = t
                    .delta_column(*gidx)
                    .and_then(Column::as_int64)
                    .expect("group key validated as integer column");
                (Box::new(move |local| keys[local]), 8)
            }
            GroupCol::Str { col, delta_remap, .. } => {
                let codes = t
                    .delta_column(*col)
                    .and_then(Column::as_str)
                    .expect("group key validated as string column")
                    .codes();
                (Box::new(move |local| delta_remap[codes[local] as usize]), 4)
            }
        };
        let mut map: HashMap<i64, AggState> = HashMap::new();
        let mut fold = |local: usize| {
            let v = if spec.kind == AggKind::Count { 0 } else { vals[local] };
            map.entry(key_of(local)).or_default().update(v);
        };
        let inspected = if full {
            (start..end).for_each(&mut fold);
            rows as u64
        } else {
            let hits = hits.expect("not full implies a hit list");
            hits.iter().for_each(|&p| fold(p as usize - base));
            hits.len() as u64
        };
        let value_bytes = if spec.kind == AggKind::Count { 0 } else { 8 };
        profile.cpu_cycles += self.costs.cycles_for(Kernel::AggUpdate, inspected)
            + self.costs.cycles_for(Kernel::HashProbe, inspected);
        profile.dram_read += ByteCount::new(inspected * (key_bytes + value_bytes));
        (AggAcc::Grouped(map), profile)
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

/// Delta rows `[start, end)` of delta chunk `c` — the
/// [`crate::segment::SEGMENT_ROWS`]-sized execution units an oversized
/// (merge-disabled) delta is split into (see `Database::eval_units`).
fn delta_chunk(t: &Table, c: usize) -> (usize, usize) {
    let start = c * crate::segment::SEGMENT_ROWS;
    (start, (start + crate::segment::SEGMENT_ROWS).min(t.delta_rows()))
}

/// ANDs `m` into the accumulator (first predicate just installs it).
fn and_into(acc: &mut Option<Bitmap>, m: Bitmap) {
    match acc {
        None => *acc = Some(m),
        Some(b) => b.and_with(&m),
    }
}

/// The aggregate output column for sorted `(key, state)` pairs.
fn agg_value_column<K>(grouped: &[(K, AggState)], kind: AggKind) -> Column {
    grouped.iter().map(|(_, s)| s.value(kind).unwrap_or(f64::NAN)).collect::<Vec<f64>>().into_iter().collect()
}

/// Resolves a group-by column: integer columns group on values, string
/// columns on dictionary codes (see [`GroupCol::Str`] for the unified
/// key space spanning the global and delta-local dictionaries).
fn resolve_group_col(t: &Table, table: &str, name: &str) -> DbResult<GroupCol> {
    let idx = t
        .schema()
        .position(name)
        .ok_or_else(|| DbError::NoSuchColumn { table: table.to_string(), column: name.to_string() })?;
    match t.schema().columns()[idx].1 {
        DataType::Int64 => Ok(GroupCol::Int(idx)),
        DataType::Str => {
            let global = t.global_dict(idx);
            let global_len = global.map_or(0, DictColumn::dict_size);
            let local = t.delta_column(idx).and_then(Column::as_str);
            let delta_remap = local.map_or_else(Vec::new, |l| {
                (0..l.dict_size())
                    .map(|c| {
                        let s = l.decode(c as u32).expect("local code in range");
                        global.and_then(|g| g.code_of(s)).map_or(global_len as i64 + c as i64, i64::from)
                    })
                    .collect()
            });
            let sentinel_key = global
                .and_then(|g| g.code_of(""))
                .map(i64::from)
                .or_else(|| local.and_then(|l| l.code_of("")).map(|c| global_len as i64 + i64::from(c)))
                .unwrap_or(SENTINEL_STR_KEY);
            Ok(GroupCol::Str { col: idx, delta_remap, sentinel_key, global_len })
        }
        DataType::Float64 => {
            Err(DbError::TypeMismatch { column: name.to_string(), expected: DataType::Int64 })
        }
    }
}

/// Decodes a unified string-group key back to its string.
fn decode_group_key(t: &Table, col: usize, global_len: usize, key: i64) -> String {
    if key == SENTINEL_STR_KEY {
        return String::new();
    }
    let s = if (key as usize) < global_len {
        t.global_dict(col).and_then(|g| g.decode(key as u32))
    } else {
        t.delta_column(col)
            .and_then(Column::as_str)
            .and_then(|l| l.decode((key as usize - global_len) as u32))
    };
    s.expect("group key decodes through its dictionary").to_string()
}

fn check_int_column(t: &Table, table: &str, name: &str) -> DbResult<usize> {
    let idx = t
        .schema()
        .position(name)
        .ok_or_else(|| DbError::NoSuchColumn { table: table.to_string(), column: name.to_string() })?;
    if t.schema().columns()[idx].1 != DataType::Int64 {
        return Err(DbError::TypeMismatch { column: name.to_string(), expected: DataType::Int64 });
    }
    Ok(idx)
}

fn resolve_int_preds(t: &Table, table: &str, filters: &[Filter]) -> DbResult<Vec<IntPred>> {
    filters
        .iter()
        .map(|f| {
            let col = check_int_column(t, table, &f.column)?;
            Ok(IntPred { col, op: f.op, literal: f.literal })
        })
        .collect()
}

fn resolve_str_preds(t: &Table, table: &str, filters: &[StrFilter]) -> DbResult<Vec<StrPred>> {
    filters
        .iter()
        .map(|f| {
            let col = t.schema().position(&f.column).ok_or_else(|| DbError::NoSuchColumn {
                table: table.to_string(),
                column: f.column.clone(),
            })?;
            if t.schema().columns()[col].1 != DataType::Str {
                return Err(DbError::TypeMismatch { column: f.column.clone(), expected: DataType::Str });
            }
            let global_code = t.global_dict(col).and_then(|d| d.code_of(&f.value)).map(i64::from);
            let delta_code = t.delta_column(col).and_then(Column::as_str).and_then(|d| d.code_of(&f.value));
            Ok(StrPred { col, value: f.value.clone(), global_code, delta_code, negated: f.negated })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::SEGMENT_ROWS;

    fn sample_db(rows: i64) -> Database {
        let mut db = Database::new();
        db.create_table(
            "orders",
            &[("id", DataType::Int64), ("region", DataType::Int64), ("amount", DataType::Int64)],
        )
        .unwrap();
        for i in 0..rows {
            db.insert("orders", &Record::new().with("id", i).with("region", i % 4).with("amount", i * 3))
                .unwrap();
        }
        db
    }

    #[test]
    fn filter_and_project() {
        let mut db = sample_db(100);
        let out = db.execute(&Query::scan("orders").filter("amount", CmpOp::Lt, 30).select(["id"])).unwrap();
        assert_eq!(out.rows.rows(), 10);
        assert_eq!(out.rows.width(), 1);
        assert!(out.energy.joules() > 0.0);
    }

    #[test]
    fn conjunctive_filters() {
        let mut db = sample_db(100);
        let out = db
            .execute(&Query::scan("orders").filter("region", CmpOp::Eq, 1).filter("amount", CmpOp::Lt, 60))
            .unwrap();
        // region==1: ids 1,5,9,...; amount<60 → id*3<60 → id<20 → ids 1,5,9,13,17
        assert_eq!(out.rows.rows(), 5);
    }

    #[test]
    fn global_and_grouped_aggregates() {
        let mut db = sample_db(100);
        let out = db.execute(&Query::scan("orders").aggregate(AggKind::Sum, "amount")).unwrap();
        let want: i64 = (0..100).map(|i| i * 3).sum();
        assert_eq!(out.rows.row(0).unwrap()[0].as_float(), Some(want as f64));

        let out = db
            .execute(&Query::scan("orders").group_by("region").aggregate(AggKind::Count, "amount"))
            .unwrap();
        assert_eq!(out.rows.rows(), 4);
        for r in 0..4 {
            assert_eq!(out.rows.row(r).unwrap()[1].as_float(), Some(25.0));
        }
    }

    #[test]
    fn segmented_execution_matches_flat() {
        // The core differential guarantee: merging (any number of times)
        // never changes any query answer.
        let queries = [
            Query::scan("orders").filter("amount", CmpOp::Lt, 600),
            Query::scan("orders").filter("region", CmpOp::Eq, 2).filter("amount", CmpOp::Ge, 300),
            Query::scan("orders").filter("id", CmpOp::Gt, 750).select(["id", "amount"]),
            Query::scan("orders").group_by("region").aggregate(AggKind::Sum, "amount"),
            Query::scan("orders").filter("amount", CmpOp::Ne, 0).aggregate(AggKind::Max, "id"),
        ];
        let mut flat = sample_db(1000);
        let mut seg = sample_db(1000);
        seg.merge("orders").unwrap();
        let mut mixed = Database::new();
        mixed
            .create_table(
                "orders",
                &[("id", DataType::Int64), ("region", DataType::Int64), ("amount", DataType::Int64)],
            )
            .unwrap();
        for i in 0..1000i64 {
            mixed
                .insert("orders", &Record::new().with("id", i).with("region", i % 4).with("amount", i * 3))
                .unwrap();
            if i == 311 || i == 702 {
                mixed.merge("orders").unwrap();
            }
        }
        assert_eq!(mixed.table("orders").unwrap().segments().len(), 2);
        for q in &queries {
            let a = flat.execute(q).unwrap();
            let b = seg.execute(q).unwrap();
            let c = mixed.execute(q).unwrap();
            assert_eq!(a.rows.rows(), b.rows.rows(), "{q:?}");
            for r in 0..a.rows.rows() {
                assert_eq!(a.rows.row(r), b.rows.row(r), "{q:?} row {r}");
                assert_eq!(a.rows.row(r), c.rows.row(r), "{q:?} row {r} (mixed)");
            }
        }
    }

    #[test]
    fn merge_is_metered_and_auto_triggers() {
        let mut db = sample_db(10);
        db.set_merge_threshold("orders", 50).unwrap();
        let before = db.meter().grand_total();
        let stats = db.merge("orders").unwrap();
        assert_eq!(stats.rows_merged, 10);
        assert!(db.meter().grand_total().joules() > before.joules(), "merge must cost energy");
        // Empty merge is free.
        let e0 = db.meter().grand_total();
        assert_eq!(db.merge("orders").unwrap(), MergeStats::default());
        assert_eq!(db.meter().grand_total(), e0);
        // Auto-trigger: inserting past the threshold compacts the delta.
        for i in 10..200i64 {
            db.insert("orders", &Record::new().with("id", i).with("region", i % 4).with("amount", i * 3))
                .unwrap();
        }
        let t = db.table("orders").unwrap();
        assert!(t.delta_rows() < 50, "delta stayed below threshold, got {}", t.delta_rows());
        assert!(t.main_rows() >= 150);
    }

    #[test]
    fn zone_pruning_reduces_scan_energy() {
        // Sorted ids split across segments: a range predicate touching
        // one segment must cost measurably less than one touching all.
        // Build a 4-segment table by merging every 250 rows.
        let mut seg_db = Database::new();
        seg_db
            .create_table(
                "orders",
                &[("id", DataType::Int64), ("region", DataType::Int64), ("amount", DataType::Int64)],
            )
            .unwrap();
        for i in 0..1000i64 {
            seg_db
                .insert("orders", &Record::new().with("id", i).with("region", i % 4).with("amount", i * 3))
                .unwrap();
            if (i + 1) % 250 == 0 {
                seg_db.merge("orders").unwrap();
            }
        }
        assert_eq!(seg_db.table("orders").unwrap().segments().len(), 4);
        // SUM must stream the surviving values, so pruning 3 of 4
        // segments shows up directly in the energy bill.
        let narrow = seg_db
            .execute(&Query::scan("orders").filter("id", CmpOp::Lt, 100).aggregate(AggKind::Sum, "id"))
            .unwrap();
        let broad = seg_db
            .execute(&Query::scan("orders").filter("id", CmpOp::Ge, 0).aggregate(AggKind::Sum, "id"))
            .unwrap();
        assert_eq!(narrow.rows.row(0).unwrap()[0].as_float(), Some(4950.0));
        assert_eq!(broad.rows.row(0).unwrap()[0].as_float(), Some(499_500.0));
        // The narrow query prunes 3 of 4 segments AND folds fewer rows.
        assert!(narrow.energy.joules() < broad.energy.joules());
        // COUNT under a tautological predicate is answered from segment
        // row counts without touching any column bytes at all.
        let count = seg_db
            .execute(&Query::scan("orders").filter("id", CmpOp::Ge, 0).aggregate(AggKind::Count, "id"))
            .unwrap();
        assert_eq!(count.rows.row(0).unwrap()[0].as_float(), Some(1000.0));
        assert!(count.energy.joules() < narrow.energy.joules());
    }

    #[test]
    fn index_is_used_for_point_queries() {
        let mut db = sample_db(50_000);
        db.create_index("orders", "id", IndexMaintenance::Eager).unwrap();
        let out = db.execute(&Query::scan("orders").filter("id", CmpOp::Eq, 123)).unwrap();
        assert_eq!(out.rows.rows(), 1);
        assert_eq!(out.access_path, Some(AccessPath::IndexLookup));
        assert_eq!(db.index_stats("orders", "id").unwrap().lookups, 1);
    }

    #[test]
    fn index_works_across_merged_segments() {
        // Row ids are stable across merges, so an index built before a
        // merge keeps answering correctly after it.
        let mut db = sample_db(50_000);
        db.create_index("orders", "id", IndexMaintenance::Eager).unwrap();
        db.merge("orders").unwrap();
        let out = db
            .execute(&Query::scan("orders").filter("id", CmpOp::Eq, 123).filter("region", CmpOp::Eq, 3))
            .unwrap();
        assert_eq!(out.rows.rows(), 1, "id 123 has region 3");
        let miss = db
            .execute(&Query::scan("orders").filter("id", CmpOp::Eq, 123).filter("region", CmpOp::Eq, 0))
            .unwrap();
        assert_eq!(miss.rows.rows(), 0);
    }

    #[test]
    fn scan_chosen_without_index() {
        let mut db = sample_db(1000);
        let out = db.execute(&Query::scan("orders").filter("id", CmpOp::Eq, 5)).unwrap();
        assert_eq!(out.rows.rows(), 1);
        assert_eq!(out.access_path, None, "no index: no access decision");
    }

    #[test]
    fn index_and_scan_agree() {
        let mut with_idx = sample_db(10_000);
        with_idx.create_index("orders", "region", IndexMaintenance::Eager).unwrap();
        let mut without = sample_db(10_000);
        let q = Query::scan("orders").filter("region", CmpOp::Eq, 2).aggregate(AggKind::Sum, "amount");
        let a = with_idx.execute(&q).unwrap();
        let b = without.execute(&q).unwrap();
        assert_eq!(a.rows.row(0).unwrap()[0], b.rows.row(0).unwrap()[0]);
    }

    #[test]
    fn energy_goal_changes_nothing_single_node_but_is_respected() {
        let mut db = sample_db(10_000);
        db.create_index("orders", "id", IndexMaintenance::Eager).unwrap();
        db.set_goal(Goal::MinEnergy);
        assert_eq!(db.goal(), Goal::MinEnergy);
        let out = db.execute(&Query::scan("orders").filter("id", CmpOp::Eq, 7)).unwrap();
        // On one node the energy- and time-optimal access coincide (E1).
        assert_eq!(out.access_path, Some(AccessPath::IndexLookup));
    }

    #[test]
    fn meter_accumulates_across_queries() {
        let mut db = sample_db(1000);
        let before = db.meter().grand_total();
        db.execute(&Query::scan("orders").aggregate(AggKind::Sum, "amount")).unwrap();
        let mid = db.meter().grand_total();
        db.execute(&Query::scan("orders").aggregate(AggKind::Max, "amount")).unwrap();
        let after = db.meter().grand_total();
        assert!(mid > before);
        assert!(after > mid);
    }

    #[test]
    fn error_paths() {
        let mut db = sample_db(10);
        assert!(matches!(db.execute(&Query::scan("nope")), Err(DbError::NoSuchTable(_))));
        assert!(matches!(
            db.execute(&Query::scan("orders").filter("ghost", CmpOp::Eq, 1)),
            Err(DbError::NoSuchColumn { .. })
        ));
        assert!(matches!(db.execute(&Query::scan("orders").group_by("region")), Err(DbError::BadQuery(_))));
        assert!(matches!(db.create_table("orders", &[]), Err(DbError::TableExists(_))));
        assert!(db.create_index("orders", "ghost", IndexMaintenance::Eager).is_err());
        assert!(matches!(db.merge("nope"), Err(DbError::NoSuchTable(_))));
        assert!(matches!(db.set_merge_threshold("nope", 1), Err(DbError::NoSuchTable(_))));
    }

    #[test]
    fn string_filters_on_dictionary_codes() {
        let mut db = Database::new();
        db.create_table("users", &[("id", DataType::Int64), ("country", DataType::Str)]).unwrap();
        let countries = ["de", "us", "fr", "de", "de", "jp"];
        for (i, c) in countries.iter().enumerate() {
            db.insert("users", &Record::new().with("id", i as i64).with("country", *c)).unwrap();
        }
        // Exercise both storage forms: flat delta, then merged main.
        for merged in [false, true] {
            if merged {
                db.merge("users").unwrap();
            }
            let eq = db.execute(&Query::scan("users").filter_str_eq("country", "de")).unwrap();
            assert_eq!(eq.rows.rows(), 3, "merged={merged}");
            let ne = db.execute(&Query::scan("users").filter_str_ne("country", "de")).unwrap();
            assert_eq!(ne.rows.rows(), 3, "merged={merged}");
            // Unknown value: `=` empty, `<>` everything.
            assert_eq!(
                db.execute(&Query::scan("users").filter_str_eq("country", "zz")).unwrap().rows.rows(),
                0
            );
            assert_eq!(
                db.execute(&Query::scan("users").filter_str_ne("country", "zz")).unwrap().rows.rows(),
                6
            );
            // Combined with an integer predicate.
            let both = db
                .execute(&Query::scan("users").filter("id", CmpOp::Lt, 4).filter_str_eq("country", "de"))
                .unwrap();
            assert_eq!(both.rows.rows(), 2, "merged={merged}");
            // Wrong type errors cleanly.
            assert!(matches!(
                db.execute(&Query::scan("users").filter_str_eq("id", "de")),
                Err(DbError::TypeMismatch { .. })
            ));
        }
    }

    #[test]
    fn parallel_scan_path_matches_serial() {
        // Above the threshold the scan runs segment-parallel (auto-merge
        // has produced multiple 64K segments by now); results must be
        // identical to the serial reference.
        let rows = (super::PARALLEL_SCAN_ROWS + 10_000) as i64;
        let mut db = Database::new();
        db.create_table("big", &[("v", DataType::Int64)]).unwrap();
        for i in 0..rows {
            db.insert("big", &Record::new().with("v", (i * 31) % 1000)).unwrap();
        }
        let t = db.table("big").unwrap();
        assert!(t.segments().len() > 1, "auto-merge should have built segments");
        let out = db.execute(&Query::scan("big").filter("v", CmpOp::Lt, 100)).unwrap();
        let expected = (0..rows).filter(|i| (i * 31) % 1000 < 100).count();
        assert_eq!(out.rows.rows(), expected);
        // Ordering preserved (segments are re-stitched in row order).
        let first_vals = out.rows.column("v").unwrap().as_int64().unwrap();
        let reference: Vec<i64> = (0..rows).map(|i| (i * 31) % 1000).filter(|&v| v < 100).take(32).collect();
        assert_eq!(&first_vals[..32], &reference[..]);
    }

    #[test]
    fn projection_skips_unprojected_columns() {
        // Same filter, narrower projection → strictly less energy
        // (fewer columns materialized and written).
        let mut wide = sample_db(50_000);
        let mut narrow = sample_db(50_000);
        let all = wide.execute(&Query::scan("orders").filter("amount", CmpOp::Lt, 60_000)).unwrap();
        let one = narrow
            .execute(&Query::scan("orders").filter("amount", CmpOp::Lt, 60_000).select(["id"]))
            .unwrap();
        assert_eq!(all.rows.rows(), one.rows.rows());
        assert!(one.energy.joules() < all.energy.joules());
    }

    #[test]
    fn compressed_scan_beats_flat_on_energy() {
        // The acceptance-criterion shape at unit-test scale: identical
        // data and query, merged (compressed, zone-mapped) vs flat
        // delta. Compressible data → fewer DRAM bytes → less energy.
        let rows = (SEGMENT_ROWS * 2) as i64;
        let mk = || {
            let mut db = Database::new();
            db.create_table("t", &[("ts", DataType::Int64), ("v", DataType::Int64)]).unwrap();
            db.set_merge_threshold("t", usize::MAX).unwrap();
            for i in 0..rows {
                db.insert("t", &Record::new().with("ts", 1_600_000_000 + i).with("v", i % 16)).unwrap();
            }
            db
        };
        let mut flat = mk();
        let mut merged = mk();
        merged.merge("t").unwrap();
        let q = Query::scan("t").filter("v", CmpOp::Lt, 4).aggregate(AggKind::Count, "v");
        let a = flat.execute(&q).unwrap();
        let b = merged.execute(&q).unwrap();
        assert_eq!(a.rows.row(0).unwrap()[0], b.rows.row(0).unwrap()[0]);
        assert!(
            b.energy.joules() < a.energy.joules(),
            "compressed scan {} J should beat flat {} J",
            b.energy.joules(),
            a.energy.joules()
        );
    }

    #[test]
    fn segment_aggregation_is_metered_and_zone_answered() {
        let mut db = sample_db(10_000);
        db.merge("orders").unwrap();
        // Pushed-down SUM streams the encoded column: nonzero decode
        // cycles and encoded-byte DRAM traffic must be billed…
        let sum = db.execute(&Query::scan("orders").aggregate(AggKind::Sum, "amount")).unwrap();
        let want: f64 = (0..10_000).map(|i| (i * 3) as f64).sum();
        assert_eq!(sum.rows.row(0).unwrap()[0].as_float(), Some(want));
        assert!(sum.profile.dram_read.bytes() > 0, "segment aggregation must bill DRAM traffic");
        assert!(sum.profile.cpu_cycles.count() > 0, "segment aggregation must bill decode cycles");
        // …but only the *encoded* bytes, never the flat 8 B/row the
        // gather path used to bill (amount = 3·i delta-encodes tightly).
        assert!(sum.profile.dram_read.bytes() < 10_000 * 8);
        // MIN/MAX over tautological segments answer from zone maps:
        // zero column bytes touched.
        for kind in [AggKind::Min, AggKind::Max, AggKind::Count] {
            let out = db.execute(&Query::scan("orders").aggregate(kind, "amount")).unwrap();
            assert_eq!(out.profile.dram_read.bytes(), 0, "{kind} should be zone-answered");
            assert!(out.energy.joules() < sum.energy.joules(), "{kind} must beat the streaming SUM");
        }
        let max = db.execute(&Query::scan("orders").aggregate(AggKind::Max, "amount")).unwrap();
        assert_eq!(max.rows.row(0).unwrap()[0].as_float(), Some(9_999.0 * 3.0));
    }

    #[test]
    fn grouped_pushdown_parallel_matches_serial() {
        // Above PARALLEL_SCAN_ROWS the aggregation dispatches segments as
        // morsels; answers must equal the small/serial reference shape.
        let rows = (super::PARALLEL_SCAN_ROWS + 5_000) as i64;
        let mut db = Database::new();
        db.create_table("big", &[("g", DataType::Int64), ("v", DataType::Int64)]).unwrap();
        for i in 0..rows {
            db.insert("big", &Record::new().with("g", i % 7).with("v", i % 100)).unwrap();
        }
        assert!(db.table("big").unwrap().segments().len() > 1);
        let out = db
            .execute(
                &Query::scan("big").filter("v", CmpOp::Lt, 50).group_by("g").aggregate(AggKind::Sum, "v"),
            )
            .unwrap();
        assert_eq!(out.rows.rows(), 7);
        for r in 0..7 {
            let g = out.rows.row(r).unwrap()[0].as_int().unwrap();
            let want: i64 = (0..rows).filter(|i| i % 7 == g && i % 100 < 50).map(|i| i % 100).sum();
            assert_eq!(out.rows.row(r).unwrap()[1].as_float(), Some(want as f64), "group {g}");
        }
    }

    #[test]
    fn group_by_string_column_on_dictionary_codes() {
        let mut db = Database::new();
        db.create_table("users", &[("country", DataType::Str), ("score", DataType::Int64)]).unwrap();
        let data = [("de", 10), ("us", 20), ("de", 30), ("fr", 5), ("us", 7), ("de", 2)];
        for (c, s) in data {
            db.insert("users", &Record::new().with("country", c).with("score", s as i64)).unwrap();
        }
        // Both storage forms, plus the mixed case with post-merge rows.
        for stage in 0..3 {
            if stage == 1 {
                db.merge("users").unwrap();
            }
            if stage == 2 {
                db.insert("users", &Record::new().with("country", "jp").with("score", 99i64)).unwrap();
                db.insert("users", &Record::new().with("country", "de").with("score", 1i64)).unwrap();
            }
            let out = db
                .execute(&Query::scan("users").group_by("country").aggregate(AggKind::Sum, "score"))
                .unwrap();
            let mut want = vec![("de", 42.0), ("fr", 5.0), ("us", 27.0)];
            if stage == 2 {
                want = vec![("de", 43.0), ("fr", 5.0), ("jp", 99.0), ("us", 27.0)];
            }
            assert_eq!(out.rows.rows(), want.len(), "stage {stage}");
            for (r, (c, s)) in want.iter().enumerate() {
                assert_eq!(out.rows.row(r).unwrap()[0], Value::Str(c.to_string()), "stage {stage}");
                assert_eq!(out.rows.row(r).unwrap()[1].as_float(), Some(*s), "stage {stage}");
            }
        }
        // Grouping on a float column stays an error.
        let mut fdb = Database::new();
        fdb.create_table("t", &[("f", DataType::Float64), ("v", DataType::Int64)]).unwrap();
        assert!(matches!(
            fdb.execute(&Query::scan("t").group_by("f").aggregate(AggKind::Sum, "v")),
            Err(DbError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn create_index_backfill_is_metered() {
        let mut db = sample_db(5_000);
        db.merge("orders").unwrap();
        let before = db.meter().grand_total();
        db.create_index("orders", "id", IndexMaintenance::Eager).unwrap();
        assert!(db.meter().grand_total().joules() > before.joules(), "index backfill must charge the meter");
    }

    #[test]
    fn insert_bills_string_payload_bytes() {
        let mut db = Database::new();
        db.create_table("t", &[("s", DataType::Str)]).unwrap();
        db.insert("t", &Record::new().with("s", "x")).unwrap();
        let short = db.meter().grand_total().joules();
        db.insert("t", &Record::new().with("s", "x".repeat(10_000).as_str())).unwrap();
        let long = db.meter().grand_total().joules() - short;
        assert!(long > short, "a 10 KB string must cost more to ingest than one byte");
    }

    #[test]
    fn flexible_ingest_then_query() {
        let mut db = Database::new();
        db.create_flexible_table("events").unwrap();
        db.insert("events", &Record::new().with("user", 1i64)).unwrap();
        db.insert("events", &Record::new().with("user", 2i64).with("clicks", 5i64)).unwrap();
        let out = db.execute(&Query::scan("events").filter("user", CmpOp::Gt, 0)).unwrap();
        assert_eq!(out.rows.rows(), 2);
        assert_eq!(db.table("events").unwrap().schema().evolved_columns(), 2);
    }

    #[test]
    fn flexible_evolution_across_merges_queries_consistently() {
        let mut db = Database::new();
        db.create_flexible_table("events").unwrap();
        for i in 0..100i64 {
            db.insert("events", &Record::new().with("user", i)).unwrap();
        }
        db.merge("events").unwrap();
        for i in 100..200i64 {
            db.insert("events", &Record::new().with("user", i).with("clicks", i % 7)).unwrap();
        }
        // Pre-merge rows read clicks as sentinel 0.
        let zero = db.execute(&Query::scan("events").filter("clicks", CmpOp::Eq, 0)).unwrap();
        let expected = 100 + (100..200).filter(|i| i % 7 == 0).count();
        assert_eq!(zero.rows.rows(), expected);
        db.merge("events").unwrap();
        let zero2 = db.execute(&Query::scan("events").filter("clicks", CmpOp::Eq, 0)).unwrap();
        assert_eq!(zero2.rows.rows(), expected);
    }
}
