//! The `haecdb` facade: tables, indexes, and the energy-metered query
//! path.
//!
//! Every query is planned with the dual-objective cost model (index vs
//! scan per the session [`Goal`]), executed with the adaptive vectorized
//! kernels, and charged to the database's [`EnergyMeter`] — making
//! "energy per query" a first-class observable, as the paper demands.
//!
//! Execution is **segment-granular** over the main/delta store of
//! [`crate::table::Table`]: whole segments are skipped via zone maps,
//! integer and string predicates on main segments run directly on the
//! compressed data ([`haec_columnar::encoding::EncodedInts::scan`] — no
//! decode), the flat delta tail uses the vectorized selection kernels,
//! and segments are dispatched as morsels across real threads for large
//! tables. Aggregation pushes down the same way: each segment folds a
//! partial [`AggState`] straight from its encoded columns via streaming
//! decode ([`haec_columnar::encoding::EncodedInts::iter`] — no
//! full-column materialization), zone maps answer MIN/MAX and COUNT for
//! fully-surviving segments without touching a single column byte, and
//! partials merge with [`AggState::merge`]. Scanning (and folding)
//! encoded bytes instead of raw rows is the paper's "energy efficiency
//! by data reduction" made concrete: less DRAM traffic per answered
//! query — and every path, including the decode itself, is billed to the
//! meter.

use crate::error::{DbError, DbResult};
use crate::index::{IndexMaintenance, IndexStats, SecondaryIndex};
use crate::schema::{Record, TableSchema};
use crate::segment::{zone_all_match, zone_may_match, MergeStats, SegColumn, Segment};
use crate::table::{sparse_hits, Table, TableSnapshot};
use haec_columnar::bitmap::Bitmap;
use haec_columnar::chunk::Chunk;
use haec_columnar::column::Column;
use haec_columnar::dict::DictColumn;
use haec_columnar::encoding::{EncodedInts, EncodedIter};
use haec_columnar::value::{CmpOp, DataType, Value};
use haec_energy::calibrate::{Kernel, KernelCosts};
use haec_energy::machine::MachineSpec;
use haec_energy::meter::EnergyMeter;
use haec_energy::profile::{CostEstimator, ExecutionContext, ResourceProfile};
use haec_energy::units::{ByteCount, Joules};
use haec_exec::agg::{aggregate, AggKind, AggState};
use haec_exec::join::{sort_merge_join_pairs_presorted, HashJoin, HASH_BUCKET_BYTES};
use haec_exec::pool::{ExecOpts, MorselGate, RunSpec, WorkerPool};
use haec_exec::select::{select_metered, SelectKernel};
use haec_planner::access::{
    choose_access_segmented, join_zone_overlap, sorted_layout, AccessPath, ZoneMapMeta,
};
use haec_planner::cost::{CostModel, JoinAlgo, JoinSideCost, PlanCost};
use haec_planner::optimizer::{choose, Goal};
use haec_txn::oracle::{Timestamp, TimestampOracle};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// One conjunct of a query's WHERE clause (integer columns).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Filter {
    /// Column name.
    pub column: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal operand.
    pub literal: i64,
}

/// An equality predicate on a dictionary-encoded string column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StrFilter {
    /// Column name.
    pub column: String,
    /// The value rows must equal (`negated` flips to `<>`).
    pub value: String,
    /// `true` for `<>`, `false` for `=`.
    pub negated: bool,
}

/// A declarative query against one table.
///
/// ```
/// use haecdb::db::Query;
/// use haec_columnar::value::CmpOp;
/// use haec_exec::agg::AggKind;
/// let q = Query::scan("orders")
///     .filter("amount", CmpOp::Ge, 100)
///     .filter_str_eq("country", "de")
///     .group_by("region")
///     .aggregate(AggKind::Sum, "amount");
/// assert_eq!(q.table(), "orders");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    table: String,
    filters: Vec<Filter>,
    str_filters: Vec<StrFilter>,
    join: Option<JoinClause>,
    group_by: Option<String>,
    agg: Option<(AggKind, String)>,
    select: Option<Vec<String>>,
}

/// The equi-join stage of a [`Query`]: the other (right) table, the key
/// column on each side, and the right side's own filters.
#[derive(Clone, Debug, PartialEq)]
struct JoinClause {
    table: String,
    left_col: String,
    right_col: String,
    filters: Vec<Filter>,
    str_filters: Vec<StrFilter>,
}

impl Query {
    /// Starts a query over `table`.
    pub fn scan(table: impl Into<String>) -> Self {
        Query {
            table: table.into(),
            filters: Vec::new(),
            str_filters: Vec::new(),
            join: None,
            group_by: None,
            agg: None,
            select: None,
        }
    }

    /// Adds a conjunctive integer predicate.
    pub fn filter(mut self, column: impl Into<String>, op: CmpOp, literal: i64) -> Self {
        self.filters.push(Filter { column: column.into(), op, literal });
        self
    }

    /// Adds a conjunctive string-equality predicate (evaluated on
    /// dictionary codes, never on the strings themselves).
    pub fn filter_str_eq(mut self, column: impl Into<String>, value: impl Into<String>) -> Self {
        self.str_filters.push(StrFilter { column: column.into(), value: value.into(), negated: false });
        self
    }

    /// Adds a conjunctive string-inequality predicate.
    pub fn filter_str_ne(mut self, column: impl Into<String>, value: impl Into<String>) -> Self {
        self.str_filters.push(StrFilter { column: column.into(), value: value.into(), negated: true });
        self
    }

    /// Equi-joins this query's table with `table` on
    /// `left_col = right_col` (both integer columns, or both string
    /// columns — string keys join **code-to-code** on dictionary codes,
    /// never on the strings).
    ///
    /// Filters added with [`Query::filter`] / [`Query::filter_str_eq`]
    /// apply to the left (this) table; filters on the joined table go
    /// through [`Query::join_filter`] / [`Query::join_filter_str_eq`].
    /// Without a projection the output carries every left column under
    /// its own name, then every right column as `"table.column"`;
    /// [`Query::select`] accepts bare names (left side wins ties) or
    /// qualified `"table.column"` names for either side. In a
    /// self-join, bare names mean the left occurrence and qualified
    /// names the right one — matching the default projection's labels.
    ///
    /// # Panics
    ///
    /// Panics if the query already has a join stage — multi-way joins
    /// are not supported yet, and silently replacing the first join
    /// (and its `join_filter`s) would mask a query-building bug.
    pub fn join(
        mut self,
        table: impl Into<String>,
        left_col: impl Into<String>,
        right_col: impl Into<String>,
    ) -> Self {
        assert!(self.join.is_none(), "only one join stage is supported (multi-way joins are a ROADMAP item)");
        self.join = Some(JoinClause {
            table: table.into(),
            left_col: left_col.into(),
            right_col: right_col.into(),
            filters: Vec::new(),
            str_filters: Vec::new(),
        });
        self
    }

    /// Adds a conjunctive integer predicate on the joined (right) table.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Query::join`].
    pub fn join_filter(mut self, column: impl Into<String>, op: CmpOp, literal: i64) -> Self {
        self.join.as_mut().expect("join_filter requires .join(...) first").filters.push(Filter {
            column: column.into(),
            op,
            literal,
        });
        self
    }

    /// Adds a conjunctive string-equality predicate on the joined
    /// (right) table.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Query::join`].
    pub fn join_filter_str_eq(mut self, column: impl Into<String>, value: impl Into<String>) -> Self {
        self.join
            .as_mut()
            .expect("join_filter_str_eq requires .join(...) first")
            .str_filters
            .push(StrFilter { column: column.into(), value: value.into(), negated: false });
        self
    }

    /// Adds a conjunctive string-inequality predicate on the joined
    /// (right) table.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Query::join`].
    pub fn join_filter_str_ne(mut self, column: impl Into<String>, value: impl Into<String>) -> Self {
        self.join
            .as_mut()
            .expect("join_filter_str_ne requires .join(...) first")
            .str_filters
            .push(StrFilter { column: column.into(), value: value.into(), negated: true });
        self
    }

    /// Groups by an integer or string column (string keys group on
    /// dictionary codes; the strings are decoded once per group for the
    /// output).
    pub fn group_by(mut self, column: impl Into<String>) -> Self {
        self.group_by = Some(column.into());
        self
    }

    /// Aggregates `column` with `kind`.
    pub fn aggregate(mut self, kind: AggKind, column: impl Into<String>) -> Self {
        self.agg = Some((kind, column.into()));
        self
    }

    /// Restricts output columns (ignored when aggregating).
    pub fn select<I, S>(mut self, columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.select = Some(columns.into_iter().map(Into::into).collect());
        self
    }

    /// The queried table.
    pub fn table(&self) -> &str {
        &self.table
    }
}

/// Row-count threshold above which the segment scan runs morsel-parallel
/// on real threads (one morsel = one segment) instead of serially.
pub const PARALLEL_SCAN_ROWS: usize = 262_144;

/// The outcome of a query: rows plus full metering.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The result rows.
    pub rows: Chunk,
    /// Modelled energy charged for this query.
    pub energy: Joules,
    /// Modelled execution time.
    pub modeled_time: Duration,
    /// Measured wall time of the real execution.
    pub wall_time: Duration,
    /// The access path taken for the first indexable predicate.
    pub access_path: Option<AccessPath>,
    /// The resource profile the energy charge was computed from (decode
    /// cycles, DRAM traffic, …) — lets callers verify *what* was billed,
    /// e.g. that a zone-answered MIN touched zero column bytes.
    pub profile: ResourceProfile,
}

/// An integer predicate resolved to a column index.
#[derive(Clone, Copy)]
struct IntPred {
    col: usize,
    op: CmpOp,
    literal: i64,
}

/// A string predicate resolved to dictionary codes: `global_code` for
/// main segments (table-global dictionary), `delta_code` for the current
/// delta tail (its local dictionary).
#[derive(Clone)]
struct StrPred {
    col: usize,
    value: String,
    global_code: Option<i64>,
    delta_code: Option<u32>,
    negated: bool,
}

/// Key reserved for the sentinel `""` of string-group rows in segments
/// that predate the column, when neither dictionary has interned `""`.
const SENTINEL_STR_KEY: i64 = -1;

/// A group-by column resolved for segment-wise aggregation.
enum GroupCol {
    /// An integer key column.
    Int(usize),
    /// A string key column, grouped on dictionary codes (never on the
    /// strings themselves). Keys live in a unified space: codes of the
    /// table-global dictionary first, then delta-local codes the global
    /// dictionary has not seen, shifted by `global_len`.
    Str {
        /// Column index.
        col: usize,
        /// Delta-local code → unified key.
        delta_remap: Vec<i64>,
        /// Unified key of the sentinel `""` (for segments predating the
        /// column).
        sentinel_key: i64,
        /// Size of the table-global dictionary (the shift).
        global_len: usize,
    },
}

/// What to compute per execution unit (segment or delta chunk).
#[derive(Clone, Copy)]
struct AggSpec<'a> {
    kind: AggKind,
    /// Value column index (validated `Int64`).
    vidx: usize,
    group: Option<&'a GroupCol>,
}

/// A partial aggregate from one execution unit, merged across units with
/// [`AggState::merge`] (commutative, so parallel completion order does
/// not matter).
#[derive(Clone)]
enum AggAcc {
    Global(AggState),
    Grouped(HashMap<i64, AggState>),
}

impl AggAcc {
    fn identity(grouped: bool) -> AggAcc {
        if grouped {
            AggAcc::Grouped(HashMap::new())
        } else {
            AggAcc::Global(AggState::empty())
        }
    }

    fn merge(&mut self, other: AggAcc) {
        match (self, other) {
            (AggAcc::Global(a), AggAcc::Global(b)) => a.merge(&b),
            (AggAcc::Grouped(a), AggAcc::Grouped(b)) => {
                for (k, s) in b {
                    a.entry(k).or_default().merge(&s);
                }
            }
            _ => unreachable!("all units of one query share the group shape"),
        }
    }
}

/// A segment column as an aggregation input: encoded data, or a constant
/// (the sentinel of a column this segment predates, or a skipped value
/// read for COUNT).
#[derive(Clone, Copy)]
enum SegSource<'a> {
    Enc(&'a EncodedInts),
    Const(i64),
}

impl<'a> SegSource<'a> {
    fn iter(&self, rows: usize) -> SegIter<'a> {
        match self {
            SegSource::Enc(e) => SegIter::Enc(e.iter()),
            SegSource::Const(v) => SegIter::Const { v: *v, left: rows },
        }
    }

    fn get(&self, i: usize) -> i64 {
        match self {
            SegSource::Enc(e) => e.get(i),
            SegSource::Const(v) => *v,
        }
    }

    /// Decode work per inspected item (constants cost nothing).
    fn decode_items(&self, items: usize) -> u64 {
        match self {
            SegSource::Enc(_) => items as u64,
            SegSource::Const(_) => 0,
        }
    }

    /// DRAM bytes for streaming `streamed` of `rows` rows.
    fn stream_bytes(&self, streamed: usize, rows: usize) -> u64 {
        match self {
            SegSource::Enc(e) => (e.size_bytes() * streamed / rows.max(1)) as u64,
            SegSource::Const(_) => 0,
        }
    }
}

/// Streaming view of a [`SegSource`].
enum SegIter<'a> {
    Enc(EncodedIter<'a>),
    Const { v: i64, left: usize },
}

impl Iterator for SegIter<'_> {
    type Item = i64;

    fn next(&mut self) -> Option<i64> {
        match self {
            SegIter::Enc(it) => it.next(),
            SegIter::Const { v, left } => {
                if *left == 0 {
                    return None;
                }
                *left -= 1;
                Some(*v)
            }
        }
    }
}

/// Sentinel join key for probe-side string values the build side never
/// interned: joins with nothing, dropped during key extraction.
const NO_KEY: i64 = i64::MIN;

/// A join-key column resolved for one side: integer keys join on their
/// values; string keys join **code-to-code** in the build side's
/// unified code space (its table-global dictionary codes first, then
/// its delta-fresh values shifted past them), translated through
/// one-off dictionary remaps — O(dictionary), never O(rows).
enum KeyCol {
    /// An integer key column.
    Int(usize),
    /// A string key column with its code remaps into the build space.
    Str {
        /// Column index.
        col: usize,
        /// This side's table-global code → join key.
        main_map: Vec<i64>,
        /// This side's delta-local code → join key.
        delta_map: Vec<i64>,
        /// Join key of rows in segments predating the column (`""`).
        sentinel_key: i64,
    },
}

impl KeyCol {
    fn col(&self) -> usize {
        match self {
            KeyCol::Int(c) => *c,
            KeyCol::Str { col, .. } => *col,
        }
    }
}

/// Unit-invariant inputs of one side's key extraction, shared by every
/// execution unit [`Database::unit_join_keys`] streams.
#[derive(Clone, Copy)]
struct KeyScan<'a> {
    /// The side's resolved key column.
    key: &'a KeyCol,
    /// Build-side key range for probe-side zone pruning, if any.
    prune: Option<(i64, i64)>,
    /// Delta-tail chunking granularity (see `delta_unit_rows`).
    unit_rows: usize,
}

/// The build side's string-key space. `""` always resolves to a key —
/// real `""` rows and sentinel rows of segments predating the column
/// must be able to meet across tables.
struct StrKeySpace<'a> {
    global: Option<&'a DictColumn>,
    delta: Option<&'a DictColumn>,
    global_len: i64,
}

impl<'a> StrKeySpace<'a> {
    fn of(t: &'a TableSnapshot, idx: usize) -> Self {
        let global = t.global_dict(idx);
        let delta = t.delta_column(idx).and_then(Column::as_str);
        StrKeySpace { global, delta, global_len: global.map_or(0, DictColumn::dict_size) as i64 }
    }

    /// Key for values the build's global dictionary does not hold:
    /// delta-fresh values shift past the global codes; `""` gets a
    /// reserved key one past everything; anything else cannot join.
    fn fallback_key(&self, s: &str) -> i64 {
        if let Some(c) = self.delta.and_then(|l| l.code_of(s)) {
            return self.global_len + i64::from(c);
        }
        if s.is_empty() {
            return self.global_len + self.delta.map_or(0, DictColumn::dict_size) as i64;
        }
        NO_KEY
    }

    fn key_of(&self, s: &str) -> i64 {
        match self.global.and_then(|g| g.code_of(s)) {
            Some(c) => i64::from(c),
            None => self.fallback_key(s),
        }
    }
}

/// Resolves one side's string key column into `space` (the build
/// side's), counting the dictionary lookups performed so the caller can
/// bill the one-off remap.
fn str_key_col(t: &TableSnapshot, idx: usize, space: &StrKeySpace<'_>, lookups: &mut u64) -> KeyCol {
    let map_dict = |d: &DictColumn, lookups: &mut u64| -> Vec<i64> {
        // The build side's own global dictionary maps into itself: an
        // identity map, no lookups to run (or bill).
        if space.global.is_some_and(|g| std::ptr::eq(g, d)) {
            return (0..d.dict_size() as i64).collect();
        }
        // Bulk first-level remap into the build's global dictionary
        // (the PR 3 machinery generalized across tables), then resolve
        // the misses through its delta-local dictionary.
        let first = match space.global {
            Some(g) => d.codes_in(g),
            None => vec![None; d.dict_size()],
        };
        *lookups += d.dict_size() as u64;
        d.iter_dict()
            .zip(first)
            .map(|(s, hit)| hit.map_or_else(|| space.fallback_key(s), i64::from))
            .collect()
    };
    let main_map = t.global_dict(idx).map_or_else(Vec::new, |d| map_dict(d, lookups));
    let delta_map =
        t.delta_column(idx).and_then(Column::as_str).map_or_else(Vec::new, |d| map_dict(d, lookups));
    KeyCol::Str { col: idx, main_map, delta_map, sentinel_key: space.key_of("") }
}

/// The probe side's pruning range, in its **physical** key domain:
/// build-key min/max for integer keys; for string keys, the span of
/// probe-side global codes whose remapped key `member`s the build side
/// (an inverted range when none does, pruning every probe segment —
/// the delta tail is never pruned). `None` disables pruning.
///
/// Also returns how many `member` lookups ran (one per probe-dictionary
/// entry for string keys, zero for integer keys, whose min/max fold
/// runs over already-billed extracted pairs) so the caller can charge
/// them — the integer fold is register arithmetic, the string case is a
/// real probe of the build structure per distinct value.
fn probe_prune_range(
    bkeys: &[(i64, u32)],
    pkey: &KeyCol,
    member: impl Fn(i64) -> bool,
) -> (Option<(i64, i64)>, u64) {
    match pkey {
        KeyCol::Int(_) => {
            let mut lo = i64::MAX;
            let mut hi = i64::MIN;
            for &(k, _) in bkeys {
                lo = lo.min(k);
                hi = hi.max(k);
            }
            ((lo <= hi).then_some((lo, hi)), 0)
        }
        KeyCol::Str { main_map, .. } => {
            let mut lo = i64::MAX;
            let mut hi = i64::MIN;
            let mut lookups = 0;
            for (code, &k) in main_map.iter().enumerate() {
                if k != NO_KEY {
                    lookups += 1;
                    if member(k) {
                        lo = lo.min(code as i64);
                        hi = hi.max(code as i64);
                    }
                }
            }
            (Some(if lo <= hi { (lo, hi) } else { (1, 0) }), lookups)
        }
    }
}

/// A registered secondary index plus the main epoch it was (re)built
/// at. On tables with a declared sort key a merge *permutes* the merged
/// batch's row ids, so the epoch stamp is what lets the planner tell a
/// still-valid index from one whose row ids predate the latest sorting
/// merge (see [`Database::merge`], which rebuilds and restamps).
#[derive(Debug)]
struct IndexEntry {
    idx: SecondaryIndex,
    built_epoch: u64,
}

/// The in-memory, energy-metered, multi-version database.
///
/// All methods take `&self`: a `Database` can be shared across threads
/// (behind an `Arc`) with readers pinning immutable snapshots while
/// writers insert and merge concurrently. Timestamps come from one
/// shared [`TimestampOracle`]; see [`Database::begin_snapshot`] and
/// [`Database::begin_transaction`] for multi-statement reads.
///
/// ```
/// use haecdb::prelude::*;
///
/// let db = Database::new();
/// db.create_table("t", &[("k", DataType::Int64), ("v", DataType::Int64)])?;
/// db.insert("t", &Record::new().with("k", 1i64).with("v", 10i64))?;
/// db.insert("t", &Record::new().with("k", 2i64).with("v", 20i64))?;
/// let out = db.execute(&Query::scan("t").filter("v", CmpOp::Gt, 15))?;
/// assert_eq!(out.rows.rows(), 1);
/// assert!(out.energy.joules() > 0.0);
/// # Ok::<(), haecdb::error::DbError>(())
/// ```
#[derive(Debug)]
pub struct Database {
    machine: MachineSpec,
    estimator: CostEstimator,
    costs: KernelCosts,
    meter: Mutex<EnergyMeter>,
    tables: RwLock<HashMap<String, Arc<Table>>>,
    indexes: Mutex<HashMap<(String, String), IndexEntry>>,
    goal: Mutex<Goal>,
    /// The shared source of all timestamps: inserts, snapshots and
    /// transactions draw from one total order.
    oracle: Arc<TimestampOracle>,
    /// The persistent worker pool every query executes on — shared
    /// across all queries of this database (and, via
    /// [`WorkerPool::global`], usually across the whole process), so a
    /// query never creates a thread.
    pool: Arc<WorkerPool>,
    /// Parallelism used when a query carries no explicit grant —
    /// resolved **once** at construction from the pool width and the
    /// machine model, never re-queried from the OS per query.
    default_dop: usize,
}

impl Database {
    /// Creates a database on the default 2013 commodity machine model.
    pub fn new() -> Self {
        Database::with_machine(MachineSpec::commodity_2013())
    }

    /// Creates a database over an explicit machine model, executing on
    /// the process-wide [`WorkerPool::global`].
    pub fn with_machine(machine: MachineSpec) -> Self {
        Database::with_machine_and_pool(machine, Arc::clone(WorkerPool::global()))
    }

    /// Creates a database over an explicit machine model **and** worker
    /// pool — a query server supplies its own sized pool; everything
    /// else shares the process-wide one via [`Database::with_machine`].
    pub fn with_machine_and_pool(machine: MachineSpec, pool: Arc<WorkerPool>) -> Self {
        let default_dop = pool.workers().min(machine.cores()).max(1);
        Database {
            estimator: CostEstimator::new(machine.clone()),
            machine,
            costs: KernelCosts::default_2013(),
            meter: Mutex::new(EnergyMeter::new()),
            tables: RwLock::new(HashMap::new()),
            indexes: Mutex::new(HashMap::new()),
            goal: Mutex::new(Goal::MinTime),
            oracle: Arc::new(TimestampOracle::new()),
            pool,
            default_dop,
        }
    }

    /// The worker pool this database's queries execute on.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Sets the session optimization goal (Fig. 2's knob).
    pub fn set_goal(&self, goal: Goal) {
        *self.goal.lock() = goal;
    }

    /// The session goal.
    pub fn goal(&self) -> Goal {
        *self.goal.lock()
    }

    /// The machine model.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// A copy of the cumulative energy meter at this instant.
    pub fn meter(&self) -> EnergyMeter {
        self.meter.lock().clone()
    }

    /// The shared timestamp oracle (inserts, snapshots and transactions
    /// all draw from it).
    pub fn oracle(&self) -> &Arc<TimestampOracle> {
        &self.oracle
    }

    /// Charges a resource profile to the meter and returns its estimate.
    fn charge(&self, profile: &ResourceProfile) -> haec_energy::profile::CostEstimate {
        self.estimator.charge(profile, self.exec_ctx(), &mut self.meter.lock())
    }

    /// Creates a strict-schema table.
    ///
    /// # Errors
    ///
    /// [`DbError::TableExists`] on name collisions.
    pub fn create_table(&self, name: &str, columns: &[(&str, DataType)]) -> DbResult<()> {
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(DbError::TableExists(name.to_string()));
        }
        let schema = TableSchema::strict(columns.iter().map(|(n, t)| (n.to_string(), *t)).collect());
        tables.insert(name.to_string(), Arc::new(Table::new(name, schema)));
        Ok(())
    }

    /// Creates a strict-schema table whose main store keeps `sort_key`
    /// globally sorted across merges. Sorting happens only inside the
    /// lock-free build phase of [`Database::merge`]; readers always see
    /// either the old layout or the new one, never a mixture. String
    /// keys sort by **global dictionary code** (insertion order), not
    /// collation order — see the schema docs for the caveat.
    ///
    /// # Errors
    ///
    /// [`DbError::TableExists`] on name collisions,
    /// [`DbError::NoSuchColumn`] if `sort_key` is not one of `columns`,
    /// and [`DbError::TypeMismatch`] if it is not `Int64` or `Str`.
    pub fn create_table_sorted(
        &self,
        name: &str,
        columns: &[(&str, DataType)],
        sort_key: &str,
    ) -> DbResult<()> {
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(DbError::TableExists(name.to_string()));
        }
        let (_, dtype) = columns
            .iter()
            .find(|(n, _)| *n == sort_key)
            .ok_or_else(|| DbError::NoSuchColumn { table: name.to_string(), column: sort_key.to_string() })?;
        if !matches!(dtype, DataType::Int64 | DataType::Str) {
            return Err(DbError::TypeMismatch { column: sort_key.to_string(), expected: DataType::Int64 });
        }
        let schema = TableSchema::strict(columns.iter().map(|(n, t)| (n.to_string(), *t)).collect())
            .with_sort_key(sort_key);
        tables.insert(name.to_string(), Arc::new(Table::new(name, schema)));
        Ok(())
    }

    /// Creates a flexible-schema ("data first") table.
    ///
    /// # Errors
    ///
    /// [`DbError::TableExists`] on name collisions.
    pub fn create_flexible_table(&self, name: &str) -> DbResult<()> {
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(DbError::TableExists(name.to_string()));
        }
        tables.insert(name.to_string(), Arc::new(Table::new(name, TableSchema::flexible())));
        Ok(())
    }

    /// The shared handle of one table.
    fn handle(&self, name: &str) -> DbResult<Arc<Table>> {
        self.tables.read().get(name).cloned().ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// A latest-state snapshot of one table (`None` if it does not
    /// exist) — the view single-statement reads and diagnostics use.
    pub fn table(&self, name: &str) -> Option<TableSnapshot> {
        self.tables.read().get(name).map(|t| t.read())
    }

    /// Inserts one record into the table's delta tail, stamping it with
    /// the next timestamp from the shared oracle and maintaining indexes
    /// per their discipline. Returns the row's commit timestamp. Once
    /// the delta outgrows the table's merge threshold, a delta→main
    /// merge runs automatically (and its re-encoding cost is charged to
    /// the meter).
    ///
    /// # Errors
    ///
    /// Propagates schema violations; unknown table is
    /// [`DbError::NoSuchTable`].
    pub fn insert(&self, table: &str, record: &Record) -> DbResult<Timestamp> {
        let t = self.handle(table)?;
        // Fires before any state is touched: an injected failure must
        // leave the row unpublished, unindexed, and unbilled.
        fail::fail_point!("db::insert", |msg: Option<String>| Err(DbError::Exec(
            msg.unwrap_or_else(|| "failpoint db::insert".into())
        )));
        // Hold the index guard across the row's publication so a reader
        // whose pin sees the row can never miss its index entry: the
        // index path looks up under this same mutex, and the filter
        // `row < snapshot.rows()` discards entries for rows newer than
        // the pin.
        let mut indexes = self.indexes.lock();
        let (ts, row) = t.insert(record, &self.oracle)?;
        for ((tname, col), entry) in indexes.iter_mut() {
            if tname == table {
                if let Some(Value::Int(key)) = record.get(col) {
                    entry.idx.on_insert(*key, row);
                }
            }
        }
        drop(indexes);
        let needs_merge = t.needs_merge();
        // Charge ingestion: one materialize per field, billing the bytes
        // each field actually writes (a string is its payload plus a
        // 4-byte dictionary code, not an 8-byte cell).
        let payload: u64 = record
            .iter()
            .map(|(_, v)| match v {
                Value::Int(_) | Value::Float(_) => 8,
                Value::Str(s) => 4 + s.len() as u64,
                Value::Null => 1, // validity bit, rounded up
            })
            .sum();
        let profile = ResourceProfile {
            cpu_cycles: self.costs.cycles_for(Kernel::Materialize, record.len() as u64),
            dram_written: ByteCount::new(payload),
            ..ResourceProfile::default()
        };
        self.charge(&profile);
        if needs_merge {
            self.merge(table)?;
        }
        Ok(ts)
    }

    /// Compacts `table`'s delta into compressed main segments, charging
    /// the re-encoding CPU and DRAM traffic to the energy meter. A
    /// no-op (and free) when the delta is empty.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] for unknown tables.
    pub fn merge(&self, table: &str) -> DbResult<MergeStats> {
        let t = self.handle(table)?;
        let stats = t.merge();
        if stats.rows_merged > 0 {
            let values = (stats.raw_bytes / 8) as u64;
            // `EncodedInts::auto` trial-encodes every scheme and keeps
            // the smallest; charge all four attempts, plus reading the
            // flat delta and writing the encoded segments.
            let profile = ResourceProfile {
                cpu_cycles: self.costs.cycles_for(Kernel::CompressEncode, values * 4),
                dram_read: ByteCount::new(stats.raw_bytes as u64),
                dram_written: ByteCount::new(stats.encoded_bytes as u64),
                ..ResourceProfile::default()
            };
            self.charge(&profile);
            if t.schema().sort_key().is_some() {
                self.rebuild_indexes_for(table, &t);
            }
        }
        Ok(stats)
    }

    /// Rebuilds every index registered on `table` from a fresh snapshot
    /// and restamps its epoch. A *sorting* merge permutes the merged
    /// batch's row ids, so indexes built before it silently point at the
    /// wrong rows; until this rebuild runs, the epoch gate in the query
    /// path keeps them out of plans (correct but slower). The rebuild is
    /// billed exactly like the original backfill — it is the same work.
    fn rebuild_indexes_for(&self, table: &str, handle: &Arc<Table>) {
        // A fault here strands indexes at their pre-merge epoch: the
        // epoch gate must keep them out of plans (slower, never wrong).
        fail::fail_point!("index::rebuild");
        let mut indexes = self.indexes.lock();
        let t = handle.read();
        for ((tname, col), entry) in indexes.iter_mut() {
            if tname != table || entry.built_epoch == t.epoch() {
                continue;
            }
            let Some(colv) = t.column(col) else { continue };
            let Some(data) = colv.as_int64() else { continue };
            let mut idx = SecondaryIndex::new(entry.idx.maintenance());
            for (row, &key) in data.iter().enumerate() {
                idx.on_insert(key, row as u32);
            }
            let rows = data.len() as u64;
            let profile = ResourceProfile {
                cpu_cycles: self.costs.cycles_for(Kernel::CompressDecode, t.main_rows() as u64)
                    + self.costs.cycles_for(Kernel::HashBuild, rows),
                dram_read: ByteCount::new(t.column_encoded_bytes(col).unwrap_or(0) as u64),
                dram_written: ByteCount::new(rows * 12),
                ..ResourceProfile::default()
            };
            self.charge(&profile);
            entry.idx = idx;
            entry.built_epoch = t.epoch();
        }
    }

    /// Sets the delta row count that triggers an automatic merge on
    /// `table` (`usize::MAX` disables auto-merging).
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] for unknown tables.
    pub fn set_merge_threshold(&self, table: &str, rows: usize) -> DbResult<()> {
        self.handle(table)?.set_merge_threshold(rows);
        Ok(())
    }

    /// Creates a hash index on an integer column, backfilling existing
    /// rows under the chosen maintenance discipline.
    ///
    /// # Errors
    ///
    /// Unknown table/column errors.
    pub fn create_index(&self, table: &str, column: &str, maintenance: IndexMaintenance) -> DbResult<()> {
        let handle = self.handle(table)?;
        // Hold the index guard across backfill + registration: a
        // concurrent insert either lands before the snapshot below (and
        // is backfilled) or blocks on this mutex until the index is
        // registered (and feeds it through `Database::insert`).
        let mut indexes = self.indexes.lock();
        let t = handle.read();
        let col = t
            .column(column)
            .ok_or_else(|| DbError::NoSuchColumn { table: table.to_string(), column: column.to_string() })?;
        let data = col
            .as_int64()
            .ok_or_else(|| DbError::TypeMismatch { column: column.to_string(), expected: DataType::Int64 })?;
        let mut idx = SecondaryIndex::new(maintenance);
        for (row, &key) in data.iter().enumerate() {
            idx.on_insert(key, row as u32);
        }
        // The backfill is real work: decode the compressed main, read the
        // flat delta, and build the hash table — all billed to the meter.
        let rows = data.len() as u64;
        let profile = ResourceProfile {
            cpu_cycles: self.costs.cycles_for(Kernel::CompressDecode, t.main_rows() as u64)
                + self.costs.cycles_for(Kernel::HashBuild, rows),
            dram_read: ByteCount::new(t.column_encoded_bytes(column).unwrap_or(0) as u64),
            dram_written: ByteCount::new(rows * 12), // key + row id per entry
            ..ResourceProfile::default()
        };
        self.charge(&profile);
        indexes.insert((table.to_string(), column.to_string()), IndexEntry { idx, built_epoch: t.epoch() });
        Ok(())
    }

    /// Work counters of an index.
    pub fn index_stats(&self, table: &str, column: &str) -> Option<IndexStats> {
        self.indexes.lock().get(&(table.to_string(), column.to_string())).map(|e| e.idx.stats())
    }

    fn exec_ctx(&self) -> ExecutionContext {
        ExecutionContext::parallel(self.machine.pstates().fastest(), self.machine.cores())
    }

    /// Executes a query, charging its energy to the meter.
    ///
    /// Main-segment predicates run on compressed data behind zone maps;
    /// the delta tail uses the flat vectorized kernels; large tables scan
    /// segment-parallel.
    ///
    /// # Errors
    ///
    /// Unknown tables/columns, type mismatches, and malformed queries.
    pub fn execute(&self, query: &Query) -> DbResult<QueryResult> {
        self.execute_opts(query, &ExecOpts::default())
    }

    /// Executes a query with explicit [`ExecOpts`] — the surface a
    /// query server's governor grant (parallelism degree, morsel size,
    /// fleet-wide in-flight [`MorselGate`]) travels through to reach
    /// the engine. A nonzero `opts.dop` also opts small tables into
    /// pooled dispatch (the default path only parallelizes above
    /// [`PARALLEL_SCAN_ROWS`]).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Database::execute`].
    pub fn execute_opts(&self, query: &Query, opts: &ExecOpts) -> DbResult<QueryResult> {
        if let Some(jc) = &query.join {
            let lt = self.table(&query.table).ok_or_else(|| DbError::NoSuchTable(query.table.clone()))?;
            let rt = self.table(&jc.table).ok_or_else(|| DbError::NoSuchTable(jc.table.clone()))?;
            return self.execute_join_pinned(&lt, &rt, query, jc, opts);
        }
        let t = self.table(&query.table).ok_or_else(|| DbError::NoSuchTable(query.table.clone()))?;
        self.execute_pinned(&t, query, true, opts)
    }

    /// Executes a single-table query against one pinned
    /// [`TableSnapshot`] — the shared engine behind [`Database::execute`]
    /// (latest-state pin), [`DbSnapshot::execute`] (timestamped pin) and
    /// [`DbTransaction::execute`] (pin + write overlay). Only rows
    /// visible in the snapshot are evaluated; index entries for rows
    /// newer than the pin are filtered out by global row id.
    /// `use_indexes` is off for overlay views, whose pending rows the
    /// live indexes do not cover.
    /// Surfaces a fired cancel token as [`DbError::Cancelled`], billing
    /// `profile` — the work the query did before stopping — to the
    /// meter so partial runs stay energy-honest (the meter only ever
    /// moves forward; a cancelled query just adds less).
    fn check_cancelled(&self, opts: &ExecOpts, profile: &ResourceProfile) -> DbResult<()> {
        if opts.is_cancelled() {
            let est = self.charge(profile);
            return Err(DbError::Cancelled { partial_energy: est.energy });
        }
        Ok(())
    }

    fn execute_pinned(
        &self,
        t: &TableSnapshot,
        query: &Query,
        use_indexes: bool,
        opts: &ExecOpts,
    ) -> DbResult<QueryResult> {
        let started = std::time::Instant::now();
        let mut profile = ResourceProfile::default();
        let mut access_path = None;
        self.check_cancelled(opts, &profile)?;

        // --- resolve + type-check all predicates up front --------------
        let int_preds = resolve_int_preds(t, &query.table, &query.filters)?;
        let str_preds = resolve_str_preds(t, &query.table, &query.str_filters)?;

        // --- access path for the first filter -------------------------
        let mut positions: Option<Vec<u32>> = None;
        let mut remaining: &[IntPred] = &int_preds;
        if let Some(first) = query.filters.first().filter(|_| use_indexes) {
            let key = (query.table.clone(), first.column.clone());
            let mut indexes = self.indexes.lock();
            // A live index is only trusted when row ids still mean what
            // they meant at build time: a *sorting* merge permutes the
            // merged batch, so on sorted tables the entry must have been
            // rebuilt at this snapshot's exact main epoch. Merge-ordered
            // tables never move rows, so any epoch is fine.
            let index_usable = first.op == CmpOp::Eq
                && indexes
                    .get(&key)
                    .is_some_and(|e| t.schema().sort_key().is_none() || e.built_epoch == t.epoch());
            let zones = t.zone_maps(&first.column);
            let layout_sorted = zones.as_deref().is_some_and(sorted_layout);
            if index_usable || layout_sorted {
                // Cost every available path against the *compressed*
                // footprint and zone maps, pick per the session goal.
                let mut meta = t.planner_meta();
                if let Some(c) = meta.columns.iter_mut().find(|c| c.name == first.column) {
                    c.indexed = index_usable;
                }
                let zones = zones.expect("validated int column");
                let encoded = t.column_encoded_bytes(&first.column).expect("column exists") as u64;
                let model = CostModel::new(self.machine.clone()).with_kernel_costs(self.costs.clone());
                let decision = choose_access_segmented(
                    &model,
                    &meta,
                    &first.column,
                    first.op,
                    first.literal,
                    &zones,
                    encoded,
                );
                // Every path delivers the same projection, shipped to
                // the client as codes + a shared dictionary — add its
                // cost ([`CostModel::project_codes`]) to all so the
                // totals the session goal weighs are honest end to end.
                let project = str_projection_cost(&model, t, &meta, query, decision.selectivity);
                let access = [
                    decision.scan_cost,
                    decision.index_cost.unwrap_or(decision.scan_cost),
                    decision.sorted_cost.unwrap_or(decision.scan_cost),
                ];
                let candidates = [access[0] + project, access[1] + project, access[2] + project];
                // If the shared projection term pushes *all* totals past
                // a budget goal, the query still has to run: rank the
                // access work alone, so an index that dominates the scan
                // is never abandoned for being part of an over-budget
                // whole.
                let goal = self.goal();
                let pick = choose(&candidates, goal).or_else(|_| choose(&access, goal)).unwrap_or(0);
                if pick == 1 && decision.index_cost.is_some() {
                    let entry = indexes.get_mut(&key).expect("checked above");
                    let mut rows = entry.idx.lookup(first.literal);
                    // The index is live; the snapshot is not. Entries
                    // for rows committed after the pin (always a suffix
                    // of global row ids) are invisible here.
                    rows.retain(|&r| (r as usize) < t.rows());
                    rows.sort_unstable();
                    profile.cpu_cycles +=
                        self.costs.cycles_for(Kernel::IndexLookup, rows.len().max(1) as u64);
                    profile.dram_read += ByteCount::new(rows.len() as u64 * 128 + 128);
                    positions = Some(rows);
                    access_path = Some(AccessPath::IndexLookup);
                    remaining = &int_preds[1..];
                } else if pick == 2 && decision.sorted_cost.is_some() {
                    // The scan below realizes this plan: `eval_segment`'s
                    // sort-key fast path binary-searches each sorted
                    // segment and emits the surviving row range.
                    access_path = Some(AccessPath::ZoneBinarySearch);
                } else {
                    access_path = Some(AccessPath::FullScan);
                }
            }
        }

        match &mut positions {
            Some(pos) => {
                // --- index path: point re-checks per surviving row -----
                for p in remaining {
                    // Bill the rows *inspected* (pre-retain), not the
                    // rows that survive.
                    let inspected = pos.len() as u64;
                    pos.retain(|&r| {
                        p.op.eval(t.get_int(p.col, r as usize).expect("validated int column"), p.literal)
                    });
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::SelectPredicated, inspected);
                    profile.dram_read += ByteCount::new(inspected * 8);
                }
                for p in &str_preds {
                    let inspected = pos.len() as u64;
                    pos.retain(|&r| {
                        t.str_eq(p.col, r as usize, &p.value).expect("validated str column") != p.negated
                    });
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::SelectPredicated, inspected);
                    profile.dram_read += ByteCount::new(inspected * 4);
                }
            }
            None if !int_preds.is_empty() || !str_preds.is_empty() => {
                // --- segment-granular scan on compressed data ----------
                let (pos, scan_profile) = self.scan_segmented(t, &int_preds, &str_preds, opts);
                profile += scan_profile;
                positions = Some(pos);
            }
            None => {} // no predicates: all rows
        }
        // A cancel that landed mid-scan left `positions` covering only
        // the units evaluated before the signal — never hand a partial
        // survivor set to the aggregation/projection stage.
        self.check_cancelled(opts, &profile)?;

        // --- aggregation / projection ---------------------------------
        let out = match (&query.group_by, &query.agg) {
            (Some(_), None) => return Err(DbError::BadQuery("group_by requires an aggregate".into())),
            (None, None) => {
                // Materialize only the projected columns (all schema
                // columns when no projection is given). Strings flow as
                // codes + one shared output dictionary per column; the
                // stats bill what each store path actually did (stream-
                // decoded encoded bytes, per-cell random access, flat
                // delta reads, one first-touch read per distinct string).
                let names: Vec<String> = match &query.select {
                    Some(cols) => cols.clone(),
                    None => t.schema().columns().iter().map(|(n, _)| n.clone()).collect(),
                };
                let (cols, gstats) = t.materialize_columns(&names, positions.as_deref())?;
                let chunk = Chunk::new(cols).expect("gathered columns are equal length");
                profile.cpu_cycles += self.costs.cycles_for(Kernel::Materialize, chunk.rows() as u64)
                    + self.costs.cycles_for(Kernel::CompressDecode, gstats.decode_items);
                profile.dram_read += ByteCount::new(gstats.bytes_read);
                profile.dram_written += ByteCount::new(gstats.bytes_written);
                chunk
            }
            (group, Some((kind, value_col))) => {
                let vidx = check_int_column(t, &query.table, value_col)?;
                let gcol = match group {
                    Some(name) => Some(resolve_group_col(t, &query.table, name)?),
                    None => None,
                };
                let spec = AggSpec { kind: *kind, vidx, group: gcol.as_ref() };
                let (acc, agg_profile) = self.aggregate_segmented(t, spec, positions.as_deref(), opts);
                profile += agg_profile;
                let agg_name = format!("{kind}({value_col})");
                match (acc, &gcol) {
                    (AggAcc::Global(st), _) => {
                        let result = st.value(*kind).unwrap_or(f64::NAN);
                        Chunk::new(vec![(agg_name, vec![result].into_iter().collect::<Column>())])
                            .expect("one column")
                    }
                    (AggAcc::Grouped(map), Some(GroupCol::Int(_))) => {
                        let mut grouped: Vec<(i64, AggState)> = map.into_iter().collect();
                        grouped.sort_unstable_by_key(|&(k, _)| k);
                        let key_col: Column =
                            grouped.iter().map(|&(k, _)| k).collect::<Vec<i64>>().into_iter().collect();
                        let val_col = agg_value_column(&grouped, *kind);
                        let gname = group.clone().expect("grouped result implies group column");
                        Chunk::new(vec![(gname, key_col), (agg_name, val_col)]).expect("two columns")
                    }
                    (AggAcc::Grouped(map), Some(GroupCol::Str { col, global_len, .. })) => {
                        // Keys are dictionary codes; decode once per
                        // *group* (not per row) and sort by string so the
                        // output order is independent of code assignment.
                        let mut grouped: Vec<(String, AggState)> = map
                            .into_iter()
                            .map(|(k, s)| (decode_group_key(t, *col, *global_len, k), s))
                            .collect();
                        grouped.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                        let mut keys = DictColumn::new();
                        for (k, _) in &grouped {
                            keys.push(k);
                        }
                        let val_col = agg_value_column(&grouped, *kind);
                        let gname = group.clone().expect("grouped result implies group column");
                        Chunk::new(vec![(gname, Column::Str(keys)), (agg_name, val_col)])
                            .expect("two columns")
                    }
                    (AggAcc::Grouped(_), None) => unreachable!("grouped result without group column"),
                }
            }
        };

        // A cancel during aggregation or materialization folded only
        // the units that ran; discard the partial chunk, bill the work.
        self.check_cancelled(opts, &profile)?;

        // --- metering ---------------------------------------------------
        // The query's own cost estimate *is* its energy (identical to
        // the meter delta when single-threaded, and — unlike a meter
        // delta — not polluted by concurrent queries charging the same
        // shared meter).
        let est = self.charge(&profile);
        Ok(QueryResult {
            rows: out,
            energy: est.energy,
            modeled_time: est.time,
            wall_time: started.elapsed(),
            access_path,
            profile,
        })
    }

    /// Executes an equi-join query end to end **on compressed
    /// segments**: per-side filters run through the segmented scan,
    /// join keys stream out of the encoded main columns
    /// ([`haec_columnar::encoding::EncodedInts::iter`] — integer keys as
    /// values, string keys code-to-code through a one-off dictionary
    /// remap), the build side feeds the hash table per segment over the
    /// same morsel units as scans, probe segments are pre-pruned
    /// against the build side's key range (the join-specific zone
    /// intersection of [`haec_planner::access::join_zone_overlap`]),
    /// and payload columns are gathered late — only for surviving
    /// `(build_row, probe_row)` pairs — via [`TableSnapshot::gather_rows`].
    ///
    /// A main column is **never** materialized for its join keys; the
    /// meter is billed the encoded bytes streamed, the hash build/probe
    /// (or sort) cycles including bucket traffic, and the gather.
    fn execute_join_pinned(
        &self,
        lt: &TableSnapshot,
        rt: &TableSnapshot,
        query: &Query,
        jc: &JoinClause,
        opts: &ExecOpts,
    ) -> DbResult<QueryResult> {
        let started = std::time::Instant::now();
        if query.group_by.is_some() || query.agg.is_some() {
            return Err(DbError::BadQuery("aggregates over joins are not supported yet".into()));
        }
        let mut profile = ResourceProfile::default();

        // --- key columns: both int, or both string --------------------
        let lkey_idx = lt.schema().position(&jc.left_col).ok_or_else(|| DbError::NoSuchColumn {
            table: query.table.clone(),
            column: jc.left_col.clone(),
        })?;
        let rkey_idx = rt
            .schema()
            .position(&jc.right_col)
            .ok_or_else(|| DbError::NoSuchColumn { table: jc.table.clone(), column: jc.right_col.clone() })?;
        let ltype = lt.schema().columns()[lkey_idx].1;
        let rtype = rt.schema().columns()[rkey_idx].1;
        if ltype == DataType::Float64 {
            return Err(DbError::TypeMismatch { column: jc.left_col.clone(), expected: DataType::Int64 });
        }
        if rtype != ltype {
            return Err(DbError::TypeMismatch { column: jc.right_col.clone(), expected: ltype });
        }

        // --- per-side filters, on each side's own compressed store ----
        let l_int = resolve_int_preds(lt, &query.table, &query.filters)?;
        let l_str = resolve_str_preds(lt, &query.table, &query.str_filters)?;
        let r_int = resolve_int_preds(rt, &jc.table, &jc.filters)?;
        let r_str = resolve_str_preds(rt, &jc.table, &jc.str_filters)?;
        let lpos = if l_int.is_empty() && l_str.is_empty() {
            None
        } else {
            let (p, pr) = self.scan_segmented(lt, &l_int, &l_str, opts);
            profile += pr;
            Some(p)
        };
        let rpos = if r_int.is_empty() && r_str.is_empty() {
            None
        } else {
            let (p, pr) = self.scan_segmented(rt, &r_int, &r_str, opts);
            profile += pr;
            Some(p)
        };
        // Cancelled mid-filter: the survivor lists cover only part of
        // either side — stop before they feed the join plan.
        self.check_cancelled(opts, &profile)?;

        // --- plan: build side + algorithm, on compressed footprints ---
        let l_rows = lpos.as_ref().map_or(lt.rows(), Vec::len) as u64;
        let r_rows = rpos.as_ref().map_or(rt.rows(), Vec::len) as u64;
        let (l_frac, r_frac) = if ltype == DataType::Int64 {
            // Estimated survival of each side's segments against the
            // other side's key extrema (the executor prunes for real
            // below, with the same intersection test).
            let lz = lt.zone_maps(&jc.left_col).expect("validated int column");
            let rz = rt.zone_maps(&jc.right_col).expect("validated int column");
            let span = |zs: &[ZoneMapMeta]| {
                zs.iter().fold((i64::MAX, i64::MIN), |(lo, hi), z| (lo.min(z.min), hi.max(z.max)))
            };
            let (rlo, rhi) = span(&rz);
            let (llo, lhi) = span(&lz);
            (join_zone_overlap(&lz, rlo, rhi), join_zone_overlap(&rz, llo, lhi))
        } else {
            (1.0, 1.0)
        };
        // A side is "sorted" for the merge join when its main layout is
        // globally sorted on the join key (disjoint ascending zones) and
        // there is no unsorted delta tail: key extraction walks rows in
        // ascending id order, so the extracted key stream is already in
        // key order and the merge join's sort passes are free for it.
        let (l_sorted, r_sorted) = if ltype == DataType::Int64 {
            (
                lt.delta_rows() == 0 && lt.zone_maps(&jc.left_col).as_deref().is_some_and(sorted_layout),
                rt.delta_rows() == 0 && rt.zone_maps(&jc.right_col).as_deref().is_some_and(sorted_layout),
            )
        } else {
            (false, false)
        };
        let lcost = JoinSideCost {
            rows: l_rows,
            encoded_key_bytes: lt.column_encoded_bytes(&jc.left_col).unwrap_or(0) as u64,
            live_frac: l_frac,
            sorted: l_sorted,
        };
        let rcost = JoinSideCost {
            rows: r_rows,
            encoded_key_bytes: rt.column_encoded_bytes(&jc.right_col).unwrap_or(0) as u64,
            live_frac: r_frac,
            sorted: r_sorted,
        };
        let model = CostModel::new(self.machine.clone()).with_kernel_costs(self.costs.clone());
        let decision = model.join_compressed(&lcost, &rcost, l_rows.max(r_rows));
        // Respect the session goal when the algorithms trade time for
        // energy (same knob as scan-vs-index).
        let algo = match choose(&[decision.hash_cost, decision.merge_cost], self.goal()) {
            Ok(1) => JoinAlgo::SortMerge,
            _ => JoinAlgo::Hash,
        };
        let build_left = decision.build_left;
        let (bt, pt) = if build_left { (lt, rt) } else { (rt, lt) };
        let (bpos, ppos) = if build_left { (&lpos, &rpos) } else { (&rpos, &lpos) };
        let (bkey_idx, pkey_idx) = if build_left { (lkey_idx, rkey_idx) } else { (rkey_idx, lkey_idx) };

        // --- key spaces ----------------------------------------------
        let (bkey, pkey) = match ltype {
            DataType::Int64 => (KeyCol::Int(bkey_idx), KeyCol::Int(pkey_idx)),
            DataType::Str => {
                let space = StrKeySpace::of(bt, bkey_idx);
                let mut lookups = 0u64;
                let bk = str_key_col(bt, bkey_idx, &space, &mut lookups);
                let pk = str_key_col(pt, pkey_idx, &space, &mut lookups);
                // The one-off remap is O(dictionary) hash lookups, never
                // O(rows) — billed as such.
                profile.cpu_cycles += self.costs.cycles_for(Kernel::HashProbe, lookups);
                profile.dram_read += ByteCount::new(lookups * HASH_BUCKET_BYTES);
                (bk, pk)
            }
            DataType::Float64 => unreachable!("rejected above"),
        };

        // --- build, then probe (both streaming on encoded data) -------
        let (bkeys, bprof) = self.extract_join_keys(bt, &bkey, bpos.as_deref(), None, opts);
        profile += bprof;
        let pairs: Vec<(u32, u32)> = if bkeys.is_empty() {
            Vec::new()
        } else {
            match algo {
                JoinAlgo::Hash => {
                    let join = HashJoin::from_pairs(&bkeys);
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::HashBuild, bkeys.len() as u64);
                    profile.dram_written += ByteCount::new(bkeys.len() as u64 * 16);
                    let (prune, lookups) = probe_prune_range(&bkeys, &pkey, |k| join.matches(k).is_some());
                    // The range refinement probes the hash table once per
                    // distinct probe value — O(dictionary), billed as such.
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::HashProbe, lookups);
                    profile.dram_read += ByteCount::new(lookups * HASH_BUCKET_BYTES);
                    let (pairs, pprof) = self.probe_hash_join(pt, &pkey, ppos.as_deref(), prune, &join, opts);
                    profile += pprof;
                    pairs
                }
                JoinAlgo::SortMerge => {
                    let (bmin, bmax) =
                        bkeys.iter().fold((i64::MAX, i64::MIN), |(lo, hi), &(k, _)| (lo.min(k), hi.max(k)));
                    let (prune, lookups) = probe_prune_range(&bkeys, &pkey, |k| k >= bmin && k <= bmax);
                    // Range membership here is a comparison per distinct
                    // probe value, not a hash probe.
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::SelectBitwise, lookups);
                    let (mut pkeys, pprof) = self.extract_join_keys(pt, &pkey, ppos.as_deref(), prune, opts);
                    profile += pprof;
                    let mut bkeys = bkeys;
                    let (b_sorted, p_sorted) =
                        if build_left { (l_sorted, r_sorted) } else { (r_sorted, l_sorted) };
                    let out = sort_merge_join_pairs_presorted(&mut bkeys, &mut pkeys, b_sorted, p_sorted);
                    // Sort passes are only real work for unsorted sides;
                    // a declared-sort-key side streams straight into the
                    // merge (the planner's `join_compressed` prices it
                    // the same way).
                    let n = (bkeys.len() + pkeys.len()) as u64;
                    let levels_of = |rows: u64| (rows.max(2) as f64).log2().ceil() as u64;
                    let sort_items = (if b_sorted { 0 } else { bkeys.len() as u64 })
                        * levels_of(bkeys.len() as u64)
                        + (if p_sorted { 0 } else { pkeys.len() as u64 }) * levels_of(pkeys.len() as u64);
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::SortPerLevel, sort_items);
                    profile.dram_read += ByteCount::new(sort_items * 12 + n * 12);
                    profile.dram_written += ByteCount::new(n * 12 + out.len() as u64 * 8);
                    out
                }
            }
        };
        // Build/probe stream over the same cancellable morsel units as
        // scans; a partial pair list must never reach the gather.
        self.check_cancelled(opts, &profile)?;

        // --- late gather: only surviving pairs touch payloads ---------
        let (lrows, rrows): (Vec<u32>, Vec<u32>) =
            pairs.iter().map(|&(b, p)| if build_left { (b, p) } else { (p, b) }).unzip();
        let spec = resolve_join_outputs(query, jc, lt, rt)?;
        let side_names = |left: bool| -> Vec<String> {
            spec.iter().filter(|(l, ..)| *l == left).map(|(_, _, col)| col.clone()).collect()
        };
        let (lcols, lprof) = self.gather_join_side(lt, &side_names(true), &lrows)?;
        let (rcols, rprof) = self.gather_join_side(rt, &side_names(false), &rrows)?;
        profile += lprof;
        profile += rprof;
        let mut li = lcols.into_iter();
        let mut ri = rcols.into_iter();
        let cols: Vec<(String, Column)> = spec
            .into_iter()
            .map(|(left, out_name, _)| {
                let (_, col) =
                    if left { li.next() } else { ri.next() }.expect("one gathered column per spec entry");
                (out_name, col)
            })
            .collect();
        let out = Chunk::new(cols).map_err(|e| DbError::BadQuery(format!("join output: {e}")))?;

        // --- metering -------------------------------------------------
        // Like `execute_pinned`: the estimate is the query's energy,
        // race-free under concurrent charging.
        self.check_cancelled(opts, &profile)?;
        let est = self.charge(&profile);
        Ok(QueryResult {
            rows: out,
            energy: est.energy,
            modeled_time: est.time,
            wall_time: started.elapsed(),
            access_path: None,
            profile,
        })
    }

    /// Gathers one side's payload columns for its surviving join rows,
    /// billing the work. Strictly ascending row lists — the unique-key
    /// (FK) probe side, where pairs come back in probe-row order — take
    /// the dense ordered path of [`TableSnapshot::materialize_columns`];
    /// everything else (scattered build rows, duplicate keys) goes
    /// through the positional [`TableSnapshot::gather_rows`]. Both report the
    /// work they actually did (whole-segment stream-decodes when hits
    /// pass the density crossover, compressed random access when
    /// sparse, code-to-code string gathers) as
    /// [`crate::table::GatherStats`], billed here.
    fn gather_join_side(
        &self,
        t: &TableSnapshot,
        names: &[String],
        rows: &[u32],
    ) -> DbResult<(Vec<(String, Column)>, ResourceProfile)> {
        let mut profile = ResourceProfile::default();
        let cells = (rows.len() * names.len()) as u64;
        profile.cpu_cycles += self.costs.cycles_for(Kernel::Materialize, cells);
        let (cols, stats) = if rows.windows(2).all(|w| w[0] < w[1]) {
            t.materialize_columns(names, Some(rows))?
        } else {
            t.gather_rows(names, rows)?
        };
        profile.cpu_cycles += self.costs.cycles_for(Kernel::CompressDecode, stats.decode_items);
        profile.dram_read += ByteCount::new(stats.bytes_read);
        profile.dram_written += ByteCount::new(stats.bytes_written);
        Ok((cols, profile))
    }

    /// Streams one side's surviving `(join key, global row)` pairs, unit
    /// by unit over the same morsel dispatch as scans. Main segments
    /// stream their **encoded** key column; string keys map code-to-code
    /// through the side's [`KeyCol`] remaps; segments whose key zone
    /// misses `prune` are skipped without touching a byte.
    fn extract_join_keys(
        &self,
        t: &TableSnapshot,
        key: &KeyCol,
        positions: Option<&[u32]>,
        prune: Option<(i64, i64)>,
        opts: &ExecOpts,
    ) -> (Vec<(i64, u32)>, ResourceProfile) {
        let unit_rows = delta_unit_rows(opts);
        let unit_hits = split_unit_hits(t, positions, unit_rows);
        let scan = KeyScan { key, prune, unit_rows };
        let parts = self.eval_units(t, opts, |u| {
            let hits = unit_hits.as_ref().map(|v| v[u]);
            if hits.is_some_and(<[u32]>::is_empty) {
                return (Vec::new(), ResourceProfile::default());
            }
            let mut kv = Vec::new();
            let mut profile = self.unit_join_keys(t, u, hits, &scan, |k, row| kv.push((k, row)));
            // The extracted pair vector is real intermediate traffic.
            profile.dram_written += ByteCount::new(kv.len() as u64 * 12);
            (kv, profile)
        });
        let mut out = Vec::new();
        let mut profile = ResourceProfile::default();
        for (kv, pr) in parts {
            out.extend(kv);
            profile += pr;
        }
        (out, profile)
    }

    /// Probes `join` with one side's surviving rows — key streaming and
    /// hash probing fused per unit, so large probes parallelize over
    /// morsels. Returns `(build_row, probe_row)` pairs in probe-row
    /// order, billing bucket headers per probe, row-id list entries per
    /// hit, and the output pairs vector.
    fn probe_hash_join(
        &self,
        t: &TableSnapshot,
        key: &KeyCol,
        positions: Option<&[u32]>,
        prune: Option<(i64, i64)>,
        join: &HashJoin,
        opts: &ExecOpts,
    ) -> (Vec<(u32, u32)>, ResourceProfile) {
        let unit_rows = delta_unit_rows(opts);
        let unit_hits = split_unit_hits(t, positions, unit_rows);
        let scan = KeyScan { key, prune, unit_rows };
        let parts = self.eval_units(t, opts, |u| {
            let hits = unit_hits.as_ref().map(|v| v[u]);
            if hits.is_some_and(<[u32]>::is_empty) {
                return (Vec::new(), ResourceProfile::default());
            }
            // Keys stream straight into the probe — no intermediate
            // (key, row) vector is ever materialized (or billed).
            let mut pairs = Vec::new();
            let mut probed = 0u64;
            let mut profile = self.unit_join_keys(t, u, hits, &scan, |k, row| {
                probed += 1;
                if let Some(ms) = join.matches(k) {
                    for &b in ms {
                        pairs.push((b, row));
                    }
                }
            });
            profile.cpu_cycles += self.costs.cycles_for(Kernel::HashProbe, probed);
            profile.dram_read += ByteCount::new(probed * HASH_BUCKET_BYTES + pairs.len() as u64 * 4);
            profile.dram_written += ByteCount::new(pairs.len() as u64 * 8);
            (pairs, profile)
        });
        let mut out = Vec::new();
        let mut profile = ResourceProfile::default();
        for (p, pr) in parts {
            out.extend(p);
            profile += pr;
        }
        (out, profile)
    }

    /// Streams one execution unit's `(join key, global row)` pairs into
    /// `sink`: a main segment streams (or random-accesses, for sparse
    /// hits) its encoded key column after the zone check against
    /// `scan.prune`; a delta chunk reads its flat tail. Probe-side
    /// `NO_KEY` rows (string values the build side never interned) are
    /// dropped here. Returns the work billed — the sink's own storage
    /// (if any) is the caller's to bill.
    fn unit_join_keys(
        &self,
        t: &TableSnapshot,
        u: usize,
        hits: Option<&[u32]>,
        scan: &KeyScan<'_>,
        mut sink: impl FnMut(i64, u32),
    ) -> ResourceProfile {
        let KeyScan { key, prune, unit_rows } = *scan;
        let nsegs = t.segments().len();
        let mut profile = ResourceProfile::default();
        // `NO_KEY` is a *string-key* sentinel (a value the build side
        // never interned); integer keys pass through untouched —
        // `i64::MIN` is a perfectly good join key there.
        let drop_sentinels = matches!(key, KeyCol::Str { .. });
        let mut out = |k: i64, row: u32| {
            if !(drop_sentinels && k == NO_KEY) {
                sink(k, row);
            }
        };
        if u < nsegs {
            let seg = &t.segments()[u];
            let base = t.segment_base(u);
            let rows = seg.rows();
            let (src, map): (SegSource<'_>, Option<&[i64]>) = match key {
                KeyCol::Int(idx) => match seg.column(*idx) {
                    Some(SegColumn::Int { data, .. }) => (SegSource::Enc(data), None),
                    None => (SegSource::Const(0), None),
                    Some(_) => unreachable!("join key validated as integer column"),
                },
                KeyCol::Str { col, main_map, sentinel_key, .. } => match seg.column(*col) {
                    Some(SegColumn::Str { codes, .. }) => (SegSource::Enc(codes), Some(main_map)),
                    None => (SegSource::Const(*sentinel_key), None),
                    Some(_) => unreachable!("join key validated as string column"),
                },
            };
            // Join-specific zone pruning: the segment's key zone against
            // the build side's range (same intersection test the planner
            // estimates with).
            if let (Some((lo, hi)), SegSource::Enc(_)) = (prune, src) {
                let (zlo, zhi) = seg.zone(key.col()).expect("non-empty segment has a zone");
                if !(ZoneMapMeta { rows: 0, min: zlo, max: zhi, sorted: false }.overlaps(lo, hi)) {
                    return profile; // pruned: no data touched
                }
            }
            let keyify = |raw: i64| -> i64 {
                match map {
                    Some(m) => m[raw as usize],
                    None => raw,
                }
            };
            let full = hits.is_none_or(|h| h.len() == rows);
            if full {
                for (local, raw) in src.iter(rows).enumerate() {
                    out(keyify(raw), (base + local) as u32);
                }
                profile.cpu_cycles += self.costs.cycles_for(Kernel::CompressDecode, src.decode_items(rows));
                profile.dram_read += ByteCount::new(src.stream_bytes(rows, rows));
            } else {
                let hits = hits.expect("not full implies a hit list");
                let n = hits.len();
                if sparse_hits(n, rows) {
                    // Sparse survivors: compressed random access.
                    for &p in hits {
                        out(keyify(src.get(p as usize - base)), p);
                    }
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::CompressDecode, src.decode_items(n));
                    profile.dram_read += ByteCount::new(src.decode_items(n) * 8);
                } else {
                    // Dense survivors: stream-decode up to the last hit.
                    let mut hi = 0;
                    for (local, raw) in src.iter(rows).enumerate() {
                        if hi == n {
                            break;
                        }
                        if hits[hi] as usize - base == local {
                            out(keyify(raw), hits[hi]);
                            hi += 1;
                        }
                    }
                    let streamed = hits.last().map_or(0, |&p| p as usize - base + 1);
                    profile.cpu_cycles +=
                        self.costs.cycles_for(Kernel::CompressDecode, src.decode_items(streamed));
                    profile.dram_read += ByteCount::new(src.stream_bytes(streamed, rows));
                }
            }
        } else {
            let (start, end) = delta_chunk(t, u - nsegs, unit_rows);
            let base = t.main_rows();
            let (key_at, width): (Box<dyn Fn(usize) -> i64 + '_>, u64) = match key {
                KeyCol::Int(idx) => {
                    let vals = t
                        .delta_column(*idx)
                        .and_then(Column::as_int64)
                        .expect("join key validated as integer column");
                    (Box::new(move |local| vals[local]), 8)
                }
                KeyCol::Str { col, delta_map, .. } => {
                    let codes = t
                        .delta_column(*col)
                        .and_then(Column::as_str)
                        .expect("join key validated as string column")
                        .codes();
                    (Box::new(move |local| delta_map[codes[local] as usize]), 4)
                }
            };
            let mut push = |local: usize| out(key_at(local), (base + local) as u32);
            let inspected = match hits {
                None => {
                    (start..end).for_each(&mut push);
                    (end - start) as u64
                }
                Some(h) => {
                    h.iter().for_each(|&p| push(p as usize - base));
                    h.len() as u64
                }
            };
            profile.dram_read += ByteCount::new(inspected * width);
        }
        profile
    }

    /// Evaluates all predicates over every segment plus the delta tail,
    /// returning matching global row ids (ascending) and the work done.
    ///
    /// Per segment: zone maps first (prune whole segments, or skip
    /// tautological predicates), then
    /// [`haec_columnar::encoding::EncodedInts::scan`] directly on the
    /// compressed column — main-segment data is **never decoded** for
    /// predicate evaluation. The delta runs the flat bitwise kernel,
    /// chunked into morsel-sized units (see [`delta_unit_rows`]) so an
    /// oversized (merge-disabled) delta still parallelizes. Above
    /// [`PARALLEL_SCAN_ROWS`] total rows — or whenever the query
    /// carries an explicit parallelism grant — units are dispatched as
    /// morsels over the shared worker pool.
    fn scan_segmented(
        &self,
        t: &TableSnapshot,
        int_preds: &[IntPred],
        str_preds: &[StrPred],
        opts: &ExecOpts,
    ) -> (Vec<u32>, ResourceProfile) {
        let nsegs = t.segments().len();
        let unit_rows = delta_unit_rows(opts);
        let parts = self.eval_units(t, opts, |u| {
            if u < nsegs {
                self.eval_segment(t, u, int_preds, str_preds)
            } else {
                let (start, end) = delta_chunk(t, u - nsegs, unit_rows);
                self.eval_delta(t, start, end, int_preds, str_preds)
            }
        });
        let mut pos = Vec::new();
        let mut profile = ResourceProfile::default();
        for (p, pr) in parts {
            pos.extend(p);
            profile += pr;
        }
        (pos, profile)
    }

    /// Runs `eval` over every execution unit of `t` — one per main
    /// segment plus one per [`delta_unit_rows`]-sized delta chunk (see
    /// [`delta_chunk`]) — and returns the per-unit results in unit
    /// order. Units are dispatched as morsels over the shared
    /// [`WorkerPool`] when the query carries an explicit parallelism
    /// grant (`opts.dop > 0`), or above [`PARALLEL_SCAN_ROWS`] total
    /// rows on the default path; the degree of parallelism comes from
    /// the grant (or the cached construction-time default — never a
    /// per-query OS call). Scans, aggregation pushdown and join-key
    /// streaming all go through here, so they can never disagree on
    /// parallel granularity.
    fn eval_units<R>(&self, t: &TableSnapshot, opts: &ExecOpts, eval: impl Fn(usize) -> R + Sync) -> Vec<R>
    where
        R: Send,
    {
        let unit_rows = delta_unit_rows(opts);
        let units = t.segments().len() + t.delta_rows().div_ceil(unit_rows);
        let dop = if opts.dop > 0 { opts.dop } else { self.default_dop };
        let pooled = units > 1 && dop > 1 && (opts.dop > 0 || t.rows() >= PARALLEL_SCAN_ROWS);
        if pooled {
            // Above one segment's worth of rows per morsel, batch whole
            // units per dispenser grab; below, one morsel = one unit
            // (a main segment is the finest unit storage defines).
            let units_per_grab = (opts.morsel_rows.max(1) / crate::segment::SEGMENT_ROWS).max(1);
            let spec = RunSpec {
                dop: dop.min(units),
                morsel_rows: units_per_grab,
                gate: opts.gate.as_deref(),
                cancel: opts.cancel.as_ref(),
            };
            let mut parts = self.pool.run(
                units,
                spec,
                |m| (m.start..m.end).map(|u| (u, eval(u))).collect::<Vec<_>>(),
                |mut a: Vec<(usize, R)>, b| {
                    a.extend(b);
                    a
                },
                Vec::new(),
            );
            parts.sort_unstable_by_key(|&(u, _)| u);
            parts.into_iter().map(|(_, r)| r).collect()
        } else {
            // Serial path: still hold one gate permit per unit, so the
            // fleet-wide in-flight accounting a server's energy cap
            // relies on stays exact for *every* admitted query — and
            // poll the cancel token per unit, matching the pooled
            // path's one-morsel cancellation latency.
            let mut out = Vec::with_capacity(units);
            for u in 0..units {
                if opts.is_cancelled() {
                    break;
                }
                let _permit = opts.gate.as_deref().map(MorselGate::acquire);
                out.push(eval(u));
            }
            out
        }
    }

    /// One segment's worth of predicate evaluation, on compressed data.
    fn eval_segment(
        &self,
        t: &TableSnapshot,
        si: usize,
        int_preds: &[IntPred],
        str_preds: &[StrPred],
    ) -> (Vec<u32>, ResourceProfile) {
        let seg = &t.segments()[si];
        let base = t.segment_base(si);
        let rows = seg.rows();
        let mut profile = ResourceProfile::default();
        let mut bm: Option<Bitmap> = None;
        // Run-aware fast path: predicates on the segment's sort key
        // resolve to a contiguous row sub-range by binary search over
        // the encoding's run boundaries — O(log) probe bytes instead of
        // a full-column scan, and the survivors come out as a range, not
        // a per-row hit vector. Every other predicate intersects with
        // this range at assembly time.
        let mut range = (0usize, rows);
        let sorted_probe = |data: &EncodedInts,
                            op: CmpOp,
                            lit: i64,
                            range: &mut (usize, usize),
                            profile: &mut ResourceProfile| {
            let mut probes = 0u64;
            let Some((s, e)) = data.sorted_range(op, lit, &mut probes) else {
                return false; // Ne: not contiguous, scan instead
            };
            range.0 = range.0.max(s);
            range.1 = range.1.min(e);
            // Each probe touches ~one cache line of the encoded column.
            profile.cpu_cycles += self.costs.cycles_for(Kernel::IndexLookup, probes);
            profile.dram_read += ByteCount::new(probes * 64);
            true
        };
        for p in int_preds {
            match seg.column(p.col) {
                None => {
                    // Segment predates the column: every row holds the
                    // null sentinel 0.
                    if !p.op.eval(0, p.literal) {
                        return (Vec::new(), profile);
                    }
                }
                Some(SegColumn::Int { data, zone, .. }) => {
                    let (lo, hi) = zone.expect("non-empty segment has a zone");
                    if !zone_may_match(p.op, p.literal, lo, hi) {
                        return (Vec::new(), profile); // pruned: no data touched
                    }
                    if zone_all_match(p.op, p.literal, lo, hi) {
                        continue; // tautology on this segment: no scan needed
                    }
                    if seg.sorted_by() == Some(p.col)
                        && sorted_probe(data, p.op, p.literal, &mut range, &mut profile)
                    {
                        if range.0 >= range.1 {
                            return (Vec::new(), profile);
                        }
                        continue;
                    }
                    let mut m = Bitmap::zeros(rows);
                    data.scan(p.op, p.literal, &mut m);
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::SelectBitwise, rows as u64);
                    profile.dram_read += ByteCount::new(data.size_bytes() as u64);
                    and_into(&mut bm, m);
                }
                Some(_) => unreachable!("predicate validated as integer column"),
            }
        }
        for p in str_preds {
            match seg.column(p.col) {
                None => {
                    // Sentinel "" everywhere.
                    if (p.value.is_empty()) == p.negated {
                        return (Vec::new(), profile);
                    }
                }
                Some(SegColumn::Str { codes, zone }) => {
                    let Some(code) = p.global_code else {
                        // Value never interned: `=` matches nothing,
                        // `<>` everything.
                        if p.negated {
                            continue;
                        }
                        return (Vec::new(), profile);
                    };
                    let op = if p.negated { CmpOp::Ne } else { CmpOp::Eq };
                    let (lo, hi) = zone.expect("non-empty segment has a zone");
                    if !zone_may_match(op, code, lo, hi) {
                        return (Vec::new(), profile);
                    }
                    if zone_all_match(op, code, lo, hi) {
                        continue;
                    }
                    if seg.sorted_by() == Some(p.col)
                        && sorted_probe(codes, op, code, &mut range, &mut profile)
                    {
                        if range.0 >= range.1 {
                            return (Vec::new(), profile);
                        }
                        continue;
                    }
                    let mut m = Bitmap::zeros(rows);
                    codes.scan(op, code, &mut m);
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::SelectBitwise, rows as u64);
                    profile.dram_read += ByteCount::new(codes.size_bytes() as u64);
                    and_into(&mut bm, m);
                }
                Some(_) => unreachable!("predicate validated as string column"),
            }
        }
        let (rs, re) = range;
        let pos = match bm {
            Some(b) => b.iter_ones().filter(|&i| rs <= i && i < re).map(|i| (base + i) as u32).collect(),
            // Every predicate was a tautology or resolved to the range:
            // emit the surviving row range directly, no hit vector built.
            None => (base + rs..base + re).map(|i| i as u32).collect(),
        };
        (pos, profile)
    }

    /// Predicate evaluation over delta rows `[start, end)`: flat
    /// vectorized kernels over the dense columns, exactly the
    /// pre-segmentation scan path (one chunk = one parallel unit).
    fn eval_delta(
        &self,
        t: &TableSnapshot,
        start: usize,
        end: usize,
        int_preds: &[IntPred],
        str_preds: &[StrPred],
    ) -> (Vec<u32>, ResourceProfile) {
        let base = t.main_rows() + start;
        let rows = end - start;
        let mut profile = ResourceProfile::default();
        let mut positions: Option<Vec<u32>> = None;
        for p in int_preds {
            let data = &t
                .delta_column(p.col)
                .and_then(Column::as_int64)
                .expect("predicate validated as integer column")[start..end];
            let (hits, stats) = select_metered(data, p.op, p.literal, SelectKernel::Bitwise, &self.costs);
            profile += stats.profile;
            positions = Some(match positions.take() {
                None => hits,
                Some(prev) => haec_exec::select::intersect_positions(&prev, &hits),
            });
        }
        for p in str_preds {
            let codes = &t
                .delta_column(p.col)
                .and_then(Column::as_str)
                .expect("predicate validated as string column")
                .codes()[start..end];
            // Bill the rows actually *inspected*: the full chunk only for
            // the first predicate; afterwards just the surviving
            // positions that are re-checked.
            let inspected = positions.as_ref().map_or(codes.len(), Vec::len) as u64;
            profile.cpu_cycles += self.costs.cycles_for(Kernel::SelectBitwise, inspected);
            profile.dram_read += ByteCount::new(inspected * 4);
            let keep = |row: usize| -> bool {
                match p.delta_code {
                    Some(c) => (codes[row] == c) != p.negated,
                    None => p.negated,
                }
            };
            positions = Some(match positions.take() {
                Some(mut pos) => {
                    pos.retain(|&r| keep(r as usize));
                    pos
                }
                None => (0..codes.len()).filter(|&i| keep(i)).map(|i| i as u32).collect(),
            });
        }
        let pos = positions.unwrap_or_else(|| (0..rows as u32).collect());
        (pos.into_iter().map(|p| p + base as u32).collect(), profile)
    }

    /// Segment-wise aggregation pushdown: every main segment folds a
    /// partial [`AggState`] (or per-group hash of states) directly from
    /// its encoded columns via streaming decode — no full-column
    /// materialization — the delta tail folds flat, and partials merge
    /// with [`AggState::merge`]. Units dispatch over the same morsel
    /// machinery as [`Database::scan_segmented`], so large aggregates
    /// parallelize.
    ///
    /// Fast paths answer whole segments from metadata when every row of
    /// the segment survives the filters: COUNT from the row count,
    /// MIN/MAX from the zone map — zero column bytes touched. All other
    /// paths bill decode cycles plus the encoded bytes actually read.
    fn aggregate_segmented(
        &self,
        t: &TableSnapshot,
        spec: AggSpec<'_>,
        positions: Option<&[u32]>,
        opts: &ExecOpts,
    ) -> (AggAcc, ResourceProfile) {
        let nsegs = t.segments().len();
        let unit_rows = delta_unit_rows(opts);
        let unit_hits = split_unit_hits(t, positions, unit_rows);
        let parts = self.eval_units(t, opts, |u| {
            let hits = unit_hits.as_ref().map(|v| v[u]);
            if hits.is_some_and(<[u32]>::is_empty) {
                return (AggAcc::identity(spec.group.is_some()), ResourceProfile::default());
            }
            if u < nsegs {
                self.agg_segment(t, u, spec, hits)
            } else {
                let (start, end) = delta_chunk(t, u - nsegs, unit_rows);
                self.agg_delta(t, start, end, spec, hits)
            }
        });
        let mut acc = AggAcc::identity(spec.group.is_some());
        let mut profile = ResourceProfile::default();
        for (a, p) in parts {
            acc.merge(a);
            profile += p;
        }
        (acc, profile)
    }

    /// One main segment's partial aggregate, computed from the encoded
    /// data (or from zone metadata when possible).
    fn agg_segment(
        &self,
        t: &TableSnapshot,
        si: usize,
        spec: AggSpec<'_>,
        hits: Option<&[u32]>,
    ) -> (AggAcc, ResourceProfile) {
        let seg = &t.segments()[si];
        let base = t.segment_base(si);
        let rows = seg.rows();
        let mut profile = ResourceProfile::default();
        // A hit list covering every row of the segment is the tautology
        // case: the filters kept the whole segment.
        let full = hits.is_none_or(|h| h.len() == rows);
        let vsrc = match seg.column(spec.vidx) {
            Some(SegColumn::Int { data, .. }) => SegSource::Enc(data),
            None => SegSource::Const(0), // segment predates the column
            Some(_) => unreachable!("aggregate value validated as integer column"),
        };
        // COUNT never needs the values — only how many rows survive.
        let vsrc = if spec.kind == AggKind::Count { SegSource::Const(0) } else { vsrc };
        let Some(g) = spec.group else {
            let (st, fp) = self.fold_segment_values(seg, base, spec.kind, spec.vidx, vsrc, hits);
            profile += fp;
            return (AggAcc::Global(st), profile);
        };
        // Grouped: stream keys and values together into per-group states.
        let (gsrc, gcol_idx) = match g {
            GroupCol::Int(gidx) => (
                match seg.column(*gidx) {
                    Some(SegColumn::Int { data, .. }) => SegSource::Enc(data),
                    None => SegSource::Const(0),
                    Some(_) => unreachable!("group key validated as integer column"),
                },
                *gidx,
            ),
            GroupCol::Str { col, sentinel_key, .. } => (
                match seg.column(*col) {
                    // Segment codes index the table-global dictionary,
                    // which is exactly the unified key space.
                    Some(SegColumn::Str { codes, .. }) => SegSource::Enc(codes),
                    None => SegSource::Const(*sentinel_key),
                    Some(_) => unreachable!("group key validated as string column"),
                },
                *col,
            ),
        };
        // Zone-map-aware shortcut: a collapsed key zone means every row
        // of this segment belongs to one group — fold the values like a
        // global aggregate (zone-answered fast paths included) and skip
        // the per-row key decode and hashing entirely: zero key-column
        // bytes touched.
        let single_key = match gsrc {
            SegSource::Const(v) => Some(v),
            SegSource::Enc(_) => match seg.zone(gcol_idx) {
                Some((lo, hi)) if lo == hi => Some(lo),
                _ => None,
            },
        };
        if let Some(k) = single_key {
            let (st, fp) = self.fold_segment_values(seg, base, spec.kind, spec.vidx, vsrc, hits);
            profile += fp;
            let mut map = HashMap::with_capacity(1);
            map.insert(k, st);
            return (AggAcc::Grouped(map), profile);
        }
        // Pre-size the per-segment group hash from measured statistics:
        // the exact NDV recorded at merge time for integer keys, the
        // code-zone span for string keys — no rehashing mid-fold.
        let ndv_hint = match g {
            GroupCol::Int(_) => seg.ndv(gcol_idx).unwrap_or(1),
            GroupCol::Str { .. } => {
                seg.zone(gcol_idx).map_or(1, |(lo, hi)| (hi - lo + 1).max(1).unsigned_abs())
            }
        };
        let mut map: HashMap<i64, AggState> = HashMap::with_capacity(ndv_hint.min(rows as u64) as usize);
        if full {
            for (k, v) in gsrc.iter(rows).zip(vsrc.iter(rows)) {
                map.entry(k).or_default().update(v);
            }
            let items = gsrc.decode_items(rows) + vsrc.decode_items(rows);
            profile.cpu_cycles += self.costs.cycles_for(Kernel::CompressDecode, items)
                + self.costs.cycles_for(Kernel::AggUpdate, rows as u64)
                + self.costs.cycles_for(Kernel::HashProbe, rows as u64);
            profile.dram_read +=
                ByteCount::new(gsrc.stream_bytes(rows, rows) + vsrc.stream_bytes(rows, rows));
        } else {
            let hits = hits.expect("not full implies a hit list");
            let n = hits.len();
            if sparse_hits(n, rows) {
                for &p in hits {
                    let local = p as usize - base;
                    map.entry(gsrc.get(local)).or_default().update(vsrc.get(local));
                }
                let items = gsrc.decode_items(n) + vsrc.decode_items(n);
                profile.cpu_cycles += self.costs.cycles_for(Kernel::CompressDecode, items)
                    + self.costs.cycles_for(Kernel::AggUpdate, n as u64)
                    + self.costs.cycles_for(Kernel::HashProbe, n as u64);
                // Codes are 4-byte cells, int keys and values 8-byte.
                let key_width = if matches!(g, GroupCol::Str { .. }) { 4 } else { 8 };
                profile.dram_read +=
                    ByteCount::new(gsrc.decode_items(n) * key_width + vsrc.decode_items(n) * 8);
            } else {
                let mut hi = 0;
                for (local, (k, v)) in gsrc.iter(rows).zip(vsrc.iter(rows)).enumerate() {
                    if hi == n {
                        break;
                    }
                    if hits[hi] as usize - base == local {
                        map.entry(k).or_default().update(v);
                        hi += 1;
                    }
                }
                let streamed = hits.last().map_or(0, |&p| p as usize - base + 1);
                let items = gsrc.decode_items(streamed) + vsrc.decode_items(streamed);
                profile.cpu_cycles += self.costs.cycles_for(Kernel::CompressDecode, items)
                    + self.costs.cycles_for(Kernel::AggUpdate, n as u64)
                    + self.costs.cycles_for(Kernel::HashProbe, n as u64);
                profile.dram_read +=
                    ByteCount::new(gsrc.stream_bytes(streamed, rows) + vsrc.stream_bytes(streamed, rows));
            }
        }
        (AggAcc::Grouped(map), profile)
    }

    /// Folds one main segment's value column into a single
    /// [`AggState`], zone-answered fast paths included — shared by the
    /// global-aggregate path and by grouped aggregates over segments
    /// whose group-key zone collapses to one value (which therefore
    /// need no per-row hashing and no key bytes at all).
    fn fold_segment_values(
        &self,
        seg: &Segment,
        base: usize,
        kind: AggKind,
        vidx: usize,
        vsrc: SegSource<'_>,
        hits: Option<&[u32]>,
    ) -> (AggState, ResourceProfile) {
        let rows = seg.rows();
        let mut profile = ResourceProfile::default();
        let mut st = AggState::empty();
        // A hit list covering every row is the tautology case.
        if hits.is_none_or(|h| h.len() == rows) {
            match (kind, vsrc, seg.zone(vidx)) {
                // Sentinel column: `rows` copies of 0, no data exists.
                (_, SegSource::Const(v), _) if kind != AggKind::Count => {
                    st.update_repeated(v, rows);
                }
                // Zone-answered: zero column bytes touched.
                (AggKind::Count, _, _) => {
                    st.count = rows as u64;
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::AggUpdate, 1);
                }
                (AggKind::Min | AggKind::Max, _, Some((lo, hi))) => {
                    st.count = rows as u64;
                    st.min = lo;
                    st.max = hi;
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::AggUpdate, 1);
                }
                (_, SegSource::Enc(EncodedInts::Rle(r)), _) => {
                    // SUM/AVG on RLE: one multiply per run.
                    for run in r.runs() {
                        st.update_repeated(run.value, run.len);
                    }
                    let items = r.runs().len() as u64;
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::CompressDecode, items)
                        + self.costs.cycles_for(Kernel::AggUpdate, items);
                    profile.dram_read += ByteCount::new(vsrc.stream_bytes(rows, rows));
                }
                (_, SegSource::Enc(data), _) => {
                    for v in data.iter() {
                        st.update(v);
                    }
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::CompressDecode, rows as u64)
                        + self.costs.cycles_for(Kernel::AggUpdate, rows as u64);
                    profile.dram_read += ByteCount::new(vsrc.stream_bytes(rows, rows));
                }
                (_, SegSource::Const(_), _) => unreachable!("count handled above"),
            }
        } else {
            let hits = hits.expect("not full implies a hit list");
            if kind == AggKind::Count {
                st.count = hits.len() as u64;
                profile.cpu_cycles += self.costs.cycles_for(Kernel::AggUpdate, 1);
            } else if sparse_hits(hits.len(), rows) {
                // Sparse survivors: compressed random access.
                for &p in hits {
                    st.update(vsrc.get(p as usize - base));
                }
                let n = hits.len();
                profile.cpu_cycles += self.costs.cycles_for(Kernel::CompressDecode, vsrc.decode_items(n))
                    + self.costs.cycles_for(Kernel::AggUpdate, n as u64);
                profile.dram_read += ByteCount::new(vsrc.decode_items(n) * 8);
            } else {
                // Dense survivors: stream-decode up to the last hit.
                let mut hi = 0;
                for (local, v) in vsrc.iter(rows).enumerate() {
                    if hi == hits.len() {
                        break;
                    }
                    if hits[hi] as usize - base == local {
                        st.update(v);
                        hi += 1;
                    }
                }
                let streamed = hits.last().map_or(0, |&p| p as usize - base + 1);
                profile.cpu_cycles +=
                    self.costs.cycles_for(Kernel::CompressDecode, vsrc.decode_items(streamed))
                        + self.costs.cycles_for(Kernel::AggUpdate, hits.len() as u64);
                profile.dram_read += ByteCount::new(vsrc.stream_bytes(streamed, rows));
            }
        }
        (st, profile)
    }

    /// Partial aggregate over delta rows `[start, end)`: the flat tail
    /// folds with the existing kernels (dense column slices, no decode).
    fn agg_delta(
        &self,
        t: &TableSnapshot,
        start: usize,
        end: usize,
        spec: AggSpec<'_>,
        hits: Option<&[u32]>,
    ) -> (AggAcc, ResourceProfile) {
        let base = t.main_rows();
        let rows = end - start;
        let mut profile = ResourceProfile::default();
        let full = hits.is_none_or(|h| h.len() == rows);
        let vals = t
            .delta_column(spec.vidx)
            .and_then(Column::as_int64)
            .expect("aggregate value validated as integer column");
        let Some(g) = spec.group else {
            let st = if spec.kind == AggKind::Count {
                // Counting needs no value reads.
                let mut st = AggState::empty();
                st.count = if full { rows } else { hits.expect("not full").len() } as u64;
                profile.cpu_cycles += self.costs.cycles_for(Kernel::AggUpdate, 1);
                st
            } else if full {
                let st = aggregate(&vals[start..end]);
                profile.cpu_cycles += self.costs.cycles_for(Kernel::AggUpdate, rows as u64);
                profile.dram_read += ByteCount::new(rows as u64 * 8);
                st
            } else {
                let hits = hits.expect("not full implies a hit list");
                let mut st = AggState::empty();
                for &p in hits {
                    st.update(vals[p as usize - base]);
                }
                profile.cpu_cycles += self.costs.cycles_for(Kernel::AggUpdate, hits.len() as u64);
                profile.dram_read += ByteCount::new(hits.len() as u64 * 8);
                st
            };
            return (AggAcc::Global(st), profile);
        };
        // Grouped delta fold. Key bytes: 8 per int key, 4 per code.
        let (key_of, key_bytes): (Box<dyn Fn(usize) -> i64 + '_>, u64) = match g {
            GroupCol::Int(gidx) => {
                let keys = t
                    .delta_column(*gidx)
                    .and_then(Column::as_int64)
                    .expect("group key validated as integer column");
                (Box::new(move |local| keys[local]), 8)
            }
            GroupCol::Str { col, delta_remap, .. } => {
                let codes = t
                    .delta_column(*col)
                    .and_then(Column::as_str)
                    .expect("group key validated as string column")
                    .codes();
                (Box::new(move |local| delta_remap[codes[local] as usize]), 4)
            }
        };
        let mut map: HashMap<i64, AggState> = HashMap::new();
        let mut fold = |local: usize| {
            let v = if spec.kind == AggKind::Count { 0 } else { vals[local] };
            map.entry(key_of(local)).or_default().update(v);
        };
        let inspected = if full {
            (start..end).for_each(&mut fold);
            rows as u64
        } else {
            let hits = hits.expect("not full implies a hit list");
            hits.iter().for_each(|&p| fold(p as usize - base));
            hits.len() as u64
        };
        let value_bytes = if spec.kind == AggKind::Count { 0 } else { 8 };
        profile.cpu_cycles += self.costs.cycles_for(Kernel::AggUpdate, inspected)
            + self.costs.cycles_for(Kernel::HashProbe, inspected);
        profile.dram_read += ByteCount::new(inspected * (key_bytes + value_bytes));
        (AggAcc::Grouped(map), profile)
    }

    /// Pins a consistent multi-table snapshot: one timestamp from the
    /// shared oracle, every table pinned at it. Queries through the
    /// returned [`DbSnapshot`] all see exactly the rows committed before
    /// that timestamp, however many inserts and merges run concurrently.
    ///
    /// If a concurrent merge folds rows newer than the drawn timestamp
    /// into a table's segments between the draw and the pin, the whole
    /// pin retries with a fresh timestamp (segments carry no per-row
    /// timestamps, so the older cut is no longer servable) — readers
    /// spin briefly instead of ever blocking a writer.
    pub fn begin_snapshot(&self) -> DbSnapshot<'_> {
        let tables = self.tables.read();
        'retry: loop {
            let ts = self.oracle.next();
            let mut pinned = HashMap::with_capacity(tables.len());
            for (name, t) in tables.iter() {
                match t.pin_at(ts) {
                    Some(s) => {
                        pinned.insert(name.clone(), s);
                    }
                    None => continue 'retry,
                }
            }
            return DbSnapshot { db: self, ts, tables: pinned };
        }
    }

    /// Begins a transaction: a pinned [`DbSnapshot`] plus a private
    /// write overlay. Reads see the snapshot **and** the transaction's
    /// own uncommitted writes (in the spirit of the `haec_txn`
    /// database-conversation model); nothing is visible to others until
    /// [`DbTransaction::commit`].
    pub fn begin_transaction(&self) -> DbTransaction<'_> {
        DbTransaction { snapshot: self.begin_snapshot(), writes: Vec::new() }
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

/// A consistent read view of the whole database as of one timestamp
/// (see [`Database::begin_snapshot`]).
///
/// Holding a `DbSnapshot` keeps the pinned table versions alive (via
/// their `Arc`s) but blocks nobody: writers keep inserting, merges keep
/// swapping segment sets; the old sets are reclaimed when the last
/// snapshot pinning them drops.
#[derive(Debug)]
pub struct DbSnapshot<'a> {
    db: &'a Database,
    ts: Timestamp,
    tables: HashMap<String, TableSnapshot>,
}

impl DbSnapshot<'_> {
    /// The snapshot's timestamp: exactly the rows with commit timestamp
    /// ≤ this are visible.
    pub fn timestamp(&self) -> Timestamp {
        self.ts
    }

    /// The pinned view of one table (`None` if it did not exist at the
    /// pin).
    pub fn table(&self, name: &str) -> Option<&TableSnapshot> {
        self.tables.get(name)
    }

    /// Executes a query against the pinned state. Work is charged to
    /// the database's meter as usual; the result's `energy` is the
    /// query's own cost, unpolluted by concurrent queries.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Database::execute`]; tables created
    /// after the pin are invisible ([`DbError::NoSuchTable`]).
    pub fn execute(&self, query: &Query) -> DbResult<QueryResult> {
        self.execute_opts(query, &ExecOpts::default())
    }

    /// Executes a query against the pinned state with explicit
    /// [`ExecOpts`] — how a query server runs a governor-granted query
    /// on its pinned snapshot (see [`Database::execute_opts`]).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DbSnapshot::execute`].
    pub fn execute_opts(&self, query: &Query, opts: &ExecOpts) -> DbResult<QueryResult> {
        if let Some(jc) = &query.join {
            let lt = self.table(&query.table).ok_or_else(|| DbError::NoSuchTable(query.table.clone()))?;
            let rt = self.table(&jc.table).ok_or_else(|| DbError::NoSuchTable(jc.table.clone()))?;
            return self.db.execute_join_pinned(lt, rt, query, jc, opts);
        }
        let t = self.table(&query.table).ok_or_else(|| DbError::NoSuchTable(query.table.clone()))?;
        self.db.execute_pinned(t, query, true, opts)
    }
}

/// A transaction: a pinned snapshot plus a private write overlay, giving
/// read-your-own-writes on top of snapshot isolation (see
/// [`Database::begin_transaction`]).
#[derive(Debug)]
pub struct DbTransaction<'a> {
    snapshot: DbSnapshot<'a>,
    writes: Vec<(String, Record)>,
}

impl DbTransaction<'_> {
    /// The transaction's snapshot timestamp.
    pub fn timestamp(&self) -> Timestamp {
        self.snapshot.ts
    }

    /// Number of buffered (uncommitted) writes.
    pub fn pending_writes(&self) -> usize {
        self.writes.len()
    }

    /// Buffers one insert in the transaction's private overlay. The row
    /// is visible to this transaction's own reads immediately, and to
    /// nobody else until [`DbTransaction::commit`].
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] if the table did not exist at the pin.
    pub fn insert(&mut self, table: &str, record: Record) -> DbResult<()> {
        if !self.snapshot.tables.contains_key(table) {
            return Err(DbError::NoSuchTable(table.to_string()));
        }
        self.writes.push((table.to_string(), record));
        Ok(())
    }

    /// The pinned base snapshot of one table overlaid with this
    /// transaction's pending rows for it.
    fn overlay(&self, table: &str) -> DbResult<TableSnapshot> {
        let base = self.snapshot.tables.get(table).ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        let pending: Vec<Record> =
            self.writes.iter().filter(|(t, _)| t == table).map(|(_, r)| r.clone()).collect();
        if pending.is_empty() {
            Ok(base.clone())
        } else {
            base.with_pending(&pending)
        }
    }

    /// Executes a query against the snapshot **plus** this transaction's
    /// own uncommitted writes.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Database::execute`]; overlay rows that
    /// violate the schema surface here.
    pub fn execute(&self, query: &Query) -> DbResult<QueryResult> {
        let lt = self.overlay(&query.table)?;
        let opts = ExecOpts::default();
        if let Some(jc) = &query.join {
            let rt = self.overlay(&jc.table)?;
            return self.snapshot.db.execute_join_pinned(&lt, &rt, query, jc, &opts);
        }
        // Overlay rows are invisible to the live indexes — stay off the
        // index path so read-your-own-writes holds on every plan.
        self.snapshot.db.execute_pinned(&lt, query, false, &opts)
    }

    /// Commits the overlay: every buffered write replays through
    /// [`Database::insert`], each drawing a fresh commit timestamp.
    /// Returns the last commit timestamp (the snapshot's timestamp when
    /// the transaction wrote nothing).
    ///
    /// # Errors
    ///
    /// A write that fails validation (e.g. against a schema that
    /// evolved since the pin) aborts the replay; earlier writes of this
    /// transaction stay committed — callers that need atomicity must
    /// pre-validate, as the overlay's own `execute` does.
    pub fn commit(self) -> DbResult<Timestamp> {
        let mut last = self.snapshot.ts;
        for (table, record) in &self.writes {
            last = self.snapshot.db.insert(table, record)?;
        }
        Ok(last)
    }

    /// Discards the overlay; the database is untouched.
    pub fn rollback(self) {
        drop(self);
    }
}

/// Smallest delta execution unit a query can ask for — below this the
/// per-unit bookkeeping dominates the work.
const DELTA_UNIT_MIN_ROWS: usize = 1024;

/// Rows per delta execution unit for one query: the per-query morsel
/// size, clamped to `[`[`DELTA_UNIT_MIN_ROWS`]`, SEGMENT_ROWS]` — a
/// governor grant can shrink units under contention for fairer
/// interleaving, but a compressed main segment stays the widest unit
/// (it is atomic: the storage-defined dispatch floor).
fn delta_unit_rows(opts: &ExecOpts) -> usize {
    opts.morsel_rows.clamp(DELTA_UNIT_MIN_ROWS, crate::segment::SEGMENT_ROWS)
}

/// Delta rows `[start, end)` of delta chunk `c` — the
/// [`delta_unit_rows`]-sized execution units an oversized
/// (merge-disabled) delta is split into (see `Database::eval_units`).
fn delta_chunk(t: &TableSnapshot, c: usize, unit_rows: usize) -> (usize, usize) {
    let start = c * unit_rows;
    (start, (start + unit_rows).min(t.delta_rows()))
}

/// Splits an ascending global-position list into per-unit slices — one
/// per main segment, then one per delta chunk — so aggregation pushdown
/// and join-key extraction hand each execution unit exactly its hits.
fn split_unit_hits<'p>(
    t: &TableSnapshot,
    positions: Option<&'p [u32]>,
    unit_rows: usize,
) -> Option<Vec<&'p [u32]>> {
    positions.map(|pos| {
        let nsegs = t.segments().len();
        let units = nsegs + t.delta_rows().div_ceil(unit_rows);
        let mut out = Vec::with_capacity(units);
        let mut i = 0;
        for u in 0..units {
            let end_row = if u < nsegs {
                t.segment_base(u) + t.segments()[u].rows()
            } else {
                t.main_rows() + delta_chunk(t, u - nsegs, unit_rows).1
            };
            let from = i;
            while i < pos.len() && (pos[i] as usize) < end_row {
                i += 1;
            }
            out.push(&pos[from..i]);
        }
        out
    })
}

/// Resolves a join's output columns as `(is_left, output name, source
/// column)` triples: with no projection, every left column under its
/// own name then every right column as `"table.column"`; with a
/// projection, each name resolves qualified-first on either side, then
/// bare against the left schema, then the right.
fn resolve_join_outputs(
    query: &Query,
    jc: &JoinClause,
    lt: &TableSnapshot,
    rt: &TableSnapshot,
) -> DbResult<Vec<(bool, String, String)>> {
    match &query.select {
        None => {
            let mut out: Vec<(bool, String, String)> =
                lt.schema().columns().iter().map(|(n, _)| (true, n.clone(), n.clone())).collect();
            out.extend(
                rt.schema().columns().iter().map(|(n, _)| (false, format!("{}.{}", jc.table, n), n.clone())),
            );
            Ok(out)
        }
        Some(sel) => sel
            .iter()
            .map(|name| {
                // In a self-join the default projection labels the RIGHT
                // side `"table.column"`, so a qualified name must keep
                // meaning the right side there; bare names stay left.
                if query.table != jc.table {
                    if let Some(rest) = name.strip_prefix(&format!("{}.", query.table)) {
                        if lt.schema().position(rest).is_some() {
                            return Ok((true, name.clone(), rest.to_string()));
                        }
                    }
                }
                if let Some(rest) = name.strip_prefix(&format!("{}.", jc.table)) {
                    if rt.schema().position(rest).is_some() {
                        return Ok((false, name.clone(), rest.to_string()));
                    }
                }
                if lt.schema().position(name).is_some() {
                    return Ok((true, name.clone(), name.clone()));
                }
                if rt.schema().position(name).is_some() {
                    return Ok((false, name.clone(), name.clone()));
                }
                Err(DbError::NoSuchColumn {
                    table: format!("{} join {}", query.table, jc.table),
                    column: name.clone(),
                })
            })
            .collect(),
    }
}

/// Planner-side cost of delivering this query's string projection to
/// the client as codes + one shared output dictionary
/// ([`CostModel::project_codes`]): the estimated surviving rows each
/// move a code, and each distinct value (catalog NDV, capped by the row
/// count) pays one dictionary-entry decode of the column's mean entry
/// length. Zero for aggregates (no client projection) and for
/// projections without string columns.
fn str_projection_cost(
    model: &CostModel,
    t: &TableSnapshot,
    meta: &haec_planner::catalog::TableMeta,
    query: &Query,
    sel: f64,
) -> PlanCost {
    if query.agg.is_some() {
        return PlanCost::ZERO;
    }
    let rows = (sel * t.rows() as f64).ceil() as u64;
    let projected: Vec<&str> = match &query.select {
        Some(cols) => cols.iter().map(String::as_str).collect(),
        None => t.schema().columns().iter().map(|(n, _)| n.as_str()).collect(),
    };
    let mut cost = PlanCost::ZERO;
    for name in projected {
        let Some(idx) = t.schema().position(name) else { continue };
        if t.schema().columns()[idx].1 != DataType::Str {
            continue;
        }
        let ndv = meta.column(name).map_or(rows, |c| c.ndv);
        let avg = t.global_dict(idx).filter(|d| d.dict_size() > 0).map_or(8, |d| d.avg_entry_bytes() as u64);
        cost = cost + model.project_codes(rows, ndv, avg);
    }
    cost
}

/// ANDs `m` into the accumulator (first predicate just installs it).
fn and_into(acc: &mut Option<Bitmap>, m: Bitmap) {
    match acc {
        None => *acc = Some(m),
        Some(b) => b.and_with(&m),
    }
}

/// The aggregate output column for sorted `(key, state)` pairs.
fn agg_value_column<K>(grouped: &[(K, AggState)], kind: AggKind) -> Column {
    grouped.iter().map(|(_, s)| s.value(kind).unwrap_or(f64::NAN)).collect::<Vec<f64>>().into_iter().collect()
}

/// Resolves a group-by column: integer columns group on values, string
/// columns on dictionary codes (see [`GroupCol::Str`] for the unified
/// key space spanning the global and delta-local dictionaries).
fn resolve_group_col(t: &TableSnapshot, table: &str, name: &str) -> DbResult<GroupCol> {
    let idx = t
        .schema()
        .position(name)
        .ok_or_else(|| DbError::NoSuchColumn { table: table.to_string(), column: name.to_string() })?;
    match t.schema().columns()[idx].1 {
        DataType::Int64 => Ok(GroupCol::Int(idx)),
        DataType::Str => {
            let global = t.global_dict(idx);
            let global_len = global.map_or(0, DictColumn::dict_size);
            let local = t.delta_column(idx).and_then(Column::as_str);
            let delta_remap = local.map_or_else(Vec::new, |l| {
                (0..l.dict_size())
                    .map(|c| {
                        let s = l.decode(c as u32).expect("local code in range");
                        global.and_then(|g| g.code_of(s)).map_or(global_len as i64 + c as i64, i64::from)
                    })
                    .collect()
            });
            let sentinel_key = global
                .and_then(|g| g.code_of(""))
                .map(i64::from)
                .or_else(|| local.and_then(|l| l.code_of("")).map(|c| global_len as i64 + i64::from(c)))
                .unwrap_or(SENTINEL_STR_KEY);
            Ok(GroupCol::Str { col: idx, delta_remap, sentinel_key, global_len })
        }
        DataType::Float64 => {
            Err(DbError::TypeMismatch { column: name.to_string(), expected: DataType::Int64 })
        }
    }
}

/// Decodes a unified string-group key back to its string.
fn decode_group_key(t: &TableSnapshot, col: usize, global_len: usize, key: i64) -> String {
    if key == SENTINEL_STR_KEY {
        return String::new();
    }
    let s = if (key as usize) < global_len {
        t.global_dict(col).and_then(|g| g.decode(key as u32))
    } else {
        t.delta_column(col)
            .and_then(Column::as_str)
            .and_then(|l| l.decode((key as usize - global_len) as u32))
    };
    s.expect("group key decodes through its dictionary").to_string()
}

fn check_int_column(t: &TableSnapshot, table: &str, name: &str) -> DbResult<usize> {
    let idx = t
        .schema()
        .position(name)
        .ok_or_else(|| DbError::NoSuchColumn { table: table.to_string(), column: name.to_string() })?;
    if t.schema().columns()[idx].1 != DataType::Int64 {
        return Err(DbError::TypeMismatch { column: name.to_string(), expected: DataType::Int64 });
    }
    Ok(idx)
}

fn resolve_int_preds(t: &TableSnapshot, table: &str, filters: &[Filter]) -> DbResult<Vec<IntPred>> {
    filters
        .iter()
        .map(|f| {
            let col = check_int_column(t, table, &f.column)?;
            Ok(IntPred { col, op: f.op, literal: f.literal })
        })
        .collect()
}

fn resolve_str_preds(t: &TableSnapshot, table: &str, filters: &[StrFilter]) -> DbResult<Vec<StrPred>> {
    filters
        .iter()
        .map(|f| {
            let col = t.schema().position(&f.column).ok_or_else(|| DbError::NoSuchColumn {
                table: table.to_string(),
                column: f.column.clone(),
            })?;
            if t.schema().columns()[col].1 != DataType::Str {
                return Err(DbError::TypeMismatch { column: f.column.clone(), expected: DataType::Str });
            }
            let global_code = t.global_dict(col).and_then(|d| d.code_of(&f.value)).map(i64::from);
            let delta_code = t.delta_column(col).and_then(Column::as_str).and_then(|d| d.code_of(&f.value));
            Ok(StrPred { col, value: f.value.clone(), global_code, delta_code, negated: f.negated })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::SEGMENT_ROWS;

    fn sample_db(rows: i64) -> Database {
        let db = Database::new();
        db.create_table(
            "orders",
            &[("id", DataType::Int64), ("region", DataType::Int64), ("amount", DataType::Int64)],
        )
        .unwrap();
        for i in 0..rows {
            db.insert("orders", &Record::new().with("id", i).with("region", i % 4).with("amount", i * 3))
                .unwrap();
        }
        db
    }

    #[test]
    fn filter_and_project() {
        let db = sample_db(100);
        let out = db.execute(&Query::scan("orders").filter("amount", CmpOp::Lt, 30).select(["id"])).unwrap();
        assert_eq!(out.rows.rows(), 10);
        assert_eq!(out.rows.width(), 1);
        assert!(out.energy.joules() > 0.0);
    }

    #[test]
    fn conjunctive_filters() {
        let db = sample_db(100);
        let out = db
            .execute(&Query::scan("orders").filter("region", CmpOp::Eq, 1).filter("amount", CmpOp::Lt, 60))
            .unwrap();
        // region==1: ids 1,5,9,...; amount<60 → id*3<60 → id<20 → ids 1,5,9,13,17
        assert_eq!(out.rows.rows(), 5);
    }

    #[test]
    fn global_and_grouped_aggregates() {
        let db = sample_db(100);
        let out = db.execute(&Query::scan("orders").aggregate(AggKind::Sum, "amount")).unwrap();
        let want: i64 = (0..100).map(|i| i * 3).sum();
        assert_eq!(out.rows.row(0).unwrap()[0].as_float(), Some(want as f64));

        let out = db
            .execute(&Query::scan("orders").group_by("region").aggregate(AggKind::Count, "amount"))
            .unwrap();
        assert_eq!(out.rows.rows(), 4);
        for r in 0..4 {
            assert_eq!(out.rows.row(r).unwrap()[1].as_float(), Some(25.0));
        }
    }

    #[test]
    fn segmented_execution_matches_flat() {
        // The core differential guarantee: merging (any number of times)
        // never changes any query answer.
        let queries = [
            Query::scan("orders").filter("amount", CmpOp::Lt, 600),
            Query::scan("orders").filter("region", CmpOp::Eq, 2).filter("amount", CmpOp::Ge, 300),
            Query::scan("orders").filter("id", CmpOp::Gt, 750).select(["id", "amount"]),
            Query::scan("orders").group_by("region").aggregate(AggKind::Sum, "amount"),
            Query::scan("orders").filter("amount", CmpOp::Ne, 0).aggregate(AggKind::Max, "id"),
        ];
        let flat = sample_db(1000);
        let seg = sample_db(1000);
        seg.merge("orders").unwrap();
        let mixed = Database::new();
        mixed
            .create_table(
                "orders",
                &[("id", DataType::Int64), ("region", DataType::Int64), ("amount", DataType::Int64)],
            )
            .unwrap();
        for i in 0..1000i64 {
            mixed
                .insert("orders", &Record::new().with("id", i).with("region", i % 4).with("amount", i * 3))
                .unwrap();
            if i == 311 || i == 702 {
                mixed.merge("orders").unwrap();
            }
        }
        assert_eq!(mixed.table("orders").unwrap().segments().len(), 2);
        for q in &queries {
            let a = flat.execute(q).unwrap();
            let b = seg.execute(q).unwrap();
            let c = mixed.execute(q).unwrap();
            assert_eq!(a.rows.rows(), b.rows.rows(), "{q:?}");
            for r in 0..a.rows.rows() {
                assert_eq!(a.rows.row(r), b.rows.row(r), "{q:?} row {r}");
                assert_eq!(a.rows.row(r), c.rows.row(r), "{q:?} row {r} (mixed)");
            }
        }
    }

    #[test]
    fn merge_is_metered_and_auto_triggers() {
        let db = sample_db(10);
        db.set_merge_threshold("orders", 50).unwrap();
        let before = db.meter().grand_total();
        let stats = db.merge("orders").unwrap();
        assert_eq!(stats.rows_merged, 10);
        assert!(db.meter().grand_total().joules() > before.joules(), "merge must cost energy");
        // Empty merge is free.
        let e0 = db.meter().grand_total();
        assert_eq!(db.merge("orders").unwrap(), MergeStats::default());
        assert_eq!(db.meter().grand_total(), e0);
        // Auto-trigger: inserting past the threshold compacts the delta.
        for i in 10..200i64 {
            db.insert("orders", &Record::new().with("id", i).with("region", i % 4).with("amount", i * 3))
                .unwrap();
        }
        let t = db.table("orders").unwrap();
        assert!(t.delta_rows() < 50, "delta stayed below threshold, got {}", t.delta_rows());
        assert!(t.main_rows() >= 150);
    }

    #[test]
    fn zone_pruning_reduces_scan_energy() {
        // Sorted ids split across segments: a range predicate touching
        // one segment must cost measurably less than one touching all.
        // Build a 4-segment table by merging every 250 rows.
        let seg_db = Database::new();
        seg_db
            .create_table(
                "orders",
                &[("id", DataType::Int64), ("region", DataType::Int64), ("amount", DataType::Int64)],
            )
            .unwrap();
        for i in 0..1000i64 {
            seg_db
                .insert("orders", &Record::new().with("id", i).with("region", i % 4).with("amount", i * 3))
                .unwrap();
            if (i + 1) % 250 == 0 {
                seg_db.merge("orders").unwrap();
            }
        }
        assert_eq!(seg_db.table("orders").unwrap().segments().len(), 4);
        // SUM must stream the surviving values, so pruning 3 of 4
        // segments shows up directly in the energy bill.
        let narrow = seg_db
            .execute(&Query::scan("orders").filter("id", CmpOp::Lt, 100).aggregate(AggKind::Sum, "id"))
            .unwrap();
        let broad = seg_db
            .execute(&Query::scan("orders").filter("id", CmpOp::Ge, 0).aggregate(AggKind::Sum, "id"))
            .unwrap();
        assert_eq!(narrow.rows.row(0).unwrap()[0].as_float(), Some(4950.0));
        assert_eq!(broad.rows.row(0).unwrap()[0].as_float(), Some(499_500.0));
        // The narrow query prunes 3 of 4 segments AND folds fewer rows.
        assert!(narrow.energy.joules() < broad.energy.joules());
        // COUNT under a tautological predicate is answered from segment
        // row counts without touching any column bytes at all.
        let count = seg_db
            .execute(&Query::scan("orders").filter("id", CmpOp::Ge, 0).aggregate(AggKind::Count, "id"))
            .unwrap();
        assert_eq!(count.rows.row(0).unwrap()[0].as_float(), Some(1000.0));
        assert!(count.energy.joules() < narrow.energy.joules());
    }

    #[test]
    fn index_is_used_for_point_queries() {
        let db = sample_db(50_000);
        db.create_index("orders", "id", IndexMaintenance::Eager).unwrap();
        let out = db.execute(&Query::scan("orders").filter("id", CmpOp::Eq, 123)).unwrap();
        assert_eq!(out.rows.rows(), 1);
        assert_eq!(out.access_path, Some(AccessPath::IndexLookup));
        assert_eq!(db.index_stats("orders", "id").unwrap().lookups, 1);
    }

    #[test]
    fn index_works_across_merged_segments() {
        // Row ids are stable across merges, so an index built before a
        // merge keeps answering correctly after it.
        let db = sample_db(50_000);
        db.create_index("orders", "id", IndexMaintenance::Eager).unwrap();
        db.merge("orders").unwrap();
        let out = db
            .execute(&Query::scan("orders").filter("id", CmpOp::Eq, 123).filter("region", CmpOp::Eq, 3))
            .unwrap();
        assert_eq!(out.rows.rows(), 1, "id 123 has region 3");
        let miss = db
            .execute(&Query::scan("orders").filter("id", CmpOp::Eq, 123).filter("region", CmpOp::Eq, 0))
            .unwrap();
        assert_eq!(miss.rows.rows(), 0);
    }

    #[test]
    fn scan_chosen_without_index() {
        let db = sample_db(1000);
        let out = db.execute(&Query::scan("orders").filter("id", CmpOp::Eq, 5)).unwrap();
        assert_eq!(out.rows.rows(), 1);
        assert_eq!(out.access_path, None, "no index: no access decision");
    }

    /// An `orders`-shaped table with `id` shuffled at insert (so sorting
    /// is real work), declared sorted on `id` when `sorted` is set.
    fn shuffled_orders_db(rows: i64, sorted: bool) -> Database {
        let db = Database::new();
        let cols = [("id", DataType::Int64), ("region", DataType::Int64), ("amount", DataType::Int64)];
        if sorted {
            db.create_table_sorted("orders", &cols, "id").unwrap();
        } else {
            db.create_table("orders", &cols).unwrap();
        }
        db.set_merge_threshold("orders", usize::MAX).unwrap();
        let mut ids: Vec<i64> = (0..rows).collect();
        ids.sort_by_key(|&i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15_u64 as i64));
        for id in ids {
            db.insert("orders", &Record::new().with("id", id).with("region", id % 4).with("amount", id * 3))
                .unwrap();
        }
        db.merge("orders").unwrap();
        db
    }

    #[test]
    fn sorting_merge_produces_sorted_disjoint_segments() {
        let db = shuffled_orders_db(3 * SEGMENT_ROWS as i64 / 2, true);
        let t = db.table("orders").unwrap();
        let zones = t.zone_maps("id").unwrap();
        assert!(zones.iter().all(|z| z.sorted), "every segment claims sortedness");
        assert!(haec_planner::access::sorted_layout(&zones), "zones are disjoint ascending");
        // Non-key columns rode along with the permutation.
        let out = db.execute(&Query::scan("orders").filter("id", CmpOp::Eq, 123)).unwrap();
        assert_eq!(out.rows.rows(), 1);
        let row = out.rows.row(0).unwrap();
        assert_eq!(row[1].as_int(), Some(3), "region permuted with id");
        assert_eq!(row[2].as_int(), Some(369), "amount permuted with id");
    }

    #[test]
    fn sorted_point_query_uses_zone_binary_search_and_reads_less() {
        let rows = 3 * SEGMENT_ROWS as i64 / 2;
        let sorted = shuffled_orders_db(rows, true);
        let unsorted = shuffled_orders_db(rows, false);
        let q = Query::scan("orders").filter("id", CmpOp::Eq, 123);
        let s = sorted.execute(&q).unwrap();
        let u = unsorted.execute(&q).unwrap();
        assert_eq!(s.access_path, Some(AccessPath::ZoneBinarySearch));
        assert_eq!(u.access_path, None, "unsorted, unindexed: no access decision");
        assert_eq!(s.rows.rows(), 1);
        assert_eq!(u.rows.rows(), 1);
        assert!(
            s.profile.dram_read < u.profile.dram_read,
            "binary search must read fewer bytes: {} vs {}",
            s.profile.dram_read,
            u.profile.dram_read,
        );
        assert!(s.energy.joules() < u.energy.joules());
    }

    #[test]
    fn sorted_range_and_aggregate_agree_with_unsorted() {
        let rows = SEGMENT_ROWS as i64 + 1000;
        let sorted = shuffled_orders_db(rows, true);
        let unsorted = shuffled_orders_db(rows, false);
        for q in [
            Query::scan("orders").filter("id", CmpOp::Lt, 500).aggregate(AggKind::Sum, "amount"),
            Query::scan("orders").filter("id", CmpOp::Ge, rows - 300).aggregate(AggKind::Count, "id"),
            Query::scan("orders")
                .filter("id", CmpOp::Gt, 100)
                .filter("region", CmpOp::Eq, 1)
                .aggregate(AggKind::Sum, "id"),
        ] {
            let s = sorted.execute(&q).unwrap();
            let u = unsorted.execute(&q).unwrap();
            assert_eq!(s.rows.row(0).unwrap()[0], u.rows.row(0).unwrap()[0]);
        }
    }

    #[test]
    fn sorting_merge_rebuilds_index_and_epoch_gates_stale_readers() {
        let rows = SEGMENT_ROWS as i64 + 1000;
        let db = shuffled_orders_db(rows, true);
        db.create_index("orders", "id", IndexMaintenance::Eager).unwrap();
        // Pin a snapshot, then run a sorting merge that permutes new rows.
        let snap = db.begin_snapshot();
        for id in [rows + 500, rows + 100, rows + 300] {
            db.insert("orders", &Record::new().with("id", id).with("region", 0).with("amount", 0)).unwrap();
        }
        db.merge("orders").unwrap();
        // The live table's index was rebuilt at the new epoch: usable.
        // (Query inside the big segment — zone pruning can't answer it,
        // so a cheap path must come from the index or the sort order.)
        let out = db.execute(&Query::scan("orders").filter("id", CmpOp::Eq, 123)).unwrap();
        assert_eq!(out.rows.rows(), 1);
        assert_ne!(out.access_path, Some(AccessPath::FullScan));
        // The pinned snapshot predates the rebuild: the epoch gate keeps
        // the (now wrongly-ordered for it) index out of its plan, and it
        // still answers correctly from its own frozen layout.
        let old = snap.execute(&Query::scan("orders").filter("id", CmpOp::Eq, 123)).unwrap();
        assert_eq!(old.rows.rows(), 1);
        assert_ne!(old.access_path, Some(AccessPath::IndexLookup));
    }

    #[test]
    fn sorted_string_key_orders_by_dictionary_code() {
        // String sort keys order by *global dictionary code* — first
        // appearance, not collation. "zebra" was interned first, so it
        // sorts before "apple".
        let db = Database::new();
        db.create_table_sorted("t", &[("k", DataType::Str), ("v", DataType::Int64)], "k").unwrap();
        db.set_merge_threshold("t", usize::MAX).unwrap();
        for (k, v) in [("zebra", 1i64), ("apple", 2), ("zebra", 3), ("mango", 4), ("apple", 5)] {
            db.insert("t", &Record::new().with("k", k).with("v", v)).unwrap();
        }
        db.merge("t").unwrap();
        let t = db.table("t").unwrap();
        let seg = &t.segments()[0];
        assert_eq!(seg.sorted_by(), Some(0));
        let codes: Vec<i64> = (0..5).map(|i| seg.get_int(0, i).unwrap()).collect();
        assert!(codes.windows(2).all(|w| w[0] <= w[1]), "codes ascending: {codes:?}");
        // Equality still resolves correctly, and the stable sort kept
        // duplicate keys in insertion order.
        let out = db.execute(&Query::scan("t").filter_str_eq("k", "zebra")).unwrap();
        assert_eq!(out.rows.rows(), 2);
        let vs: Vec<_> = (0..2).map(|r| out.rows.row(r).unwrap()[1].as_int().unwrap()).collect();
        assert_eq!(vs, [1, 3], "stable sort preserves insertion order within a key");
    }

    #[test]
    fn sorted_join_sides_agree_with_unsorted() {
        let build = |sorted: bool| {
            let db = Database::new();
            let cols = [("k", DataType::Int64), ("v", DataType::Int64)];
            if sorted {
                db.create_table_sorted("l", &cols, "k").unwrap();
                db.create_table_sorted("r", &cols, "k").unwrap();
            } else {
                db.create_table("l", &cols).unwrap();
                db.create_table("r", &cols).unwrap();
            }
            for t in ["l", "r"] {
                db.set_merge_threshold(t, usize::MAX).unwrap();
            }
            for i in 0..2000i64 {
                let k = i.wrapping_mul(0x9E37_79B9_7F4A_7C15_u64 as i64) % 500;
                db.insert("l", &Record::new().with("k", k).with("v", i)).unwrap();
                if i % 3 == 0 {
                    db.insert("r", &Record::new().with("k", k).with("v", -i)).unwrap();
                }
            }
            db.merge("l").unwrap();
            db.merge("r").unwrap();
            db
        };
        let q = Query::scan("l").join("r", "k", "k").filter("k", CmpOp::Ge, 0);
        let s = build(true).execute(&q).unwrap();
        let u = build(false).execute(&q).unwrap();
        assert_eq!(s.rows.rows(), u.rows.rows());
        let canon = |out: &QueryResult| {
            let mut rows: Vec<Vec<String>> = (0..out.rows.rows())
                .map(|r| out.rows.row(r).unwrap().iter().map(|v| format!("{v:?}")).collect())
                .collect();
            rows.sort();
            rows
        };
        assert_eq!(canon(&s), canon(&u));
    }

    #[test]
    fn index_and_scan_agree() {
        let with_idx = sample_db(10_000);
        with_idx.create_index("orders", "region", IndexMaintenance::Eager).unwrap();
        let without = sample_db(10_000);
        let q = Query::scan("orders").filter("region", CmpOp::Eq, 2).aggregate(AggKind::Sum, "amount");
        let a = with_idx.execute(&q).unwrap();
        let b = without.execute(&q).unwrap();
        assert_eq!(a.rows.row(0).unwrap()[0], b.rows.row(0).unwrap()[0]);
    }

    #[test]
    fn energy_goal_changes_nothing_single_node_but_is_respected() {
        let db = sample_db(10_000);
        db.create_index("orders", "id", IndexMaintenance::Eager).unwrap();
        db.set_goal(Goal::MinEnergy);
        assert_eq!(db.goal(), Goal::MinEnergy);
        let out = db.execute(&Query::scan("orders").filter("id", CmpOp::Eq, 7)).unwrap();
        // On one node the energy- and time-optimal access coincide (E1).
        assert_eq!(out.access_path, Some(AccessPath::IndexLookup));
    }

    #[test]
    fn over_budget_projection_still_takes_dominant_index() {
        // The projection term is added to BOTH access-path candidates;
        // when it pushes both past an energy budget, the planner must
        // fall back to ranking the access work alone instead of
        // silently defaulting to the (strictly worse) full scan.
        let db = Database::new();
        db.create_table("users", &[("id", DataType::Int64), ("country", DataType::Str)]).unwrap();
        for i in 0..50_000i64 {
            db.insert(
                "users",
                &Record::new().with("id", i).with("country", ["de", "us", "fr"][i as usize % 3]),
            )
            .unwrap();
        }
        db.create_index("users", "id", IndexMaintenance::Eager).unwrap();
        // Recompute the two candidates exactly as execute() does, to pick
        // a budget the index access fits but the whole query does not.
        let t = db.table("users").unwrap();
        let mut meta = t.planner_meta();
        meta.columns.iter_mut().find(|c| c.name == "id").unwrap().indexed = true;
        let zones = t.zone_maps("id").unwrap();
        let encoded = t.column_encoded_bytes("id").unwrap() as u64;
        let model = CostModel::new(db.machine().clone()).with_kernel_costs(db.costs.clone());
        let decision = choose_access_segmented(&model, &meta, "id", CmpOp::Eq, 123, &zones, encoded);
        let q = Query::scan("users").filter("id", CmpOp::Eq, 123);
        let project = str_projection_cost(&model, &t, &meta, &q, decision.selectivity);
        assert!(project.energy.joules() > 0.0, "string projection must cost something");
        let index = decision.index_cost.expect("point predicate on an indexed column");
        let budget = Joules::new(index.energy.joules() + project.energy.joules() / 2.0);
        assert!((index + project).energy.joules() > budget.joules());
        db.set_goal(Goal::MinTimeUnderEnergyBudget(budget));
        let out = db.execute(&q).unwrap();
        assert_eq!(out.access_path, Some(AccessPath::IndexLookup));
        assert_eq!(out.rows.rows(), 1);
    }

    #[test]
    fn meter_accumulates_across_queries() {
        let db = sample_db(1000);
        let before = db.meter().grand_total();
        db.execute(&Query::scan("orders").aggregate(AggKind::Sum, "amount")).unwrap();
        let mid = db.meter().grand_total();
        db.execute(&Query::scan("orders").aggregate(AggKind::Max, "amount")).unwrap();
        let after = db.meter().grand_total();
        assert!(mid > before);
        assert!(after > mid);
    }

    #[test]
    fn error_paths() {
        let db = sample_db(10);
        assert!(matches!(db.execute(&Query::scan("nope")), Err(DbError::NoSuchTable(_))));
        assert!(matches!(
            db.execute(&Query::scan("orders").filter("ghost", CmpOp::Eq, 1)),
            Err(DbError::NoSuchColumn { .. })
        ));
        assert!(matches!(db.execute(&Query::scan("orders").group_by("region")), Err(DbError::BadQuery(_))));
        assert!(matches!(db.create_table("orders", &[]), Err(DbError::TableExists(_))));
        assert!(db.create_index("orders", "ghost", IndexMaintenance::Eager).is_err());
        assert!(matches!(db.merge("nope"), Err(DbError::NoSuchTable(_))));
        assert!(matches!(db.set_merge_threshold("nope", 1), Err(DbError::NoSuchTable(_))));
    }

    #[test]
    fn string_filters_on_dictionary_codes() {
        let db = Database::new();
        db.create_table("users", &[("id", DataType::Int64), ("country", DataType::Str)]).unwrap();
        let countries = ["de", "us", "fr", "de", "de", "jp"];
        for (i, c) in countries.iter().enumerate() {
            db.insert("users", &Record::new().with("id", i as i64).with("country", *c)).unwrap();
        }
        // Exercise both storage forms: flat delta, then merged main.
        for merged in [false, true] {
            if merged {
                db.merge("users").unwrap();
            }
            let eq = db.execute(&Query::scan("users").filter_str_eq("country", "de")).unwrap();
            assert_eq!(eq.rows.rows(), 3, "merged={merged}");
            let ne = db.execute(&Query::scan("users").filter_str_ne("country", "de")).unwrap();
            assert_eq!(ne.rows.rows(), 3, "merged={merged}");
            // Unknown value: `=` empty, `<>` everything.
            assert_eq!(
                db.execute(&Query::scan("users").filter_str_eq("country", "zz")).unwrap().rows.rows(),
                0
            );
            assert_eq!(
                db.execute(&Query::scan("users").filter_str_ne("country", "zz")).unwrap().rows.rows(),
                6
            );
            // Combined with an integer predicate.
            let both = db
                .execute(&Query::scan("users").filter("id", CmpOp::Lt, 4).filter_str_eq("country", "de"))
                .unwrap();
            assert_eq!(both.rows.rows(), 2, "merged={merged}");
            // Wrong type errors cleanly.
            assert!(matches!(
                db.execute(&Query::scan("users").filter_str_eq("id", "de")),
                Err(DbError::TypeMismatch { .. })
            ));
        }
    }

    #[test]
    fn string_projection_reaches_client_as_codes() {
        let db = Database::new();
        db.create_table("users", &[("id", DataType::Int64), ("country", DataType::Str)]).unwrap();
        let countries = ["de", "us", "fr", "de", "de", "jp"];
        for i in 0..1200i64 {
            db.insert(
                "users",
                &Record::new().with("id", i).with("country", countries[i as usize % countries.len()]),
            )
            .unwrap();
        }
        db.merge("users").unwrap();
        // Post-merge delta rows: one value the global dictionary already
        // holds, one fresh (dictionary growth).
        db.insert("users", &Record::new().with("id", 1200i64).with("country", "de")).unwrap();
        db.insert("users", &Record::new().with("id", 1201i64).with("country", "br")).unwrap();
        let out = db.execute(&Query::scan("users").select(["country"])).unwrap();
        let col = out.rows.column("country").unwrap().as_str().unwrap();
        assert_eq!(col.len(), 1202);
        // Codes-to-client: one shared output dictionary, each distinct
        // value decoded once — across the main and delta code spaces.
        assert_eq!(col.dict_size(), 5, "de/us/fr/jp/br");
        assert_eq!(col.get(0), Some("de"));
        assert_eq!(col.get(1201), Some("br"));
        // The dense projection is billed: encoded code bytes + first-
        // touch dictionary entries + delta codes — real, but far below
        // the 8 B/row a decode-early string materialization would move.
        assert!(out.profile.dram_read.bytes() > 0, "projection reads must be billed");
        assert!(out.profile.dram_read.bytes() < 1202 * 8);
        // A filtered (sparse) projection still decodes correctly.
        let sparse =
            db.execute(&Query::scan("users").filter("id", CmpOp::Eq, 5).select(["country"])).unwrap();
        assert_eq!(sparse.rows.column("country").unwrap().as_str().unwrap().get(0), Some("jp"));
        assert_eq!(sparse.rows.column("country").unwrap().as_str().unwrap().dict_size(), 1);
    }

    #[test]
    fn parallel_scan_path_matches_serial() {
        // Above the threshold the scan runs segment-parallel (auto-merge
        // has produced multiple 64K segments by now); results must be
        // identical to the serial reference.
        let rows = (super::PARALLEL_SCAN_ROWS + 10_000) as i64;
        let db = Database::new();
        db.create_table("big", &[("v", DataType::Int64)]).unwrap();
        for i in 0..rows {
            db.insert("big", &Record::new().with("v", (i * 31) % 1000)).unwrap();
        }
        let t = db.table("big").unwrap();
        assert!(t.segments().len() > 1, "auto-merge should have built segments");
        let out = db.execute(&Query::scan("big").filter("v", CmpOp::Lt, 100)).unwrap();
        let expected = (0..rows).filter(|i| (i * 31) % 1000 < 100).count();
        assert_eq!(out.rows.rows(), expected);
        // Ordering preserved (segments are re-stitched in row order).
        let first_vals = out.rows.column("v").unwrap().as_int64().unwrap();
        let reference: Vec<i64> = (0..rows).map(|i| (i * 31) % 1000).filter(|&v| v < 100).take(32).collect();
        assert_eq!(&first_vals[..32], &reference[..]);
    }

    #[test]
    fn projection_skips_unprojected_columns() {
        // Same filter, narrower projection → strictly less energy
        // (fewer columns materialized and written).
        let wide = sample_db(50_000);
        let narrow = sample_db(50_000);
        let all = wide.execute(&Query::scan("orders").filter("amount", CmpOp::Lt, 60_000)).unwrap();
        let one = narrow
            .execute(&Query::scan("orders").filter("amount", CmpOp::Lt, 60_000).select(["id"]))
            .unwrap();
        assert_eq!(all.rows.rows(), one.rows.rows());
        assert!(one.energy.joules() < all.energy.joules());
    }

    #[test]
    fn compressed_scan_beats_flat_on_energy() {
        // The acceptance-criterion shape at unit-test scale: identical
        // data and query, merged (compressed, zone-mapped) vs flat
        // delta. Compressible data → fewer DRAM bytes → less energy.
        let rows = (SEGMENT_ROWS * 2) as i64;
        let mk = || {
            let db = Database::new();
            db.create_table("t", &[("ts", DataType::Int64), ("v", DataType::Int64)]).unwrap();
            db.set_merge_threshold("t", usize::MAX).unwrap();
            for i in 0..rows {
                db.insert("t", &Record::new().with("ts", 1_600_000_000 + i).with("v", i % 16)).unwrap();
            }
            db
        };
        let flat = mk();
        let merged = mk();
        merged.merge("t").unwrap();
        let q = Query::scan("t").filter("v", CmpOp::Lt, 4).aggregate(AggKind::Count, "v");
        let a = flat.execute(&q).unwrap();
        let b = merged.execute(&q).unwrap();
        assert_eq!(a.rows.row(0).unwrap()[0], b.rows.row(0).unwrap()[0]);
        assert!(
            b.energy.joules() < a.energy.joules(),
            "compressed scan {} J should beat flat {} J",
            b.energy.joules(),
            a.energy.joules()
        );
    }

    #[test]
    fn segment_aggregation_is_metered_and_zone_answered() {
        let db = sample_db(10_000);
        db.merge("orders").unwrap();
        // Pushed-down SUM streams the encoded column: nonzero decode
        // cycles and encoded-byte DRAM traffic must be billed…
        let sum = db.execute(&Query::scan("orders").aggregate(AggKind::Sum, "amount")).unwrap();
        let want: f64 = (0..10_000).map(|i| (i * 3) as f64).sum();
        assert_eq!(sum.rows.row(0).unwrap()[0].as_float(), Some(want));
        assert!(sum.profile.dram_read.bytes() > 0, "segment aggregation must bill DRAM traffic");
        assert!(sum.profile.cpu_cycles.count() > 0, "segment aggregation must bill decode cycles");
        // …but only the *encoded* bytes, never the flat 8 B/row the
        // gather path used to bill (amount = 3·i delta-encodes tightly).
        assert!(sum.profile.dram_read.bytes() < 10_000 * 8);
        // MIN/MAX over tautological segments answer from zone maps:
        // zero column bytes touched.
        for kind in [AggKind::Min, AggKind::Max, AggKind::Count] {
            let out = db.execute(&Query::scan("orders").aggregate(kind, "amount")).unwrap();
            assert_eq!(out.profile.dram_read.bytes(), 0, "{kind} should be zone-answered");
            assert!(out.energy.joules() < sum.energy.joules(), "{kind} must beat the streaming SUM");
        }
        let max = db.execute(&Query::scan("orders").aggregate(AggKind::Max, "amount")).unwrap();
        assert_eq!(max.rows.row(0).unwrap()[0].as_float(), Some(9_999.0 * 3.0));
    }

    #[test]
    fn grouped_pushdown_parallel_matches_serial() {
        // Above PARALLEL_SCAN_ROWS the aggregation dispatches segments as
        // morsels; answers must equal the small/serial reference shape.
        let rows = (super::PARALLEL_SCAN_ROWS + 5_000) as i64;
        let db = Database::new();
        db.create_table("big", &[("g", DataType::Int64), ("v", DataType::Int64)]).unwrap();
        for i in 0..rows {
            db.insert("big", &Record::new().with("g", i % 7).with("v", i % 100)).unwrap();
        }
        assert!(db.table("big").unwrap().segments().len() > 1);
        let out = db
            .execute(
                &Query::scan("big").filter("v", CmpOp::Lt, 50).group_by("g").aggregate(AggKind::Sum, "v"),
            )
            .unwrap();
        assert_eq!(out.rows.rows(), 7);
        for r in 0..7 {
            let g = out.rows.row(r).unwrap()[0].as_int().unwrap();
            let want: i64 = (0..rows).filter(|i| i % 7 == g && i % 100 < 50).map(|i| i % 100).sum();
            assert_eq!(out.rows.row(r).unwrap()[1].as_float(), Some(want as f64), "group {g}");
        }
    }

    #[test]
    fn group_by_string_column_on_dictionary_codes() {
        let db = Database::new();
        db.create_table("users", &[("country", DataType::Str), ("score", DataType::Int64)]).unwrap();
        let data = [("de", 10), ("us", 20), ("de", 30), ("fr", 5), ("us", 7), ("de", 2)];
        for (c, s) in data {
            db.insert("users", &Record::new().with("country", c).with("score", s as i64)).unwrap();
        }
        // Both storage forms, plus the mixed case with post-merge rows.
        for stage in 0..3 {
            if stage == 1 {
                db.merge("users").unwrap();
            }
            if stage == 2 {
                db.insert("users", &Record::new().with("country", "jp").with("score", 99i64)).unwrap();
                db.insert("users", &Record::new().with("country", "de").with("score", 1i64)).unwrap();
            }
            let out = db
                .execute(&Query::scan("users").group_by("country").aggregate(AggKind::Sum, "score"))
                .unwrap();
            let mut want = vec![("de", 42.0), ("fr", 5.0), ("us", 27.0)];
            if stage == 2 {
                want = vec![("de", 43.0), ("fr", 5.0), ("jp", 99.0), ("us", 27.0)];
            }
            assert_eq!(out.rows.rows(), want.len(), "stage {stage}");
            for (r, (c, s)) in want.iter().enumerate() {
                assert_eq!(out.rows.row(r).unwrap()[0], Value::Str(c.to_string()), "stage {stage}");
                assert_eq!(out.rows.row(r).unwrap()[1].as_float(), Some(*s), "stage {stage}");
            }
        }
        // Grouping on a float column stays an error.
        let fdb = Database::new();
        fdb.create_table("t", &[("f", DataType::Float64), ("v", DataType::Int64)]).unwrap();
        assert!(matches!(
            fdb.execute(&Query::scan("t").group_by("f").aggregate(AggKind::Sum, "v")),
            Err(DbError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn create_index_backfill_is_metered() {
        let db = sample_db(5_000);
        db.merge("orders").unwrap();
        let before = db.meter().grand_total();
        db.create_index("orders", "id", IndexMaintenance::Eager).unwrap();
        assert!(db.meter().grand_total().joules() > before.joules(), "index backfill must charge the meter");
    }

    #[test]
    fn insert_bills_string_payload_bytes() {
        let db = Database::new();
        db.create_table("t", &[("s", DataType::Str)]).unwrap();
        db.insert("t", &Record::new().with("s", "x")).unwrap();
        let short = db.meter().grand_total().joules();
        db.insert("t", &Record::new().with("s", "x".repeat(10_000).as_str())).unwrap();
        let long = db.meter().grand_total().joules() - short;
        assert!(long > short, "a 10 KB string must cost more to ingest than one byte");
    }

    /// A two-table schema for join tests: a small dimension table and a
    /// larger fact table, with both int and string join keys.
    fn join_dbs(users: i64, orders: i64) -> Database {
        let db = Database::new();
        db.create_table("users", &[("uid", DataType::Int64), ("country", DataType::Str)]).unwrap();
        db.create_table(
            "orders",
            &[("user_id", DataType::Int64), ("amount", DataType::Int64), ("country", DataType::Str)],
        )
        .unwrap();
        let countries = ["de", "us", "fr", "jp"];
        for i in 0..users {
            db.insert(
                "users",
                &Record::new().with("uid", i).with("country", countries[i as usize % countries.len()]),
            )
            .unwrap();
        }
        for i in 0..orders {
            db.insert(
                "orders",
                &Record::new()
                    .with("user_id", i % (users * 2).max(1)) // half the orders dangle
                    .with("amount", i * 3)
                    .with("country", countries[(i as usize / 2) % countries.len()]),
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn join_int_keys_matches_nested_loop_across_layouts() {
        let q = Query::scan("orders")
            .join("users", "user_id", "uid")
            .filter("amount", CmpOp::Lt, 120)
            .select(["user_id", "amount", "users.country"]);
        let reference: Vec<(i64, i64, &str)> = (0..100i64)
            .map(|i| (i % 80, i * 3))
            .filter(|&(_, amt)| amt < 120)
            .filter(|&(uid, _)| uid < 40)
            .map(|(uid, amt)| (uid, amt, ["de", "us", "fr", "jp"][uid as usize % 4]))
            .collect();
        // Flat, fully merged, and mixed main/delta on both tables.
        for stage in 0..3 {
            let db = join_dbs(40, 100);
            if stage >= 1 {
                db.merge("users").unwrap();
                db.merge("orders").unwrap();
            }
            if stage == 2 {
                db.insert(
                    "orders",
                    &Record::new().with("user_id", 5i64).with("amount", 7i64).with("country", "de"),
                )
                .unwrap();
            }
            let out = db.execute(&q).unwrap();
            let mut got: Vec<(i64, i64, Value)> = (0..out.rows.rows())
                .map(|r| {
                    let row = out.rows.row(r).unwrap();
                    (row[0].as_int().unwrap(), row[1].as_int().unwrap(), row[2].clone())
                })
                .collect();
            let mut want: Vec<(i64, i64, Value)> =
                reference.iter().map(|&(u, a, c)| (u, a, Value::Str(c.to_string()))).collect();
            if stage == 2 {
                want.push((5, 7, Value::Str("us".into()))); // uid 5 % 4 = 1 → "us"
            }
            let key = |v: &(i64, i64, Value)| (v.0, v.1, format!("{:?}", v.2));
            got.sort_by_key(key);
            want.sort_by_key(key);
            assert_eq!(got, want, "stage {stage}");
            assert!(out.energy.joules() > 0.0);
        }
    }

    #[test]
    fn join_string_keys_code_to_code() {
        // Join on the string column: codes remap across the two tables'
        // dictionaries (interned in different orders), including values
        // fresh in one side's delta.
        let db = join_dbs(8, 40);
        db.merge("users").unwrap();
        db.merge("orders").unwrap();
        // Fresh post-merge values on both sides: "br" only joins via the
        // delta-fresh key space; "zz" must join with nothing.
        db.insert("users", &Record::new().with("uid", 100i64).with("country", "br")).unwrap();
        db.insert("orders", &Record::new().with("user_id", 0i64).with("amount", 1i64).with("country", "br"))
            .unwrap();
        db.insert("orders", &Record::new().with("user_id", 0i64).with("amount", 2i64).with("country", "zz"))
            .unwrap();
        let q = Query::scan("users").join("orders", "country", "country").select(["uid", "orders.amount"]);
        let out = db.execute(&q).unwrap();
        // Reference nested loop over the decoded tables.
        let users = db.table("users").unwrap().to_chunk();
        let orders = db.table("orders").unwrap().to_chunk();
        let mut want = Vec::new();
        for u in 0..users.rows() {
            for o in 0..orders.rows() {
                if users.row(u).unwrap()[1] == orders.row(o).unwrap()[2] {
                    want.push((
                        users.row(u).unwrap()[0].as_int().unwrap(),
                        orders.row(o).unwrap()[1].as_int().unwrap(),
                    ));
                }
            }
        }
        let mut got: Vec<(i64, i64)> = (0..out.rows.rows())
            .map(|r| {
                let row = out.rows.row(r).unwrap();
                (row[0].as_int().unwrap(), row[1].as_int().unwrap())
            })
            .collect();
        got.sort_unstable();
        want.sort_unstable();
        assert!(want.iter().any(|&(u, _)| u == 100), "delta-fresh key must join");
        assert_eq!(got, want);
    }

    #[test]
    fn join_on_compressed_segments_never_decodes_keys() {
        // The acceptance criterion: joining two merged tables must not
        // decode the key columns — the billed DRAM traffic stays below
        // what the flat 8 B/row keys alone would cost.
        let rows = 2 * SEGMENT_ROWS as i64;
        let dim = 1024i64;
        let db = Database::new();
        db.create_table("d", &[("k", DataType::Int64), ("tag", DataType::Str)]).unwrap();
        db.create_table("f", &[("fk", DataType::Int64), ("v", DataType::Int64)]).unwrap();
        db.set_merge_threshold("d", usize::MAX).unwrap();
        db.set_merge_threshold("f", usize::MAX).unwrap();
        for i in 0..dim {
            db.insert("d", &Record::new().with("k", i).with("tag", if i % 2 == 0 { "a" } else { "b" }))
                .unwrap();
        }
        for i in 0..rows {
            db.insert("f", &Record::new().with("fk", i % dim).with("v", i)).unwrap();
        }
        db.merge("d").unwrap();
        db.merge("f").unwrap();
        let q = Query::scan("f")
            .join("d", "fk", "k")
            .filter("v", CmpOp::Lt, 64) // keep the gather small
            .select(["fk", "v", "d.tag"]);
        let out = db.execute(&q).unwrap();
        assert_eq!(out.rows.rows(), 64);
        let flat_key_bytes = ((rows + dim) * 8) as u64;
        assert!(
            out.profile.dram_read.bytes() < flat_key_bytes,
            "join billed {} B but flat keys alone would be {} B — keys were decoded",
            out.profile.dram_read.bytes(),
            flat_key_bytes
        );
        assert!(out.profile.cpu_cycles.count() > 0);
    }

    #[test]
    fn join_zone_pruning_skips_probe_segments() {
        // Sorted fact keys split over 4 segments; a dimension covering
        // only the first quarter must leave 3 probe segments untouched,
        // which shows up directly in the bytes billed.
        let mk = |dim_hi: i64| {
            let db = Database::new();
            db.create_table("d", &[("k", DataType::Int64)]).unwrap();
            db.create_table("f", &[("fk", DataType::Int64), ("v", DataType::Int64)]).unwrap();
            db.set_merge_threshold("d", usize::MAX).unwrap();
            db.set_merge_threshold("f", usize::MAX).unwrap();
            for i in 0..dim_hi {
                db.insert("d", &Record::new().with("k", i * 97)).unwrap();
            }
            db.merge("d").unwrap();
            for i in 0..1000i64 {
                db.insert("f", &Record::new().with("fk", i).with("v", i)).unwrap();
                if (i + 1) % 250 == 0 {
                    db.merge("f").unwrap();
                }
            }
            db
        };
        let q = Query::scan("f").join("d", "fk", "k").select(["fk"]);
        let narrow = mk(2); // keys {0, 97}: only segment 1 of f can match
        let broad = mk(11); // keys up to 970: every segment survives
        let n = narrow.execute(&q).unwrap();
        let b = broad.execute(&q).unwrap();
        assert_eq!(n.rows.rows(), 2);
        assert_eq!(b.rows.rows(), 11);
        assert!(
            n.profile.dram_read.bytes() < b.profile.dram_read.bytes(),
            "pruned probe ({} B) must read less than the broad one ({} B)",
            n.profile.dram_read.bytes(),
            b.profile.dram_read.bytes()
        );
        assert!(n.energy.joules() < b.energy.joules());
    }

    #[test]
    fn join_with_filters_on_both_sides_and_self_join() {
        let db = join_dbs(40, 100);
        db.merge("users").unwrap();
        let out = db
            .execute(
                &Query::scan("orders")
                    .join("users", "user_id", "uid")
                    .filter("amount", CmpOp::Lt, 150)
                    .join_filter("uid", CmpOp::Lt, 10)
                    .join_filter_str_ne("country", "us")
                    .select(["user_id", "users.country"]),
            )
            .unwrap();
        let want = (0..50i64) // amount = i*3 < 150
            .map(|i| i % 80)
            .filter(|&u| u < 10 && u % 4 != 1)
            .count();
        assert_eq!(out.rows.rows(), want);
        // Self-join: every user pairs with the users sharing its
        // country; the default projection keeps both sides' columns
        // apart (left bare, right prefixed).
        let selfj = db.execute(&Query::scan("users").join("users", "country", "country")).unwrap();
        assert_eq!(selfj.rows.rows(), 40 * 10, "40 users, 10 per country");
        assert_eq!(
            selfj.rows.names(),
            vec!["uid", "country", "users.uid", "users.country"],
            "self-join output columns stay distinguishable"
        );
        // Empty sides: a filter matching nothing yields an empty, well-
        // shaped result.
        let empty = db
            .execute(&Query::scan("orders").join("users", "user_id", "uid").filter("amount", CmpOp::Lt, -1))
            .unwrap();
        assert_eq!(empty.rows.rows(), 0);
        assert_eq!(empty.rows.width(), 5, "all left + prefixed right columns");
    }

    #[test]
    fn join_extreme_int_keys_survive() {
        // i64::MIN is a legitimate integer join key, not the string
        // NO_KEY sentinel — it must join on every storage layout.
        for merged in [false, true] {
            let db = Database::new();
            db.create_table("a", &[("k", DataType::Int64), ("v", DataType::Int64)]).unwrap();
            db.create_table("b", &[("k", DataType::Int64), ("w", DataType::Int64)]).unwrap();
            for (k, v) in [(i64::MIN, 1i64), (-1, 2), (0, 3), (i64::MAX, 4)] {
                db.insert("a", &Record::new().with("k", k).with("v", v)).unwrap();
            }
            for (k, w) in [(i64::MAX, 10i64), (i64::MIN, 20)] {
                db.insert("b", &Record::new().with("k", k).with("w", w)).unwrap();
            }
            if merged {
                db.merge("a").unwrap();
                db.merge("b").unwrap();
            }
            let out = db.execute(&Query::scan("a").join("b", "k", "k").select(["v", "b.w"])).unwrap();
            let mut got: Vec<(i64, i64)> = (0..out.rows.rows())
                .map(|r| {
                    let row = out.rows.row(r).unwrap();
                    (row[0].as_int().unwrap(), row[1].as_int().unwrap())
                })
                .collect();
            got.sort_unstable();
            assert_eq!(got, vec![(1, 20), (4, 10)], "merged={merged}");
        }
    }

    #[test]
    fn self_join_qualified_select_means_right_side() {
        // Employee → boss self-join: "u.uid" must name the RIGHT
        // occurrence (the boss), exactly as the default projection
        // labels it.
        let db = Database::new();
        db.create_table("u", &[("uid", DataType::Int64), ("boss", DataType::Int64)]).unwrap();
        db.insert("u", &Record::new().with("uid", 1i64).with("boss", 2i64)).unwrap();
        db.insert("u", &Record::new().with("uid", 2i64).with("boss", 2i64)).unwrap();
        let out = db
            .execute(
                &Query::scan("u")
                    .join("u", "boss", "uid")
                    .filter("uid", CmpOp::Eq, 1)
                    .select(["uid", "u.uid"]),
            )
            .unwrap();
        assert_eq!(out.rows.rows(), 1);
        let row = out.rows.row(0).unwrap();
        assert_eq!(row[0].as_int(), Some(1), "bare name = left side (the employee)");
        assert_eq!(row[1].as_int(), Some(2), "qualified name = right side (the boss)");
    }

    #[test]
    fn join_goal_and_algorithms_agree() {
        // MinEnergy may pick a different algorithm; answers must not
        // change.
        let q = Query::scan("orders").join("users", "user_id", "uid").select(["amount"]);
        let a = join_dbs(30, 500);
        let b = join_dbs(30, 500);
        b.set_goal(Goal::MinEnergy);
        let ra = a.execute(&q).unwrap();
        let rb = b.execute(&q).unwrap();
        let sorted = |r: &QueryResult| {
            let mut v: Vec<i64> =
                (0..r.rows.rows()).map(|i| r.rows.row(i).unwrap()[0].as_int().unwrap()).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sorted(&ra), sorted(&rb));
    }

    #[test]
    #[should_panic(expected = "only one join stage")]
    fn second_join_stage_is_rejected() {
        let _ = Query::scan("a").join("b", "k", "k").join("c", "k", "k");
    }

    #[test]
    fn join_error_paths() {
        let db = join_dbs(4, 8);
        assert!(matches!(
            db.execute(&Query::scan("orders").join("nope", "user_id", "uid")),
            Err(DbError::NoSuchTable(_))
        ));
        assert!(matches!(
            db.execute(&Query::scan("orders").join("users", "ghost", "uid")),
            Err(DbError::NoSuchColumn { .. })
        ));
        assert!(matches!(
            db.execute(&Query::scan("orders").join("users", "user_id", "country")),
            Err(DbError::TypeMismatch { .. })
        ));
        assert!(matches!(
            db.execute(
                &Query::scan("orders").join("users", "user_id", "uid").aggregate(AggKind::Sum, "amount")
            ),
            Err(DbError::BadQuery(_))
        ));
        assert!(matches!(
            db.execute(&Query::scan("orders").join("users", "user_id", "uid").select(["ghost"])),
            Err(DbError::NoSuchColumn { .. })
        ));
    }

    #[test]
    fn grouped_pushdown_skips_hashing_on_collapsed_zones() {
        // Group key constant within every segment (sorted inserts): the
        // pushdown folds each segment into a single state without
        // reading the key column at all — the billed traffic stays at
        // the value column's encoded bytes.
        let db = Database::new();
        db.create_table("t", &[("g", DataType::Int64), ("v", DataType::Int64)]).unwrap();
        db.set_merge_threshold("t", usize::MAX).unwrap();
        let per = SEGMENT_ROWS as i64;
        for i in 0..2 * per {
            db.insert("t", &Record::new().with("g", i / per).with("v", (i % per) % 1000)).unwrap();
        }
        db.merge("t").unwrap();
        let out = db.execute(&Query::scan("t").group_by("g").aggregate(AggKind::Sum, "v")).unwrap();
        assert_eq!(out.rows.rows(), 2);
        for r in 0..2 {
            let g = out.rows.row(r).unwrap()[0].as_int().unwrap();
            let want: i64 = (0..per).map(|i| i % 1000).sum();
            assert_eq!(out.rows.row(r).unwrap()[1].as_float(), Some(want as f64), "group {g}");
        }
        let t = db.table("t").unwrap();
        let value_bytes = t.column_encoded_bytes("v").unwrap() as u64;
        let key_bytes = t.column_encoded_bytes("g").unwrap() as u64;
        assert!(key_bytes > 0);
        assert!(
            out.profile.dram_read.bytes() <= value_bytes,
            "collapsed-zone group-by billed {} B; value column is {} B — key bytes were read",
            out.profile.dram_read.bytes(),
            value_bytes
        );
        // MIN with collapsed zones is answered entirely from metadata.
        let min = db.execute(&Query::scan("t").group_by("g").aggregate(AggKind::Min, "v")).unwrap();
        assert_eq!(min.profile.dram_read.bytes(), 0, "zone-answered grouped MIN reads no bytes");
    }

    #[test]
    fn flexible_ingest_then_query() {
        let db = Database::new();
        db.create_flexible_table("events").unwrap();
        db.insert("events", &Record::new().with("user", 1i64)).unwrap();
        db.insert("events", &Record::new().with("user", 2i64).with("clicks", 5i64)).unwrap();
        let out = db.execute(&Query::scan("events").filter("user", CmpOp::Gt, 0)).unwrap();
        assert_eq!(out.rows.rows(), 2);
        assert_eq!(db.table("events").unwrap().schema().evolved_columns(), 2);
    }

    #[test]
    fn flexible_evolution_across_merges_queries_consistently() {
        let db = Database::new();
        db.create_flexible_table("events").unwrap();
        for i in 0..100i64 {
            db.insert("events", &Record::new().with("user", i)).unwrap();
        }
        db.merge("events").unwrap();
        for i in 100..200i64 {
            db.insert("events", &Record::new().with("user", i).with("clicks", i % 7)).unwrap();
        }
        // Pre-merge rows read clicks as sentinel 0.
        let zero = db.execute(&Query::scan("events").filter("clicks", CmpOp::Eq, 0)).unwrap();
        let expected = 100 + (100..200).filter(|i| i % 7 == 0).count();
        assert_eq!(zero.rows.rows(), expected);
        db.merge("events").unwrap();
        let zero2 = db.execute(&Query::scan("events").filter("clicks", CmpOp::Eq, 0)).unwrap();
        assert_eq!(zero2.rows.rows(), expected);
    }
}
