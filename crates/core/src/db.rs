//! The `haecdb` facade: tables, indexes, and the energy-metered query
//! path.
//!
//! Every query is planned with the dual-objective cost model (index vs
//! scan per the session [`Goal`]), executed with the adaptive vectorized
//! kernels, and charged to the database's [`EnergyMeter`] — making
//! "energy per query" a first-class observable, as the paper demands.

use crate::error::{DbError, DbResult};
use crate::index::{IndexMaintenance, IndexStats, SecondaryIndex};
use crate::schema::{Record, TableSchema};
use crate::table::Table;
use haec_columnar::chunk::Chunk;
use haec_columnar::column::Column;
use haec_columnar::value::{CmpOp, DataType, Value};
use haec_energy::calibrate::{Kernel, KernelCosts};
use haec_energy::machine::MachineSpec;
use haec_energy::meter::EnergyMeter;
use haec_energy::profile::{CostEstimator, ExecutionContext, ResourceProfile};
use haec_energy::units::{ByteCount, Joules};
use haec_exec::agg::{group_aggregate, AggKind, AggState};
use haec_exec::morsel::parallel_morsels;
use haec_exec::select::{select_metered, select_positions, SelectKernel};
use haec_planner::access::{choose_access, AccessPath};
use haec_planner::cost::CostModel;
use haec_planner::optimizer::{choose, Goal};
use std::collections::HashMap;
use std::time::Duration;

/// One conjunct of a query's WHERE clause (integer columns).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Filter {
    /// Column name.
    pub column: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal operand.
    pub literal: i64,
}

/// An equality predicate on a dictionary-encoded string column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StrFilter {
    /// Column name.
    pub column: String,
    /// The value rows must equal (`negated` flips to `<>`).
    pub value: String,
    /// `true` for `<>`, `false` for `=`.
    pub negated: bool,
}

/// A declarative query against one table.
///
/// ```
/// use haecdb::db::Query;
/// use haec_columnar::value::CmpOp;
/// use haec_exec::agg::AggKind;
/// let q = Query::scan("orders")
///     .filter("amount", CmpOp::Ge, 100)
///     .filter_str_eq("country", "de")
///     .group_by("region")
///     .aggregate(AggKind::Sum, "amount");
/// assert_eq!(q.table(), "orders");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    table: String,
    filters: Vec<Filter>,
    str_filters: Vec<StrFilter>,
    group_by: Option<String>,
    agg: Option<(AggKind, String)>,
    select: Option<Vec<String>>,
}

impl Query {
    /// Starts a query over `table`.
    pub fn scan(table: impl Into<String>) -> Self {
        Query {
            table: table.into(),
            filters: Vec::new(),
            str_filters: Vec::new(),
            group_by: None,
            agg: None,
            select: None,
        }
    }

    /// Adds a conjunctive integer predicate.
    pub fn filter(mut self, column: impl Into<String>, op: CmpOp, literal: i64) -> Self {
        self.filters.push(Filter { column: column.into(), op, literal });
        self
    }

    /// Adds a conjunctive string-equality predicate (evaluated on
    /// dictionary codes, never on the strings themselves).
    pub fn filter_str_eq(mut self, column: impl Into<String>, value: impl Into<String>) -> Self {
        self.str_filters.push(StrFilter { column: column.into(), value: value.into(), negated: false });
        self
    }

    /// Adds a conjunctive string-inequality predicate.
    pub fn filter_str_ne(mut self, column: impl Into<String>, value: impl Into<String>) -> Self {
        self.str_filters.push(StrFilter { column: column.into(), value: value.into(), negated: true });
        self
    }

    /// Groups by an integer column.
    pub fn group_by(mut self, column: impl Into<String>) -> Self {
        self.group_by = Some(column.into());
        self
    }

    /// Aggregates `column` with `kind`.
    pub fn aggregate(mut self, kind: AggKind, column: impl Into<String>) -> Self {
        self.agg = Some((kind, column.into()));
        self
    }

    /// Restricts output columns (ignored when aggregating).
    pub fn select<I, S>(mut self, columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.select = Some(columns.into_iter().map(Into::into).collect());
        self
    }

    /// The queried table.
    pub fn table(&self) -> &str {
        &self.table
    }
}

/// Row-count threshold above which filters run morsel-parallel on real
/// threads instead of single-threaded.
pub const PARALLEL_SCAN_ROWS: usize = 262_144;

/// The outcome of a query: rows plus full metering.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The result rows.
    pub rows: Chunk,
    /// Modelled energy charged for this query.
    pub energy: Joules,
    /// Modelled execution time.
    pub modeled_time: Duration,
    /// Measured wall time of the real execution.
    pub wall_time: Duration,
    /// The access path taken for the first indexable predicate.
    pub access_path: Option<AccessPath>,
}

/// The in-memory, energy-metered database.
///
/// ```
/// use haecdb::prelude::*;
///
/// let mut db = Database::new();
/// db.create_table("t", &[("k", DataType::Int64), ("v", DataType::Int64)])?;
/// db.insert("t", &Record::new().with("k", 1i64).with("v", 10i64))?;
/// db.insert("t", &Record::new().with("k", 2i64).with("v", 20i64))?;
/// let out = db.execute(&Query::scan("t").filter("v", CmpOp::Gt, 15))?;
/// assert_eq!(out.rows.rows(), 1);
/// assert!(out.energy.joules() > 0.0);
/// # Ok::<(), haecdb::error::DbError>(())
/// ```
#[derive(Debug)]
pub struct Database {
    machine: MachineSpec,
    estimator: CostEstimator,
    costs: KernelCosts,
    meter: EnergyMeter,
    tables: HashMap<String, Table>,
    indexes: HashMap<(String, String), SecondaryIndex>,
    goal: Goal,
}

impl Database {
    /// Creates a database on the default 2013 commodity machine model.
    pub fn new() -> Self {
        Database::with_machine(MachineSpec::commodity_2013())
    }

    /// Creates a database over an explicit machine model.
    pub fn with_machine(machine: MachineSpec) -> Self {
        Database {
            estimator: CostEstimator::new(machine.clone()),
            machine,
            costs: KernelCosts::default_2013(),
            meter: EnergyMeter::new(),
            tables: HashMap::new(),
            indexes: HashMap::new(),
            goal: Goal::MinTime,
        }
    }

    /// Sets the session optimization goal (Fig. 2's knob).
    pub fn set_goal(&mut self, goal: Goal) {
        self.goal = goal;
    }

    /// The session goal.
    pub fn goal(&self) -> Goal {
        self.goal
    }

    /// The machine model.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// The cumulative energy meter.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Creates a strict-schema table.
    ///
    /// # Errors
    ///
    /// [`DbError::TableExists`] on name collisions.
    pub fn create_table(&mut self, name: &str, columns: &[(&str, DataType)]) -> DbResult<()> {
        if self.tables.contains_key(name) {
            return Err(DbError::TableExists(name.to_string()));
        }
        let schema = TableSchema::strict(columns.iter().map(|(n, t)| (n.to_string(), *t)).collect());
        self.tables.insert(name.to_string(), Table::new(name, schema));
        Ok(())
    }

    /// Creates a flexible-schema ("data first") table.
    ///
    /// # Errors
    ///
    /// [`DbError::TableExists`] on name collisions.
    pub fn create_flexible_table(&mut self, name: &str) -> DbResult<()> {
        if self.tables.contains_key(name) {
            return Err(DbError::TableExists(name.to_string()));
        }
        self.tables.insert(name.to_string(), Table::new(name, TableSchema::flexible()));
        Ok(())
    }

    /// Looks a table up.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Inserts one record, maintaining indexes per their discipline.
    ///
    /// # Errors
    ///
    /// Propagates schema violations; unknown table is
    /// [`DbError::NoSuchTable`].
    pub fn insert(&mut self, table: &str, record: &Record) -> DbResult<()> {
        let t = self.tables.get_mut(table).ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        let row = t.rows() as u32;
        t.insert(record)?;
        // Feed indexes on this table.
        for ((tname, col), idx) in self.indexes.iter_mut() {
            if tname == table {
                if let Some(Value::Int(key)) = record.get(col) {
                    idx.on_insert(*key, row);
                }
            }
        }
        // Charge ingestion: one materialize per field.
        let profile = ResourceProfile {
            cpu_cycles: self.costs.cycles_for(Kernel::Materialize, record.len() as u64),
            dram_written: ByteCount::new(record.len() as u64 * 8),
            ..ResourceProfile::default()
        };
        self.estimator.charge(&profile, self.exec_ctx(), &mut self.meter);
        Ok(())
    }

    /// Creates a hash index on an integer column, backfilling existing
    /// rows under the chosen maintenance discipline.
    ///
    /// # Errors
    ///
    /// Unknown table/column errors.
    pub fn create_index(&mut self, table: &str, column: &str, maintenance: IndexMaintenance) -> DbResult<()> {
        let t = self.tables.get(table).ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        let col = t.column(column).ok_or_else(|| DbError::NoSuchColumn {
            table: table.to_string(),
            column: column.to_string(),
        })?;
        let data = col.as_int64().ok_or_else(|| DbError::TypeMismatch {
            column: column.to_string(),
            expected: DataType::Int64,
        })?;
        let mut idx = SecondaryIndex::new(maintenance);
        for (row, &key) in data.iter().enumerate() {
            idx.on_insert(key, row as u32);
        }
        self.indexes.insert((table.to_string(), column.to_string()), idx);
        Ok(())
    }

    /// Work counters of an index.
    pub fn index_stats(&self, table: &str, column: &str) -> Option<IndexStats> {
        self.indexes.get(&(table.to_string(), column.to_string())).map(|i| i.stats())
    }

    fn exec_ctx(&self) -> ExecutionContext {
        ExecutionContext::parallel(self.machine.pstates().fastest(), self.machine.cores())
    }

    /// Executes a query, charging its energy to the meter.
    ///
    /// # Errors
    ///
    /// Unknown tables/columns, type mismatches, and malformed queries.
    pub fn execute(&mut self, query: &Query) -> DbResult<QueryResult> {
        let started = std::time::Instant::now();
        let t = self
            .tables
            .get(&query.table)
            .ok_or_else(|| DbError::NoSuchTable(query.table.clone()))?;
        let total_rows = t.rows();
        let mut profile = ResourceProfile::default();
        let mut access_path = None;

        // --- access path for the first filter -------------------------
        let mut positions: Option<Vec<u32>> = None;
        let mut remaining: &[Filter] = &query.filters;
        if let Some(first) = query.filters.first() {
            let key = (query.table.clone(), first.column.clone());
            if self.indexes.contains_key(&key) && first.op == CmpOp::Eq {
                // Cost both paths, pick per the session goal.
                let mut meta = t.planner_meta();
                if let Some(c) = meta.columns.iter_mut().find(|c| c.name == first.column) {
                    c.indexed = true;
                }
                let model = CostModel::new(self.machine.clone()).with_kernel_costs(self.costs.clone());
                let decision = choose_access(&model, &meta, &first.column, first.op, first.literal);
                let candidates = [
                    decision.scan_cost,
                    decision.index_cost.unwrap_or(decision.scan_cost),
                ];
                let planner_costs = [
                    haec_planner::cost::PlanCost { time: candidates[0].time, energy: candidates[0].energy },
                    haec_planner::cost::PlanCost { time: candidates[1].time, energy: candidates[1].energy },
                ];
                let pick = choose(&planner_costs, self.goal).unwrap_or(0);
                if pick == 1 && decision.index_cost.is_some() {
                    let idx = self.indexes.get_mut(&key).expect("checked above");
                    let mut rows = idx.lookup(first.literal);
                    rows.sort_unstable();
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::IndexLookup, rows.len().max(1) as u64);
                    profile.dram_read += ByteCount::new(rows.len() as u64 * 128 + 128);
                    positions = Some(rows);
                    access_path = Some(AccessPath::IndexLookup);
                    remaining = &query.filters[1..];
                } else {
                    access_path = Some(AccessPath::FullScan);
                }
            }
        }
        let t = self.tables.get(&query.table).expect("still present");

        // --- remaining filters: vectorized scans (or point re-checks) --
        for f in remaining {
            let col = t.column(&f.column).ok_or_else(|| DbError::NoSuchColumn {
                table: query.table.clone(),
                column: f.column.clone(),
            })?;
            let data = col.as_int64().ok_or_else(|| DbError::TypeMismatch {
                column: f.column.clone(),
                expected: DataType::Int64,
            })?;
            match &mut positions {
                Some(pos) if pos.len() * 8 < total_rows => {
                    // Few candidates: re-check per position.
                    pos.retain(|&p| f.op.eval(data[p as usize], f.literal));
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::SelectPredicated, pos.len() as u64);
                    profile.dram_read += ByteCount::new(pos.len() as u64 * 8);
                }
                _ => {
                    let hits = if data.len() >= PARALLEL_SCAN_ROWS {
                        // Morsel-driven parallel scan over real threads.
                        let threads = std::thread::available_parallelism()
                            .map(|n| n.get())
                            .unwrap_or(1)
                            .min(self.machine.cores());
                        let mut parts = parallel_morsels(
                            data.len(),
                            threads,
                            64 * 1024,
                            |m| {
                                let local = select_positions(&data[m.start..m.end], f.op, f.literal, SelectKernel::Bitwise);
                                vec![(m.start, local)]
                            },
                            |mut a, b| {
                                a.extend(b);
                                a
                            },
                            Vec::new(),
                        );
                        parts.sort_unstable_by_key(|&(start, _)| start);
                        let mut out = Vec::new();
                        for (start, local) in parts {
                            out.extend(local.into_iter().map(|p| p + start as u32));
                        }
                        profile.cpu_cycles += self.costs.cycles_for(Kernel::SelectBitwise, data.len() as u64);
                        profile.dram_read += ByteCount::new(data.len() as u64 * 8);
                        out
                    } else {
                        let (hits, stats) = select_metered(data, f.op, f.literal, SelectKernel::Bitwise, &self.costs);
                        profile += stats.profile;
                        hits
                    };
                    positions = Some(match positions.take() {
                        None => hits,
                        Some(prev) => haec_exec::select::intersect_positions(&prev, &hits),
                    });
                }
            }
        }

        // --- string predicates: evaluated on dictionary codes ----------
        for f in &query.str_filters {
            let col = t.column(&f.column).ok_or_else(|| DbError::NoSuchColumn {
                table: query.table.clone(),
                column: f.column.clone(),
            })?;
            let dict = col.as_str().ok_or_else(|| DbError::TypeMismatch {
                column: f.column.clone(),
                expected: DataType::Str,
            })?;
            let code = dict.code_of(&f.value);
            let codes = dict.codes();
            profile.cpu_cycles += self.costs.cycles_for(Kernel::SelectBitwise, codes.len() as u64);
            profile.dram_read += ByteCount::new(codes.len() as u64 * 4);
            let keep = |row: usize| -> bool {
                match code {
                    Some(c) => (codes[row] == c) != f.negated,
                    // Value never interned: `=` matches nothing, `<>` everything.
                    None => f.negated,
                }
            };
            positions = Some(match positions.take() {
                Some(mut pos) => {
                    pos.retain(|&p| keep(p as usize));
                    pos
                }
                None => (0..codes.len()).filter(|&i| keep(i)).map(|i| i as u32).collect(),
            });
        }

        // --- aggregation / projection ---------------------------------
        let out = match (&query.group_by, &query.agg) {
            (Some(_), None) => {
                return Err(DbError::BadQuery("group_by requires an aggregate".into()))
            }
            (None, None) => {
                let pos_vec: Vec<usize> = match &positions {
                    Some(p) => p.iter().map(|&x| x as usize).collect(),
                    None => (0..total_rows).collect(),
                };
                let chunk = t.to_chunk();
                let gathered = chunk.gather(&pos_vec);
                profile.cpu_cycles += self.costs.cycles_for(Kernel::Materialize, pos_vec.len() as u64);
                profile.dram_written += ByteCount::new(gathered.size_bytes() as u64);
                match &query.select {
                    None => gathered,
                    Some(cols) => {
                        let mut selected = Vec::with_capacity(cols.len());
                        for c in cols {
                            let col = gathered.column(c).ok_or_else(|| DbError::NoSuchColumn {
                                table: query.table.clone(),
                                column: c.clone(),
                            })?;
                            selected.push((c.clone(), col.clone()));
                        }
                        Chunk::new(selected).expect("gathered columns are equal length")
                    }
                }
            }
            (group, Some((kind, value_col))) => {
                let values = int_column(t, &query.table, value_col)?;
                let gathered_values: Vec<i64> = match &positions {
                    Some(p) => p.iter().map(|&i| values[i as usize]).collect(),
                    None => values.to_vec(),
                };
                profile.cpu_cycles += self.costs.cycles_for(Kernel::AggUpdate, gathered_values.len() as u64);
                profile.dram_read += ByteCount::new(gathered_values.len() as u64 * 8);
                match group {
                    None => {
                        let mut st = AggState::empty();
                        for &v in &gathered_values {
                            st.update(v);
                        }
                        let result = st.value(*kind).unwrap_or(f64::NAN);
                        Chunk::new(vec![(
                            format!("{kind}({value_col})"),
                            vec![result].into_iter().collect::<Column>(),
                        )])
                        .expect("one column")
                    }
                    Some(gcol) => {
                        let keys = int_column(t, &query.table, gcol)?;
                        let gathered_keys: Vec<i64> = match &positions {
                            Some(p) => p.iter().map(|&i| keys[i as usize]).collect(),
                            None => keys.to_vec(),
                        };
                        profile.cpu_cycles +=
                            self.costs.cycles_for(Kernel::HashProbe, gathered_keys.len() as u64);
                        let grouped = group_aggregate(&gathered_keys, &gathered_values);
                        let key_col: Column =
                            grouped.iter().map(|&(k, _)| k).collect::<Vec<i64>>().into_iter().collect();
                        let val_col: Column = grouped
                            .iter()
                            .map(|(_, s)| s.value(*kind).unwrap_or(f64::NAN))
                            .collect::<Vec<f64>>()
                            .into_iter()
                            .collect();
                        Chunk::new(vec![(gcol.clone(), key_col), (format!("{kind}({value_col})"), val_col)])
                            .expect("two columns")
                    }
                }
            }
        };

        // --- metering ---------------------------------------------------
        let before = self.meter.snapshot();
        let est = self.estimator.charge(&profile, self.exec_ctx(), &mut self.meter);
        let delta = self.meter.since(&before);
        Ok(QueryResult {
            rows: out,
            energy: delta.grand_total(),
            modeled_time: est.time,
            wall_time: started.elapsed(),
            access_path,
        })
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

fn int_column<'t>(t: &'t Table, table: &str, name: &str) -> DbResult<&'t [i64]> {
    t.column(name)
        .ok_or_else(|| DbError::NoSuchColumn { table: table.to_string(), column: name.to_string() })?
        .as_int64()
        .ok_or_else(|| DbError::TypeMismatch { column: name.to_string(), expected: DataType::Int64 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db(rows: i64) -> Database {
        let mut db = Database::new();
        db.create_table(
            "orders",
            &[("id", DataType::Int64), ("region", DataType::Int64), ("amount", DataType::Int64)],
        )
        .unwrap();
        for i in 0..rows {
            db.insert(
                "orders",
                &Record::new().with("id", i).with("region", i % 4).with("amount", i * 3),
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn filter_and_project() {
        let mut db = sample_db(100);
        let out = db
            .execute(&Query::scan("orders").filter("amount", CmpOp::Lt, 30).select(["id"]))
            .unwrap();
        assert_eq!(out.rows.rows(), 10);
        assert_eq!(out.rows.width(), 1);
        assert!(out.energy.joules() > 0.0);
    }

    #[test]
    fn conjunctive_filters() {
        let mut db = sample_db(100);
        let out = db
            .execute(
                &Query::scan("orders")
                    .filter("region", CmpOp::Eq, 1)
                    .filter("amount", CmpOp::Lt, 60),
            )
            .unwrap();
        // region==1: ids 1,5,9,...; amount<60 → id*3<60 → id<20 → ids 1,5,9,13,17
        assert_eq!(out.rows.rows(), 5);
    }

    #[test]
    fn global_and_grouped_aggregates() {
        let mut db = sample_db(100);
        let out = db.execute(&Query::scan("orders").aggregate(AggKind::Sum, "amount")).unwrap();
        let want: i64 = (0..100).map(|i| i * 3).sum();
        assert_eq!(out.rows.row(0).unwrap()[0].as_float(), Some(want as f64));

        let out = db
            .execute(&Query::scan("orders").group_by("region").aggregate(AggKind::Count, "amount"))
            .unwrap();
        assert_eq!(out.rows.rows(), 4);
        for r in 0..4 {
            assert_eq!(out.rows.row(r).unwrap()[1].as_float(), Some(25.0));
        }
    }

    #[test]
    fn index_is_used_for_point_queries() {
        let mut db = sample_db(50_000);
        db.create_index("orders", "id", IndexMaintenance::Eager).unwrap();
        let out = db.execute(&Query::scan("orders").filter("id", CmpOp::Eq, 123)).unwrap();
        assert_eq!(out.rows.rows(), 1);
        assert_eq!(out.access_path, Some(AccessPath::IndexLookup));
        assert_eq!(db.index_stats("orders", "id").unwrap().lookups, 1);
    }

    #[test]
    fn scan_chosen_without_index() {
        let mut db = sample_db(1000);
        let out = db.execute(&Query::scan("orders").filter("id", CmpOp::Eq, 5)).unwrap();
        assert_eq!(out.rows.rows(), 1);
        assert_eq!(out.access_path, None, "no index: no access decision");
    }

    #[test]
    fn index_and_scan_agree() {
        let mut with_idx = sample_db(10_000);
        with_idx.create_index("orders", "region", IndexMaintenance::Eager).unwrap();
        let mut without = sample_db(10_000);
        let q = Query::scan("orders").filter("region", CmpOp::Eq, 2).aggregate(AggKind::Sum, "amount");
        let a = with_idx.execute(&q).unwrap();
        let b = without.execute(&q).unwrap();
        assert_eq!(a.rows.row(0).unwrap()[0], b.rows.row(0).unwrap()[0]);
    }

    #[test]
    fn energy_goal_changes_nothing_single_node_but_is_respected() {
        let mut db = sample_db(10_000);
        db.create_index("orders", "id", IndexMaintenance::Eager).unwrap();
        db.set_goal(Goal::MinEnergy);
        assert_eq!(db.goal(), Goal::MinEnergy);
        let out = db.execute(&Query::scan("orders").filter("id", CmpOp::Eq, 7)).unwrap();
        // On one node the energy- and time-optimal access coincide (E1).
        assert_eq!(out.access_path, Some(AccessPath::IndexLookup));
    }

    #[test]
    fn meter_accumulates_across_queries() {
        let mut db = sample_db(1000);
        let before = db.meter().grand_total();
        db.execute(&Query::scan("orders").aggregate(AggKind::Sum, "amount")).unwrap();
        let mid = db.meter().grand_total();
        db.execute(&Query::scan("orders").aggregate(AggKind::Max, "amount")).unwrap();
        let after = db.meter().grand_total();
        assert!(mid > before);
        assert!(after > mid);
    }

    #[test]
    fn error_paths() {
        let mut db = sample_db(10);
        assert!(matches!(db.execute(&Query::scan("nope")), Err(DbError::NoSuchTable(_))));
        assert!(matches!(
            db.execute(&Query::scan("orders").filter("ghost", CmpOp::Eq, 1)),
            Err(DbError::NoSuchColumn { .. })
        ));
        assert!(matches!(
            db.execute(&Query::scan("orders").group_by("region")),
            Err(DbError::BadQuery(_))
        ));
        assert!(matches!(db.create_table("orders", &[]), Err(DbError::TableExists(_))));
        assert!(db.create_index("orders", "ghost", IndexMaintenance::Eager).is_err());
    }

    #[test]
    fn string_filters_on_dictionary_codes() {
        let mut db = Database::new();
        db.create_table("users", &[("id", DataType::Int64), ("country", DataType::Str)]).unwrap();
        let countries = ["de", "us", "fr", "de", "de", "jp"];
        for (i, c) in countries.iter().enumerate() {
            db.insert("users", &Record::new().with("id", i as i64).with("country", *c)).unwrap();
        }
        let eq = db.execute(&Query::scan("users").filter_str_eq("country", "de")).unwrap();
        assert_eq!(eq.rows.rows(), 3);
        let ne = db.execute(&Query::scan("users").filter_str_ne("country", "de")).unwrap();
        assert_eq!(ne.rows.rows(), 3);
        // Unknown value: `=` empty, `<>` everything.
        assert_eq!(db.execute(&Query::scan("users").filter_str_eq("country", "zz")).unwrap().rows.rows(), 0);
        assert_eq!(db.execute(&Query::scan("users").filter_str_ne("country", "zz")).unwrap().rows.rows(), 6);
        // Combined with an integer predicate (applies after).
        let both = db
            .execute(&Query::scan("users").filter("id", CmpOp::Lt, 4).filter_str_eq("country", "de"))
            .unwrap();
        assert_eq!(both.rows.rows(), 2);
        // Wrong type errors cleanly.
        assert!(matches!(
            db.execute(&Query::scan("users").filter_str_eq("id", "de")),
            Err(DbError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn parallel_scan_path_matches_serial() {
        // Above the threshold the filter runs morsel-parallel; results
        // must be identical to the serial reference.
        let rows = (super::PARALLEL_SCAN_ROWS + 10_000) as i64;
        let mut db = Database::new();
        db.create_table("big", &[("v", DataType::Int64)]).unwrap();
        for i in 0..rows {
            db.insert("big", &Record::new().with("v", (i * 31) % 1000)).unwrap();
        }
        let out = db.execute(&Query::scan("big").filter("v", CmpOp::Lt, 100)).unwrap();
        let expected = (0..rows).filter(|i| (i * 31) % 1000 < 100).count();
        assert_eq!(out.rows.rows(), expected);
        // Ordering preserved (morsels are re-stitched in row order).
        let first_vals = out.rows.column("v").unwrap().as_int64().unwrap();
        let reference: Vec<i64> =
            (0..rows).map(|i| (i * 31) % 1000).filter(|&v| v < 100).take(32).collect();
        assert_eq!(&first_vals[..32], &reference[..]);
    }

    #[test]
    fn flexible_ingest_then_query() {
        let mut db = Database::new();
        db.create_flexible_table("events").unwrap();
        db.insert("events", &Record::new().with("user", 1i64)).unwrap();
        db.insert("events", &Record::new().with("user", 2i64).with("clicks", 5i64)).unwrap();
        let out = db.execute(&Query::scan("events").filter("user", CmpOp::Gt, 0)).unwrap();
        assert_eq!(out.rows.rows(), 2);
        assert_eq!(db.table("events").unwrap().schema().evolved_columns(), 2);
    }
}
