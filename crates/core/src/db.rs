//! The `haecdb` facade: tables, indexes, and the energy-metered query
//! path.
//!
//! Every query is planned with the dual-objective cost model (index vs
//! scan per the session [`Goal`]), executed with the adaptive vectorized
//! kernels, and charged to the database's [`EnergyMeter`] — making
//! "energy per query" a first-class observable, as the paper demands.
//!
//! Execution is **segment-granular** over the main/delta store of
//! [`crate::table::Table`]: whole segments are skipped via zone maps,
//! integer and string predicates on main segments run directly on the
//! compressed data ([`haec_columnar::encoding::EncodedInts::scan`] — no
//! decode), the flat delta tail uses the vectorized selection kernels,
//! and segments are dispatched as morsels across real threads for large
//! tables. Scanning encoded bytes instead of raw rows is the paper's
//! "energy efficiency by data reduction" made concrete: less DRAM
//! traffic per answered query.

use crate::error::{DbError, DbResult};
use crate::index::{IndexMaintenance, IndexStats, SecondaryIndex};
use crate::schema::{Record, TableSchema};
use crate::segment::{zone_all_match, zone_may_match, MergeStats, SegColumn};
use crate::table::Table;
use haec_columnar::bitmap::Bitmap;
use haec_columnar::chunk::Chunk;
use haec_columnar::column::Column;
use haec_columnar::value::{CmpOp, DataType, Value};
use haec_energy::calibrate::{Kernel, KernelCosts};
use haec_energy::machine::MachineSpec;
use haec_energy::meter::EnergyMeter;
use haec_energy::profile::{CostEstimator, ExecutionContext, ResourceProfile};
use haec_energy::units::{ByteCount, Joules};
use haec_exec::agg::{group_aggregate, AggKind, AggState};
use haec_exec::morsel::parallel_morsels;
use haec_exec::select::{select_metered, SelectKernel};
use haec_planner::access::{choose_access_segmented, AccessPath};
use haec_planner::cost::CostModel;
use haec_planner::optimizer::{choose, Goal};
use std::collections::HashMap;
use std::time::Duration;

/// One conjunct of a query's WHERE clause (integer columns).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Filter {
    /// Column name.
    pub column: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal operand.
    pub literal: i64,
}

/// An equality predicate on a dictionary-encoded string column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StrFilter {
    /// Column name.
    pub column: String,
    /// The value rows must equal (`negated` flips to `<>`).
    pub value: String,
    /// `true` for `<>`, `false` for `=`.
    pub negated: bool,
}

/// A declarative query against one table.
///
/// ```
/// use haecdb::db::Query;
/// use haec_columnar::value::CmpOp;
/// use haec_exec::agg::AggKind;
/// let q = Query::scan("orders")
///     .filter("amount", CmpOp::Ge, 100)
///     .filter_str_eq("country", "de")
///     .group_by("region")
///     .aggregate(AggKind::Sum, "amount");
/// assert_eq!(q.table(), "orders");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    table: String,
    filters: Vec<Filter>,
    str_filters: Vec<StrFilter>,
    group_by: Option<String>,
    agg: Option<(AggKind, String)>,
    select: Option<Vec<String>>,
}

impl Query {
    /// Starts a query over `table`.
    pub fn scan(table: impl Into<String>) -> Self {
        Query {
            table: table.into(),
            filters: Vec::new(),
            str_filters: Vec::new(),
            group_by: None,
            agg: None,
            select: None,
        }
    }

    /// Adds a conjunctive integer predicate.
    pub fn filter(mut self, column: impl Into<String>, op: CmpOp, literal: i64) -> Self {
        self.filters.push(Filter { column: column.into(), op, literal });
        self
    }

    /// Adds a conjunctive string-equality predicate (evaluated on
    /// dictionary codes, never on the strings themselves).
    pub fn filter_str_eq(mut self, column: impl Into<String>, value: impl Into<String>) -> Self {
        self.str_filters.push(StrFilter { column: column.into(), value: value.into(), negated: false });
        self
    }

    /// Adds a conjunctive string-inequality predicate.
    pub fn filter_str_ne(mut self, column: impl Into<String>, value: impl Into<String>) -> Self {
        self.str_filters.push(StrFilter { column: column.into(), value: value.into(), negated: true });
        self
    }

    /// Groups by an integer column.
    pub fn group_by(mut self, column: impl Into<String>) -> Self {
        self.group_by = Some(column.into());
        self
    }

    /// Aggregates `column` with `kind`.
    pub fn aggregate(mut self, kind: AggKind, column: impl Into<String>) -> Self {
        self.agg = Some((kind, column.into()));
        self
    }

    /// Restricts output columns (ignored when aggregating).
    pub fn select<I, S>(mut self, columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.select = Some(columns.into_iter().map(Into::into).collect());
        self
    }

    /// The queried table.
    pub fn table(&self) -> &str {
        &self.table
    }
}

/// Row-count threshold above which the segment scan runs morsel-parallel
/// on real threads (one morsel = one segment) instead of serially.
pub const PARALLEL_SCAN_ROWS: usize = 262_144;

/// The outcome of a query: rows plus full metering.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The result rows.
    pub rows: Chunk,
    /// Modelled energy charged for this query.
    pub energy: Joules,
    /// Modelled execution time.
    pub modeled_time: Duration,
    /// Measured wall time of the real execution.
    pub wall_time: Duration,
    /// The access path taken for the first indexable predicate.
    pub access_path: Option<AccessPath>,
}

/// An integer predicate resolved to a column index.
#[derive(Clone, Copy)]
struct IntPred {
    col: usize,
    op: CmpOp,
    literal: i64,
}

/// A string predicate resolved to dictionary codes: `global_code` for
/// main segments (table-global dictionary), `delta_code` for the current
/// delta tail (its local dictionary).
#[derive(Clone)]
struct StrPred {
    col: usize,
    value: String,
    global_code: Option<i64>,
    delta_code: Option<u32>,
    negated: bool,
}

/// The in-memory, energy-metered database.
///
/// ```
/// use haecdb::prelude::*;
///
/// let mut db = Database::new();
/// db.create_table("t", &[("k", DataType::Int64), ("v", DataType::Int64)])?;
/// db.insert("t", &Record::new().with("k", 1i64).with("v", 10i64))?;
/// db.insert("t", &Record::new().with("k", 2i64).with("v", 20i64))?;
/// let out = db.execute(&Query::scan("t").filter("v", CmpOp::Gt, 15))?;
/// assert_eq!(out.rows.rows(), 1);
/// assert!(out.energy.joules() > 0.0);
/// # Ok::<(), haecdb::error::DbError>(())
/// ```
#[derive(Debug)]
pub struct Database {
    machine: MachineSpec,
    estimator: CostEstimator,
    costs: KernelCosts,
    meter: EnergyMeter,
    tables: HashMap<String, Table>,
    indexes: HashMap<(String, String), SecondaryIndex>,
    goal: Goal,
}

impl Database {
    /// Creates a database on the default 2013 commodity machine model.
    pub fn new() -> Self {
        Database::with_machine(MachineSpec::commodity_2013())
    }

    /// Creates a database over an explicit machine model.
    pub fn with_machine(machine: MachineSpec) -> Self {
        Database {
            estimator: CostEstimator::new(machine.clone()),
            machine,
            costs: KernelCosts::default_2013(),
            meter: EnergyMeter::new(),
            tables: HashMap::new(),
            indexes: HashMap::new(),
            goal: Goal::MinTime,
        }
    }

    /// Sets the session optimization goal (Fig. 2's knob).
    pub fn set_goal(&mut self, goal: Goal) {
        self.goal = goal;
    }

    /// The session goal.
    pub fn goal(&self) -> Goal {
        self.goal
    }

    /// The machine model.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// The cumulative energy meter.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Creates a strict-schema table.
    ///
    /// # Errors
    ///
    /// [`DbError::TableExists`] on name collisions.
    pub fn create_table(&mut self, name: &str, columns: &[(&str, DataType)]) -> DbResult<()> {
        if self.tables.contains_key(name) {
            return Err(DbError::TableExists(name.to_string()));
        }
        let schema = TableSchema::strict(columns.iter().map(|(n, t)| (n.to_string(), *t)).collect());
        self.tables.insert(name.to_string(), Table::new(name, schema));
        Ok(())
    }

    /// Creates a flexible-schema ("data first") table.
    ///
    /// # Errors
    ///
    /// [`DbError::TableExists`] on name collisions.
    pub fn create_flexible_table(&mut self, name: &str) -> DbResult<()> {
        if self.tables.contains_key(name) {
            return Err(DbError::TableExists(name.to_string()));
        }
        self.tables.insert(name.to_string(), Table::new(name, TableSchema::flexible()));
        Ok(())
    }

    /// Looks a table up.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Inserts one record into the table's delta tail, maintaining
    /// indexes per their discipline. Once the delta outgrows the table's
    /// merge threshold, a delta→main merge runs automatically (and its
    /// re-encoding cost is charged to the meter).
    ///
    /// # Errors
    ///
    /// Propagates schema violations; unknown table is
    /// [`DbError::NoSuchTable`].
    pub fn insert(&mut self, table: &str, record: &Record) -> DbResult<()> {
        let t = self.tables.get_mut(table).ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        let row = t.rows() as u32;
        t.insert(record)?;
        let needs_merge = t.needs_merge();
        // Feed indexes on this table.
        for ((tname, col), idx) in self.indexes.iter_mut() {
            if tname == table {
                if let Some(Value::Int(key)) = record.get(col) {
                    idx.on_insert(*key, row);
                }
            }
        }
        // Charge ingestion: one materialize per field.
        let profile = ResourceProfile {
            cpu_cycles: self.costs.cycles_for(Kernel::Materialize, record.len() as u64),
            dram_written: ByteCount::new(record.len() as u64 * 8),
            ..ResourceProfile::default()
        };
        self.estimator.charge(&profile, self.exec_ctx(), &mut self.meter);
        if needs_merge {
            self.merge(table)?;
        }
        Ok(())
    }

    /// Compacts `table`'s delta into compressed main segments, charging
    /// the re-encoding CPU and DRAM traffic to the energy meter. A
    /// no-op (and free) when the delta is empty.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] for unknown tables.
    pub fn merge(&mut self, table: &str) -> DbResult<MergeStats> {
        let t = self.tables.get_mut(table).ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        let stats = t.merge();
        if stats.rows_merged > 0 {
            let values = (stats.raw_bytes / 8) as u64;
            // `EncodedInts::auto` trial-encodes every scheme and keeps
            // the smallest; charge all four attempts, plus reading the
            // flat delta and writing the encoded segments.
            let profile = ResourceProfile {
                cpu_cycles: self.costs.cycles_for(Kernel::CompressEncode, values * 4),
                dram_read: ByteCount::new(stats.raw_bytes as u64),
                dram_written: ByteCount::new(stats.encoded_bytes as u64),
                ..ResourceProfile::default()
            };
            self.estimator.charge(&profile, self.exec_ctx(), &mut self.meter);
        }
        Ok(stats)
    }

    /// Sets the delta row count that triggers an automatic merge on
    /// `table` (`usize::MAX` disables auto-merging).
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] for unknown tables.
    pub fn set_merge_threshold(&mut self, table: &str, rows: usize) -> DbResult<()> {
        let t = self.tables.get_mut(table).ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        t.set_merge_threshold(rows);
        Ok(())
    }

    /// Creates a hash index on an integer column, backfilling existing
    /// rows under the chosen maintenance discipline.
    ///
    /// # Errors
    ///
    /// Unknown table/column errors.
    pub fn create_index(&mut self, table: &str, column: &str, maintenance: IndexMaintenance) -> DbResult<()> {
        let t = self.tables.get(table).ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        let col = t
            .column(column)
            .ok_or_else(|| DbError::NoSuchColumn { table: table.to_string(), column: column.to_string() })?;
        let data = col
            .as_int64()
            .ok_or_else(|| DbError::TypeMismatch { column: column.to_string(), expected: DataType::Int64 })?;
        let mut idx = SecondaryIndex::new(maintenance);
        for (row, &key) in data.iter().enumerate() {
            idx.on_insert(key, row as u32);
        }
        self.indexes.insert((table.to_string(), column.to_string()), idx);
        Ok(())
    }

    /// Work counters of an index.
    pub fn index_stats(&self, table: &str, column: &str) -> Option<IndexStats> {
        self.indexes.get(&(table.to_string(), column.to_string())).map(|i| i.stats())
    }

    fn exec_ctx(&self) -> ExecutionContext {
        ExecutionContext::parallel(self.machine.pstates().fastest(), self.machine.cores())
    }

    /// Executes a query, charging its energy to the meter.
    ///
    /// Main-segment predicates run on compressed data behind zone maps;
    /// the delta tail uses the flat vectorized kernels; large tables scan
    /// segment-parallel.
    ///
    /// # Errors
    ///
    /// Unknown tables/columns, type mismatches, and malformed queries.
    pub fn execute(&mut self, query: &Query) -> DbResult<QueryResult> {
        let started = std::time::Instant::now();
        let t = self.tables.get(&query.table).ok_or_else(|| DbError::NoSuchTable(query.table.clone()))?;
        let mut profile = ResourceProfile::default();
        let mut access_path = None;

        // --- resolve + type-check all predicates up front --------------
        let int_preds = resolve_int_preds(t, &query.table, &query.filters)?;
        let str_preds = resolve_str_preds(t, &query.table, &query.str_filters)?;

        // --- access path for the first filter -------------------------
        let mut positions: Option<Vec<u32>> = None;
        let mut remaining: &[IntPred] = &int_preds;
        if let Some(first) = query.filters.first() {
            let key = (query.table.clone(), first.column.clone());
            if self.indexes.contains_key(&key) && first.op == CmpOp::Eq {
                // Cost both paths against the *compressed* footprint and
                // zone maps, pick per the session goal.
                let mut meta = t.planner_meta();
                if let Some(c) = meta.columns.iter_mut().find(|c| c.name == first.column) {
                    c.indexed = true;
                }
                let zones = t.zone_maps(&first.column).expect("validated int column");
                let encoded = t.column_encoded_bytes(&first.column).expect("column exists") as u64;
                let model = CostModel::new(self.machine.clone()).with_kernel_costs(self.costs.clone());
                let decision = choose_access_segmented(
                    &model,
                    &meta,
                    &first.column,
                    first.op,
                    first.literal,
                    &zones,
                    encoded,
                );
                let candidates = [decision.scan_cost, decision.index_cost.unwrap_or(decision.scan_cost)];
                let planner_costs = [
                    haec_planner::cost::PlanCost { time: candidates[0].time, energy: candidates[0].energy },
                    haec_planner::cost::PlanCost { time: candidates[1].time, energy: candidates[1].energy },
                ];
                let pick = choose(&planner_costs, self.goal).unwrap_or(0);
                if pick == 1 && decision.index_cost.is_some() {
                    let idx = self.indexes.get_mut(&key).expect("checked above");
                    let mut rows = idx.lookup(first.literal);
                    rows.sort_unstable();
                    profile.cpu_cycles +=
                        self.costs.cycles_for(Kernel::IndexLookup, rows.len().max(1) as u64);
                    profile.dram_read += ByteCount::new(rows.len() as u64 * 128 + 128);
                    positions = Some(rows);
                    access_path = Some(AccessPath::IndexLookup);
                    remaining = &int_preds[1..];
                } else {
                    access_path = Some(AccessPath::FullScan);
                }
            }
        }
        let t = self.tables.get(&query.table).expect("still present");

        match &mut positions {
            Some(pos) => {
                // --- index path: point re-checks per surviving row -----
                for p in remaining {
                    // Bill the rows *inspected* (pre-retain), not the
                    // rows that survive.
                    let inspected = pos.len() as u64;
                    pos.retain(|&r| {
                        p.op.eval(t.get_int(p.col, r as usize).expect("validated int column"), p.literal)
                    });
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::SelectPredicated, inspected);
                    profile.dram_read += ByteCount::new(inspected * 8);
                }
                for p in &str_preds {
                    let inspected = pos.len() as u64;
                    pos.retain(|&r| {
                        t.str_eq(p.col, r as usize, &p.value).expect("validated str column") != p.negated
                    });
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::SelectPredicated, inspected);
                    profile.dram_read += ByteCount::new(inspected * 4);
                }
            }
            None if !int_preds.is_empty() || !str_preds.is_empty() => {
                // --- segment-granular scan on compressed data ----------
                let (pos, scan_profile) = self.scan_segmented(t, &int_preds, &str_preds);
                profile += scan_profile;
                positions = Some(pos);
            }
            None => {} // no predicates: all rows
        }

        // --- aggregation / projection ---------------------------------
        let out = match (&query.group_by, &query.agg) {
            (Some(_), None) => return Err(DbError::BadQuery("group_by requires an aggregate".into())),
            (None, None) => {
                // Materialize only the projected columns (all schema
                // columns when no projection is given).
                let names: Vec<String> = match &query.select {
                    Some(cols) => cols.clone(),
                    None => t.schema().columns().iter().map(|(n, _)| n.clone()).collect(),
                };
                let cols = t.materialize_columns(&names, positions.as_deref())?;
                let chunk = Chunk::new(cols).expect("gathered columns are equal length");
                profile.cpu_cycles += self.costs.cycles_for(Kernel::Materialize, chunk.rows() as u64);
                profile.dram_written += ByteCount::new(chunk.size_bytes() as u64);
                chunk
            }
            (group, Some((kind, value_col))) => {
                check_int_column(t, &query.table, value_col)?;
                let gathered_values =
                    t.gather_ints(value_col, positions.as_deref()).expect("validated int column");
                profile.cpu_cycles += self.costs.cycles_for(Kernel::AggUpdate, gathered_values.len() as u64);
                profile.dram_read += ByteCount::new(gathered_values.len() as u64 * 8);
                match group {
                    None => {
                        let mut st = AggState::empty();
                        for &v in &gathered_values {
                            st.update(v);
                        }
                        let result = st.value(*kind).unwrap_or(f64::NAN);
                        Chunk::new(vec![(
                            format!("{kind}({value_col})"),
                            vec![result].into_iter().collect::<Column>(),
                        )])
                        .expect("one column")
                    }
                    Some(gcol) => {
                        check_int_column(t, &query.table, gcol)?;
                        let gathered_keys =
                            t.gather_ints(gcol, positions.as_deref()).expect("validated int column");
                        profile.cpu_cycles +=
                            self.costs.cycles_for(Kernel::HashProbe, gathered_keys.len() as u64);
                        let grouped = group_aggregate(&gathered_keys, &gathered_values);
                        let key_col: Column =
                            grouped.iter().map(|&(k, _)| k).collect::<Vec<i64>>().into_iter().collect();
                        let val_col: Column = grouped
                            .iter()
                            .map(|(_, s)| s.value(*kind).unwrap_or(f64::NAN))
                            .collect::<Vec<f64>>()
                            .into_iter()
                            .collect();
                        Chunk::new(vec![(gcol.clone(), key_col), (format!("{kind}({value_col})"), val_col)])
                            .expect("two columns")
                    }
                }
            }
        };

        // --- metering ---------------------------------------------------
        let before = self.meter.snapshot();
        let est = self.estimator.charge(&profile, self.exec_ctx(), &mut self.meter);
        let delta = self.meter.since(&before);
        Ok(QueryResult {
            rows: out,
            energy: delta.grand_total(),
            modeled_time: est.time,
            wall_time: started.elapsed(),
            access_path,
        })
    }

    /// Evaluates all predicates over every segment plus the delta tail,
    /// returning matching global row ids (ascending) and the work done.
    ///
    /// Per segment: zone maps first (prune whole segments, or skip
    /// tautological predicates), then
    /// [`haec_columnar::encoding::EncodedInts::scan`] directly on the
    /// compressed column — main-segment data is **never decoded** for
    /// predicate evaluation. The delta runs the flat bitwise kernel,
    /// chunked into [`crate::segment::SEGMENT_ROWS`]-sized units so an
    /// oversized (merge-disabled) delta still parallelizes. Above
    /// [`PARALLEL_SCAN_ROWS`] total rows, units are dispatched as
    /// morsels over real threads.
    fn scan_segmented(
        &self,
        t: &Table,
        int_preds: &[IntPred],
        str_preds: &[StrPred],
    ) -> (Vec<u32>, ResourceProfile) {
        let nsegs = t.segments().len();
        let delta_units = t.delta_rows().div_ceil(crate::segment::SEGMENT_ROWS);
        let units = nsegs + delta_units;
        let eval = |u: usize| -> (Vec<u32>, ResourceProfile) {
            if u < nsegs {
                self.eval_segment(t, u, int_preds, str_preds)
            } else {
                let start = (u - nsegs) * crate::segment::SEGMENT_ROWS;
                let end = (start + crate::segment::SEGMENT_ROWS).min(t.delta_rows());
                self.eval_delta(t, start, end, int_preds, str_preds)
            }
        };
        if t.rows() >= PARALLEL_SCAN_ROWS && units > 1 {
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(self.machine.cores())
                .min(units);
            let mut parts = parallel_morsels(
                units,
                threads,
                1, // one morsel = one segment (or the delta)
                |m| (m.start..m.end).map(|u| (u, eval(u))).collect::<Vec<_>>(),
                |mut a: Vec<(usize, (Vec<u32>, ResourceProfile))>, b| {
                    a.extend(b);
                    a
                },
                Vec::new(),
            );
            parts.sort_unstable_by_key(|&(u, _)| u);
            let mut pos = Vec::new();
            let mut profile = ResourceProfile::default();
            for (_, (p, pr)) in parts {
                pos.extend(p);
                profile += pr;
            }
            (pos, profile)
        } else {
            let mut pos = Vec::new();
            let mut profile = ResourceProfile::default();
            for u in 0..units {
                let (p, pr) = eval(u);
                pos.extend(p);
                profile += pr;
            }
            (pos, profile)
        }
    }

    /// One segment's worth of predicate evaluation, on compressed data.
    fn eval_segment(
        &self,
        t: &Table,
        si: usize,
        int_preds: &[IntPred],
        str_preds: &[StrPred],
    ) -> (Vec<u32>, ResourceProfile) {
        let seg = &t.segments()[si];
        let base = t.segment_base(si);
        let rows = seg.rows();
        let mut profile = ResourceProfile::default();
        let mut bm: Option<Bitmap> = None;
        for p in int_preds {
            match seg.column(p.col) {
                None => {
                    // Segment predates the column: every row holds the
                    // null sentinel 0.
                    if !p.op.eval(0, p.literal) {
                        return (Vec::new(), profile);
                    }
                }
                Some(SegColumn::Int { data, zone, .. }) => {
                    let (lo, hi) = zone.expect("non-empty segment has a zone");
                    if !zone_may_match(p.op, p.literal, lo, hi) {
                        return (Vec::new(), profile); // pruned: no data touched
                    }
                    if zone_all_match(p.op, p.literal, lo, hi) {
                        continue; // tautology on this segment: no scan needed
                    }
                    let mut m = Bitmap::zeros(rows);
                    data.scan(p.op, p.literal, &mut m);
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::SelectBitwise, rows as u64);
                    profile.dram_read += ByteCount::new(data.size_bytes() as u64);
                    and_into(&mut bm, m);
                }
                Some(_) => unreachable!("predicate validated as integer column"),
            }
        }
        for p in str_preds {
            match seg.column(p.col) {
                None => {
                    // Sentinel "" everywhere.
                    if (p.value.is_empty()) == p.negated {
                        return (Vec::new(), profile);
                    }
                }
                Some(SegColumn::Str { codes, zone }) => {
                    let Some(code) = p.global_code else {
                        // Value never interned: `=` matches nothing,
                        // `<>` everything.
                        if p.negated {
                            continue;
                        }
                        return (Vec::new(), profile);
                    };
                    let op = if p.negated { CmpOp::Ne } else { CmpOp::Eq };
                    let (lo, hi) = zone.expect("non-empty segment has a zone");
                    if !zone_may_match(op, code, lo, hi) {
                        return (Vec::new(), profile);
                    }
                    if zone_all_match(op, code, lo, hi) {
                        continue;
                    }
                    let mut m = Bitmap::zeros(rows);
                    codes.scan(op, code, &mut m);
                    profile.cpu_cycles += self.costs.cycles_for(Kernel::SelectBitwise, rows as u64);
                    profile.dram_read += ByteCount::new(codes.size_bytes() as u64);
                    and_into(&mut bm, m);
                }
                Some(_) => unreachable!("predicate validated as string column"),
            }
        }
        let pos = match bm {
            Some(b) => b.iter_ones().map(|i| (base + i) as u32).collect(),
            // Every predicate was a tautology on this segment.
            None => (base..base + rows).map(|i| i as u32).collect(),
        };
        (pos, profile)
    }

    /// Predicate evaluation over delta rows `[start, end)`: flat
    /// vectorized kernels over the dense columns, exactly the
    /// pre-segmentation scan path (one chunk = one parallel unit).
    fn eval_delta(
        &self,
        t: &Table,
        start: usize,
        end: usize,
        int_preds: &[IntPred],
        str_preds: &[StrPred],
    ) -> (Vec<u32>, ResourceProfile) {
        let base = t.main_rows() + start;
        let rows = end - start;
        let mut profile = ResourceProfile::default();
        let mut positions: Option<Vec<u32>> = None;
        for p in int_preds {
            let data = &t
                .delta_column(p.col)
                .and_then(Column::as_int64)
                .expect("predicate validated as integer column")[start..end];
            let (hits, stats) = select_metered(data, p.op, p.literal, SelectKernel::Bitwise, &self.costs);
            profile += stats.profile;
            positions = Some(match positions.take() {
                None => hits,
                Some(prev) => haec_exec::select::intersect_positions(&prev, &hits),
            });
        }
        for p in str_preds {
            let codes = &t
                .delta_column(p.col)
                .and_then(Column::as_str)
                .expect("predicate validated as string column")
                .codes()[start..end];
            profile.cpu_cycles += self.costs.cycles_for(Kernel::SelectBitwise, codes.len() as u64);
            profile.dram_read += ByteCount::new(codes.len() as u64 * 4);
            let keep = |row: usize| -> bool {
                match p.delta_code {
                    Some(c) => (codes[row] == c) != p.negated,
                    None => p.negated,
                }
            };
            positions = Some(match positions.take() {
                Some(mut pos) => {
                    pos.retain(|&r| keep(r as usize));
                    pos
                }
                None => (0..codes.len()).filter(|&i| keep(i)).map(|i| i as u32).collect(),
            });
        }
        let pos = positions.unwrap_or_else(|| (0..rows as u32).collect());
        (pos.into_iter().map(|p| p + base as u32).collect(), profile)
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

/// ANDs `m` into the accumulator (first predicate just installs it).
fn and_into(acc: &mut Option<Bitmap>, m: Bitmap) {
    match acc {
        None => *acc = Some(m),
        Some(b) => b.and_with(&m),
    }
}

fn check_int_column(t: &Table, table: &str, name: &str) -> DbResult<usize> {
    let idx = t
        .schema()
        .position(name)
        .ok_or_else(|| DbError::NoSuchColumn { table: table.to_string(), column: name.to_string() })?;
    if t.schema().columns()[idx].1 != DataType::Int64 {
        return Err(DbError::TypeMismatch { column: name.to_string(), expected: DataType::Int64 });
    }
    Ok(idx)
}

fn resolve_int_preds(t: &Table, table: &str, filters: &[Filter]) -> DbResult<Vec<IntPred>> {
    filters
        .iter()
        .map(|f| {
            let col = check_int_column(t, table, &f.column)?;
            Ok(IntPred { col, op: f.op, literal: f.literal })
        })
        .collect()
}

fn resolve_str_preds(t: &Table, table: &str, filters: &[StrFilter]) -> DbResult<Vec<StrPred>> {
    filters
        .iter()
        .map(|f| {
            let col = t.schema().position(&f.column).ok_or_else(|| DbError::NoSuchColumn {
                table: table.to_string(),
                column: f.column.clone(),
            })?;
            if t.schema().columns()[col].1 != DataType::Str {
                return Err(DbError::TypeMismatch { column: f.column.clone(), expected: DataType::Str });
            }
            let global_code = t.global_dict(col).and_then(|d| d.code_of(&f.value)).map(i64::from);
            let delta_code = t.delta_column(col).and_then(Column::as_str).and_then(|d| d.code_of(&f.value));
            Ok(StrPred { col, value: f.value.clone(), global_code, delta_code, negated: f.negated })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::SEGMENT_ROWS;

    fn sample_db(rows: i64) -> Database {
        let mut db = Database::new();
        db.create_table(
            "orders",
            &[("id", DataType::Int64), ("region", DataType::Int64), ("amount", DataType::Int64)],
        )
        .unwrap();
        for i in 0..rows {
            db.insert("orders", &Record::new().with("id", i).with("region", i % 4).with("amount", i * 3))
                .unwrap();
        }
        db
    }

    #[test]
    fn filter_and_project() {
        let mut db = sample_db(100);
        let out = db.execute(&Query::scan("orders").filter("amount", CmpOp::Lt, 30).select(["id"])).unwrap();
        assert_eq!(out.rows.rows(), 10);
        assert_eq!(out.rows.width(), 1);
        assert!(out.energy.joules() > 0.0);
    }

    #[test]
    fn conjunctive_filters() {
        let mut db = sample_db(100);
        let out = db
            .execute(&Query::scan("orders").filter("region", CmpOp::Eq, 1).filter("amount", CmpOp::Lt, 60))
            .unwrap();
        // region==1: ids 1,5,9,...; amount<60 → id*3<60 → id<20 → ids 1,5,9,13,17
        assert_eq!(out.rows.rows(), 5);
    }

    #[test]
    fn global_and_grouped_aggregates() {
        let mut db = sample_db(100);
        let out = db.execute(&Query::scan("orders").aggregate(AggKind::Sum, "amount")).unwrap();
        let want: i64 = (0..100).map(|i| i * 3).sum();
        assert_eq!(out.rows.row(0).unwrap()[0].as_float(), Some(want as f64));

        let out = db
            .execute(&Query::scan("orders").group_by("region").aggregate(AggKind::Count, "amount"))
            .unwrap();
        assert_eq!(out.rows.rows(), 4);
        for r in 0..4 {
            assert_eq!(out.rows.row(r).unwrap()[1].as_float(), Some(25.0));
        }
    }

    #[test]
    fn segmented_execution_matches_flat() {
        // The core differential guarantee: merging (any number of times)
        // never changes any query answer.
        let queries = [
            Query::scan("orders").filter("amount", CmpOp::Lt, 600),
            Query::scan("orders").filter("region", CmpOp::Eq, 2).filter("amount", CmpOp::Ge, 300),
            Query::scan("orders").filter("id", CmpOp::Gt, 750).select(["id", "amount"]),
            Query::scan("orders").group_by("region").aggregate(AggKind::Sum, "amount"),
            Query::scan("orders").filter("amount", CmpOp::Ne, 0).aggregate(AggKind::Max, "id"),
        ];
        let mut flat = sample_db(1000);
        let mut seg = sample_db(1000);
        seg.merge("orders").unwrap();
        let mut mixed = Database::new();
        mixed
            .create_table(
                "orders",
                &[("id", DataType::Int64), ("region", DataType::Int64), ("amount", DataType::Int64)],
            )
            .unwrap();
        for i in 0..1000i64 {
            mixed
                .insert("orders", &Record::new().with("id", i).with("region", i % 4).with("amount", i * 3))
                .unwrap();
            if i == 311 || i == 702 {
                mixed.merge("orders").unwrap();
            }
        }
        assert_eq!(mixed.table("orders").unwrap().segments().len(), 2);
        for q in &queries {
            let a = flat.execute(q).unwrap();
            let b = seg.execute(q).unwrap();
            let c = mixed.execute(q).unwrap();
            assert_eq!(a.rows.rows(), b.rows.rows(), "{q:?}");
            for r in 0..a.rows.rows() {
                assert_eq!(a.rows.row(r), b.rows.row(r), "{q:?} row {r}");
                assert_eq!(a.rows.row(r), c.rows.row(r), "{q:?} row {r} (mixed)");
            }
        }
    }

    #[test]
    fn merge_is_metered_and_auto_triggers() {
        let mut db = sample_db(10);
        db.set_merge_threshold("orders", 50).unwrap();
        let before = db.meter().grand_total();
        let stats = db.merge("orders").unwrap();
        assert_eq!(stats.rows_merged, 10);
        assert!(db.meter().grand_total().joules() > before.joules(), "merge must cost energy");
        // Empty merge is free.
        let e0 = db.meter().grand_total();
        assert_eq!(db.merge("orders").unwrap(), MergeStats::default());
        assert_eq!(db.meter().grand_total(), e0);
        // Auto-trigger: inserting past the threshold compacts the delta.
        for i in 10..200i64 {
            db.insert("orders", &Record::new().with("id", i).with("region", i % 4).with("amount", i * 3))
                .unwrap();
        }
        let t = db.table("orders").unwrap();
        assert!(t.delta_rows() < 50, "delta stayed below threshold, got {}", t.delta_rows());
        assert!(t.main_rows() >= 150);
    }

    #[test]
    fn zone_pruning_reduces_scan_energy() {
        // Sorted ids split across segments: a range predicate touching
        // one segment must cost measurably less than one touching all.
        // Build a 4-segment table by merging every 250 rows.
        let mut seg_db = Database::new();
        seg_db
            .create_table(
                "orders",
                &[("id", DataType::Int64), ("region", DataType::Int64), ("amount", DataType::Int64)],
            )
            .unwrap();
        for i in 0..1000i64 {
            seg_db
                .insert("orders", &Record::new().with("id", i).with("region", i % 4).with("amount", i * 3))
                .unwrap();
            if (i + 1) % 250 == 0 {
                seg_db.merge("orders").unwrap();
            }
        }
        assert_eq!(seg_db.table("orders").unwrap().segments().len(), 4);
        let narrow = seg_db
            .execute(&Query::scan("orders").filter("id", CmpOp::Lt, 100).aggregate(AggKind::Count, "id"))
            .unwrap();
        let broad = seg_db
            .execute(&Query::scan("orders").filter("id", CmpOp::Ge, 0).aggregate(AggKind::Count, "id"))
            .unwrap();
        assert_eq!(narrow.rows.row(0).unwrap()[0].as_float(), Some(100.0));
        assert_eq!(broad.rows.row(0).unwrap()[0].as_float(), Some(1000.0));
        // The narrow query prunes 3 of 4 segments AND gathers fewer rows.
        assert!(narrow.energy.joules() < broad.energy.joules());
    }

    #[test]
    fn index_is_used_for_point_queries() {
        let mut db = sample_db(50_000);
        db.create_index("orders", "id", IndexMaintenance::Eager).unwrap();
        let out = db.execute(&Query::scan("orders").filter("id", CmpOp::Eq, 123)).unwrap();
        assert_eq!(out.rows.rows(), 1);
        assert_eq!(out.access_path, Some(AccessPath::IndexLookup));
        assert_eq!(db.index_stats("orders", "id").unwrap().lookups, 1);
    }

    #[test]
    fn index_works_across_merged_segments() {
        // Row ids are stable across merges, so an index built before a
        // merge keeps answering correctly after it.
        let mut db = sample_db(50_000);
        db.create_index("orders", "id", IndexMaintenance::Eager).unwrap();
        db.merge("orders").unwrap();
        let out = db
            .execute(&Query::scan("orders").filter("id", CmpOp::Eq, 123).filter("region", CmpOp::Eq, 3))
            .unwrap();
        assert_eq!(out.rows.rows(), 1, "id 123 has region 3");
        let miss = db
            .execute(&Query::scan("orders").filter("id", CmpOp::Eq, 123).filter("region", CmpOp::Eq, 0))
            .unwrap();
        assert_eq!(miss.rows.rows(), 0);
    }

    #[test]
    fn scan_chosen_without_index() {
        let mut db = sample_db(1000);
        let out = db.execute(&Query::scan("orders").filter("id", CmpOp::Eq, 5)).unwrap();
        assert_eq!(out.rows.rows(), 1);
        assert_eq!(out.access_path, None, "no index: no access decision");
    }

    #[test]
    fn index_and_scan_agree() {
        let mut with_idx = sample_db(10_000);
        with_idx.create_index("orders", "region", IndexMaintenance::Eager).unwrap();
        let mut without = sample_db(10_000);
        let q = Query::scan("orders").filter("region", CmpOp::Eq, 2).aggregate(AggKind::Sum, "amount");
        let a = with_idx.execute(&q).unwrap();
        let b = without.execute(&q).unwrap();
        assert_eq!(a.rows.row(0).unwrap()[0], b.rows.row(0).unwrap()[0]);
    }

    #[test]
    fn energy_goal_changes_nothing_single_node_but_is_respected() {
        let mut db = sample_db(10_000);
        db.create_index("orders", "id", IndexMaintenance::Eager).unwrap();
        db.set_goal(Goal::MinEnergy);
        assert_eq!(db.goal(), Goal::MinEnergy);
        let out = db.execute(&Query::scan("orders").filter("id", CmpOp::Eq, 7)).unwrap();
        // On one node the energy- and time-optimal access coincide (E1).
        assert_eq!(out.access_path, Some(AccessPath::IndexLookup));
    }

    #[test]
    fn meter_accumulates_across_queries() {
        let mut db = sample_db(1000);
        let before = db.meter().grand_total();
        db.execute(&Query::scan("orders").aggregate(AggKind::Sum, "amount")).unwrap();
        let mid = db.meter().grand_total();
        db.execute(&Query::scan("orders").aggregate(AggKind::Max, "amount")).unwrap();
        let after = db.meter().grand_total();
        assert!(mid > before);
        assert!(after > mid);
    }

    #[test]
    fn error_paths() {
        let mut db = sample_db(10);
        assert!(matches!(db.execute(&Query::scan("nope")), Err(DbError::NoSuchTable(_))));
        assert!(matches!(
            db.execute(&Query::scan("orders").filter("ghost", CmpOp::Eq, 1)),
            Err(DbError::NoSuchColumn { .. })
        ));
        assert!(matches!(db.execute(&Query::scan("orders").group_by("region")), Err(DbError::BadQuery(_))));
        assert!(matches!(db.create_table("orders", &[]), Err(DbError::TableExists(_))));
        assert!(db.create_index("orders", "ghost", IndexMaintenance::Eager).is_err());
        assert!(matches!(db.merge("nope"), Err(DbError::NoSuchTable(_))));
        assert!(matches!(db.set_merge_threshold("nope", 1), Err(DbError::NoSuchTable(_))));
    }

    #[test]
    fn string_filters_on_dictionary_codes() {
        let mut db = Database::new();
        db.create_table("users", &[("id", DataType::Int64), ("country", DataType::Str)]).unwrap();
        let countries = ["de", "us", "fr", "de", "de", "jp"];
        for (i, c) in countries.iter().enumerate() {
            db.insert("users", &Record::new().with("id", i as i64).with("country", *c)).unwrap();
        }
        // Exercise both storage forms: flat delta, then merged main.
        for merged in [false, true] {
            if merged {
                db.merge("users").unwrap();
            }
            let eq = db.execute(&Query::scan("users").filter_str_eq("country", "de")).unwrap();
            assert_eq!(eq.rows.rows(), 3, "merged={merged}");
            let ne = db.execute(&Query::scan("users").filter_str_ne("country", "de")).unwrap();
            assert_eq!(ne.rows.rows(), 3, "merged={merged}");
            // Unknown value: `=` empty, `<>` everything.
            assert_eq!(
                db.execute(&Query::scan("users").filter_str_eq("country", "zz")).unwrap().rows.rows(),
                0
            );
            assert_eq!(
                db.execute(&Query::scan("users").filter_str_ne("country", "zz")).unwrap().rows.rows(),
                6
            );
            // Combined with an integer predicate.
            let both = db
                .execute(&Query::scan("users").filter("id", CmpOp::Lt, 4).filter_str_eq("country", "de"))
                .unwrap();
            assert_eq!(both.rows.rows(), 2, "merged={merged}");
            // Wrong type errors cleanly.
            assert!(matches!(
                db.execute(&Query::scan("users").filter_str_eq("id", "de")),
                Err(DbError::TypeMismatch { .. })
            ));
        }
    }

    #[test]
    fn parallel_scan_path_matches_serial() {
        // Above the threshold the scan runs segment-parallel (auto-merge
        // has produced multiple 64K segments by now); results must be
        // identical to the serial reference.
        let rows = (super::PARALLEL_SCAN_ROWS + 10_000) as i64;
        let mut db = Database::new();
        db.create_table("big", &[("v", DataType::Int64)]).unwrap();
        for i in 0..rows {
            db.insert("big", &Record::new().with("v", (i * 31) % 1000)).unwrap();
        }
        let t = db.table("big").unwrap();
        assert!(t.segments().len() > 1, "auto-merge should have built segments");
        let out = db.execute(&Query::scan("big").filter("v", CmpOp::Lt, 100)).unwrap();
        let expected = (0..rows).filter(|i| (i * 31) % 1000 < 100).count();
        assert_eq!(out.rows.rows(), expected);
        // Ordering preserved (segments are re-stitched in row order).
        let first_vals = out.rows.column("v").unwrap().as_int64().unwrap();
        let reference: Vec<i64> = (0..rows).map(|i| (i * 31) % 1000).filter(|&v| v < 100).take(32).collect();
        assert_eq!(&first_vals[..32], &reference[..]);
    }

    #[test]
    fn projection_skips_unprojected_columns() {
        // Same filter, narrower projection → strictly less energy
        // (fewer columns materialized and written).
        let mut wide = sample_db(50_000);
        let mut narrow = sample_db(50_000);
        let all = wide.execute(&Query::scan("orders").filter("amount", CmpOp::Lt, 60_000)).unwrap();
        let one = narrow
            .execute(&Query::scan("orders").filter("amount", CmpOp::Lt, 60_000).select(["id"]))
            .unwrap();
        assert_eq!(all.rows.rows(), one.rows.rows());
        assert!(one.energy.joules() < all.energy.joules());
    }

    #[test]
    fn compressed_scan_beats_flat_on_energy() {
        // The acceptance-criterion shape at unit-test scale: identical
        // data and query, merged (compressed, zone-mapped) vs flat
        // delta. Compressible data → fewer DRAM bytes → less energy.
        let rows = (SEGMENT_ROWS * 2) as i64;
        let mk = || {
            let mut db = Database::new();
            db.create_table("t", &[("ts", DataType::Int64), ("v", DataType::Int64)]).unwrap();
            db.set_merge_threshold("t", usize::MAX).unwrap();
            for i in 0..rows {
                db.insert("t", &Record::new().with("ts", 1_600_000_000 + i).with("v", i % 16)).unwrap();
            }
            db
        };
        let mut flat = mk();
        let mut merged = mk();
        merged.merge("t").unwrap();
        let q = Query::scan("t").filter("v", CmpOp::Lt, 4).aggregate(AggKind::Count, "v");
        let a = flat.execute(&q).unwrap();
        let b = merged.execute(&q).unwrap();
        assert_eq!(a.rows.row(0).unwrap()[0], b.rows.row(0).unwrap()[0]);
        assert!(
            b.energy.joules() < a.energy.joules(),
            "compressed scan {} J should beat flat {} J",
            b.energy.joules(),
            a.energy.joules()
        );
    }

    #[test]
    fn flexible_ingest_then_query() {
        let mut db = Database::new();
        db.create_flexible_table("events").unwrap();
        db.insert("events", &Record::new().with("user", 1i64)).unwrap();
        db.insert("events", &Record::new().with("user", 2i64).with("clicks", 5i64)).unwrap();
        let out = db.execute(&Query::scan("events").filter("user", CmpOp::Gt, 0)).unwrap();
        assert_eq!(out.rows.rows(), 2);
        assert_eq!(db.table("events").unwrap().schema().evolved_columns(), 2);
    }

    #[test]
    fn flexible_evolution_across_merges_queries_consistently() {
        let mut db = Database::new();
        db.create_flexible_table("events").unwrap();
        for i in 0..100i64 {
            db.insert("events", &Record::new().with("user", i)).unwrap();
        }
        db.merge("events").unwrap();
        for i in 100..200i64 {
            db.insert("events", &Record::new().with("user", i).with("clicks", i % 7)).unwrap();
        }
        // Pre-merge rows read clicks as sentinel 0.
        let zero = db.execute(&Query::scan("events").filter("clicks", CmpOp::Eq, 0)).unwrap();
        let expected = 100 + (100..200).filter(|i| i % 7 == 0).count();
        assert_eq!(zero.rows.rows(), expected);
        db.merge("events").unwrap();
        let zero2 = db.execute(&Query::scan("events").filter("clicks", CmpOp::Eq, 0)).unwrap();
        assert_eq!(zero2.rows.rows(), expected);
    }
}
