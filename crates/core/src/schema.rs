//! Flexible schema: "data comes first, schema comes second" (§II).
//!
//! A [`TableSchema`] either enforces a declared column set
//! ([`SchemaMode::Strict`], the classical plan-design-load workflow) or
//! evolves as records arrive ([`SchemaMode::Flexible`]): unseen fields
//! add columns on the fly, missing fields become nulls. Experiment E13
//! compares load-to-query time and evolution cost between the modes.

use crate::error::{DbError, DbResult};
use haec_columnar::value::{DataType, Value};
use std::fmt;

/// Schema enforcement mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchemaMode {
    /// Fixed columns; unknown or missing fields are errors.
    Strict,
    /// Columns appear as data arrives; missing fields are null.
    Flexible,
}

impl fmt::Display for SchemaMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaMode::Strict => f.write_str("strict"),
            SchemaMode::Flexible => f.write_str("flexible"),
        }
    }
}

/// One record at the ingestion boundary: named values.
///
/// ```
/// use haecdb::schema::Record;
/// let r = Record::new().with("id", 1i64).with("name", "x");
/// assert_eq!(r.len(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Record {
    fields: Vec<(String, Value)>,
}

impl Record {
    /// Creates an empty record.
    pub fn new() -> Self {
        Record::default()
    }

    /// Adds a field (builder style).
    pub fn with(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.fields.push((name.into(), value.into()));
        self
    }

    /// Adds a field in place.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) {
        self.fields.push((name.into(), value.into()));
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Returns `true` if the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Looks a field up by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Iterates over `(name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> + '_ {
        self.fields.iter().map(|(n, v)| (n.as_str(), v))
    }
}

/// A table's column layout plus its enforcement mode.
#[derive(Clone, Debug, PartialEq)]
pub struct TableSchema {
    mode: SchemaMode,
    columns: Vec<(String, DataType)>,
    /// How many columns were added after creation (schema drift metric).
    evolved: usize,
    /// Declared physical sort key: `merge()` rebuilds main segments
    /// globally ordered by this column (string keys sort by dictionary
    /// code, not collation — see `Table::merge`).
    sort_key: Option<String>,
}

impl TableSchema {
    /// A strict schema with the given columns.
    pub fn strict(columns: Vec<(String, DataType)>) -> Self {
        TableSchema { mode: SchemaMode::Strict, columns, evolved: 0, sort_key: None }
    }

    /// An empty flexible schema.
    pub fn flexible() -> Self {
        TableSchema { mode: SchemaMode::Flexible, columns: Vec::new(), evolved: 0, sort_key: None }
    }

    /// Declares `column` as the physical sort key. The column must
    /// exist and be `Int64` or `Str`; `merge()` then produces sorted
    /// runs and the planner treats the layout as a costed property.
    ///
    /// # Panics
    ///
    /// Panics if the column is missing or is a float column (floats
    /// have no total order the engine's zone maps understand). Use
    /// [`Database::create_table_sorted`](crate::Database::create_table_sorted)
    /// for a fallible variant.
    #[must_use]
    pub fn with_sort_key(mut self, column: &str) -> Self {
        let dtype = self
            .columns
            .iter()
            .find(|(n, _)| n == column)
            .map(|(_, t)| *t)
            .unwrap_or_else(|| panic!("sort key {column:?} is not a schema column"));
        assert!(
            matches!(dtype, DataType::Int64 | DataType::Str),
            "sort key {column:?} must be Int64 or Str, got {dtype:?}"
        );
        self.sort_key = Some(column.to_string());
        self
    }

    /// The declared sort key, if any.
    pub fn sort_key(&self) -> Option<&str> {
        self.sort_key.as_deref()
    }

    /// The enforcement mode.
    pub fn mode(&self) -> SchemaMode {
        self.mode
    }

    /// The column layout.
    pub fn columns(&self) -> &[(String, DataType)] {
        &self.columns
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Columns added after creation.
    pub fn evolved_columns(&self) -> usize {
        self.evolved
    }

    /// Position of a column.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Validates `record` against the schema, evolving it when the mode
    /// allows. Returns, per schema column (post-evolution order), the
    /// value to store (`Value::Null` for missing fields).
    ///
    /// # Errors
    ///
    /// In strict mode: unknown fields, missing fields and type
    /// mismatches are [`DbError`]s. In flexible mode only type
    /// mismatches on existing columns fail; a field whose first
    /// appearance is null is an error too (its type cannot be
    /// inferred).
    pub fn admit(&mut self, record: &Record) -> DbResult<Vec<Value>> {
        // Unknown fields.
        for (name, value) in record.iter() {
            if self.position(name).is_none() {
                match self.mode {
                    SchemaMode::Strict => {
                        return Err(DbError::SchemaViolation(format!("unknown field {name:?}")))
                    }
                    SchemaMode::Flexible => {
                        let dtype = value.data_type().ok_or_else(|| {
                            DbError::SchemaViolation(format!(
                                "cannot infer type of new field {name:?} from null"
                            ))
                        })?;
                        self.columns.push((name.to_string(), dtype));
                        self.evolved += 1;
                    }
                }
            }
        }
        // Assemble per-column values, checking types.
        let mut out = Vec::with_capacity(self.columns.len());
        for (name, dtype) in &self.columns {
            match record.get(name) {
                None | Some(Value::Null) => {
                    if self.mode == SchemaMode::Strict && record.get(name).is_none() {
                        return Err(DbError::SchemaViolation(format!("missing field {name:?}")));
                    }
                    out.push(Value::Null);
                }
                Some(v) => {
                    let ok = matches!(
                        (dtype, v),
                        (DataType::Int64, Value::Int(_))
                            | (DataType::Float64, Value::Float(_) | Value::Int(_))
                            | (DataType::Str, Value::Str(_))
                    );
                    if !ok {
                        return Err(DbError::TypeMismatch { column: name.clone(), expected: *dtype });
                    }
                    out.push(v.clone());
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_builder() {
        let r = Record::new().with("a", 1i64).with("b", 2.5).with("c", "x");
        assert_eq!(r.len(), 3);
        assert_eq!(r.get("a"), Some(&Value::Int(1)));
        assert_eq!(r.get("zz"), None);
        assert!(!r.is_empty());
        assert!(Record::new().is_empty());
    }

    #[test]
    fn strict_accepts_exact_match() {
        let mut s = TableSchema::strict(vec![("id".into(), DataType::Int64), ("name".into(), DataType::Str)]);
        let vals = s.admit(&Record::new().with("id", 1i64).with("name", "a")).unwrap();
        assert_eq!(vals, vec![Value::Int(1), Value::from("a")]);
        assert_eq!(s.evolved_columns(), 0);
    }

    #[test]
    fn strict_rejects_unknown_and_missing() {
        let mut s = TableSchema::strict(vec![("id".into(), DataType::Int64)]);
        let err = s.admit(&Record::new().with("id", 1i64).with("extra", 2i64)).unwrap_err();
        assert!(matches!(err, DbError::SchemaViolation(_)));
        let err = s.admit(&Record::new()).unwrap_err();
        assert!(matches!(err, DbError::SchemaViolation(_)));
    }

    #[test]
    fn strict_rejects_wrong_type() {
        let mut s = TableSchema::strict(vec![("id".into(), DataType::Int64)]);
        let err = s.admit(&Record::new().with("id", "oops")).unwrap_err();
        assert_eq!(err, DbError::TypeMismatch { column: "id".into(), expected: DataType::Int64 });
    }

    #[test]
    fn flexible_evolves() {
        let mut s = TableSchema::flexible();
        assert_eq!(s.width(), 0);
        let v1 = s.admit(&Record::new().with("a", 1i64)).unwrap();
        assert_eq!(v1, vec![Value::Int(1)]);
        // Second record adds a column; first column missing → null.
        let v2 = s.admit(&Record::new().with("b", "x")).unwrap();
        assert_eq!(v2, vec![Value::Null, Value::from("x")]);
        assert_eq!(s.width(), 2);
        assert_eq!(s.evolved_columns(), 2);
    }

    #[test]
    fn flexible_rejects_type_drift() {
        let mut s = TableSchema::flexible();
        s.admit(&Record::new().with("a", 1i64)).unwrap();
        let err = s.admit(&Record::new().with("a", "now a string")).unwrap_err();
        assert!(matches!(err, DbError::TypeMismatch { .. }));
    }

    #[test]
    fn flexible_rejects_null_first_appearance() {
        let mut s = TableSchema::flexible();
        let r = Record::new().with("a", Value::Null);
        assert!(matches!(s.admit(&r).unwrap_err(), DbError::SchemaViolation(_)));
    }

    #[test]
    fn int_widens_to_float() {
        let mut s = TableSchema::strict(vec![("p".into(), DataType::Float64)]);
        let v = s.admit(&Record::new().with("p", 3i64)).unwrap();
        assert_eq!(v, vec![Value::Int(3)]); // stored value keeps its form; column coerces
    }

    #[test]
    fn position_lookup() {
        let s = TableSchema::strict(vec![("a".into(), DataType::Int64), ("b".into(), DataType::Str)]);
        assert_eq!(s.position("b"), Some(1));
        assert_eq!(s.position("zz"), None);
        assert_eq!(s.columns().len(), 2);
    }

    #[test]
    fn mode_display() {
        assert_eq!(format!("{}", SchemaMode::Flexible), "flexible");
    }
}
