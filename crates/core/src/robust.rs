//! Robustness: compensating failures instead of aborting whole queries
//! (paper §IV).
//!
//! *"while short read requests can be easily repeated, intermediate
//! results of long-running analytical queries … have to be preserved and
//! transparently used for a restart."* This module simulates a staged
//! query pipeline under failure injection and compares the classical
//! abort-and-restart discipline against stage-level checkpointing —
//! experiment E14 charts wasted work vs failure rate.

use haec_sim::rng::SimRng;
use std::fmt;

/// Recovery discipline for a failed stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RestartPolicy {
    /// Classical: any failure aborts the query; restart from stage 0.
    FullRestart,
    /// Hadoop-style: completed stages are checkpointed; only the failing
    /// stage repeats.
    Checkpoint,
}

impl fmt::Display for RestartPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestartPolicy::FullRestart => f.write_str("full-restart"),
            RestartPolicy::Checkpoint => f.write_str("checkpoint"),
        }
    }
}

/// Outcome of running one staged query to completion under failures.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RobustReport {
    /// Work units that contributed to the final answer.
    pub useful_units: u64,
    /// Work units executed in total (≥ useful).
    pub executed_units: u64,
    /// Failures injected.
    pub failures: u64,
    /// Checkpointing overhead units charged (checkpoint policy only).
    pub checkpoint_units: u64,
}

impl RobustReport {
    /// Executed-but-discarded work.
    pub fn wasted_units(&self) -> u64 {
        self.executed_units + self.checkpoint_units - self.useful_units
    }

    /// Fraction of all executed work that was wasted.
    pub fn waste_fraction(&self) -> f64 {
        let total = self.executed_units + self.checkpoint_units;
        if total == 0 {
            0.0
        } else {
            self.wasted_units() as f64 / total as f64
        }
    }
}

/// Fraction of a stage's work charged as checkpoint overhead.
pub const CHECKPOINT_OVERHEAD: f64 = 0.05;

/// Runs a staged pipeline (stage i = `stages[i]` work units) to
/// completion, injecting a failure after each executed unit with
/// probability `unit_failure_prob`, recovering per `policy`.
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `unit_failure_prob` is not in `[0, 1)` (1.0 would never
/// terminate).
pub fn run_with_failures(
    stages: &[u64],
    unit_failure_prob: f64,
    policy: RestartPolicy,
    seed: u64,
) -> RobustReport {
    assert!((0.0..1.0).contains(&unit_failure_prob), "failure probability must be in [0,1)");
    let mut rng = SimRng::seed(seed);
    let mut report = RobustReport::default();
    let mut stage = 0usize;

    while stage < stages.len() {
        // Attempt the current stage from its start.
        let units = stages[stage];
        let mut done = 0u64;
        let mut failed = false;
        while done < units {
            report.executed_units += 1;
            done += 1;
            if unit_failure_prob > 0.0 && rng.flip(unit_failure_prob) {
                report.failures += 1;
                failed = true;
                break;
            }
        }
        if failed {
            match policy {
                RestartPolicy::FullRestart => {
                    stage = 0; // everything is discarded
                }
                RestartPolicy::Checkpoint => {
                    // retry the same stage; prior stages stay durable
                }
            }
            continue;
        }
        // Stage complete.
        if policy == RestartPolicy::Checkpoint {
            report.checkpoint_units += ((units as f64) * CHECKPOINT_OVERHEAD).ceil() as u64;
        }
        stage += 1;
    }
    // Exactly one copy of every stage's work ends up in the answer; all
    // earlier executions of the same units were waste.
    report.useful_units = stages.iter().sum();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const STAGES: [u64; 4] = [200, 400, 300, 100];

    #[test]
    fn no_failures_no_waste_for_full_restart() {
        let r = run_with_failures(&STAGES, 0.0, RestartPolicy::FullRestart, 1);
        assert_eq!(r.failures, 0);
        assert_eq!(r.useful_units, 1000);
        assert_eq!(r.executed_units, 1000);
        assert_eq!(r.wasted_units(), 0);
    }

    #[test]
    fn checkpoint_overhead_without_failures() {
        let r = run_with_failures(&STAGES, 0.0, RestartPolicy::Checkpoint, 1);
        assert_eq!(r.useful_units, 1000);
        // 5% overhead, per-stage ceil.
        assert_eq!(r.checkpoint_units, 10 + 20 + 15 + 5);
        assert!(r.waste_fraction() < 0.05);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = run_with_failures(&STAGES, 0.001, RestartPolicy::FullRestart, 7);
        let b = run_with_failures(&STAGES, 0.001, RestartPolicy::FullRestart, 7);
        assert_eq!(a, b);
        let c = run_with_failures(&STAGES, 0.001, RestartPolicy::FullRestart, 8);
        // Different seed very likely differs in executed units.
        assert!(a != c || a.failures == c.failures);
    }

    #[test]
    fn checkpoint_wastes_less_under_failures() {
        // Aggregate over seeds: any single stream can dodge failures
        // entirely (P ≈ 0.998^1000 ≈ 13%), which would make the
        // comparison degenerate.
        let p = 0.002;
        let (mut full_waste, mut ckpt_waste) = (0u64, 0u64);
        for seed in 0..16 {
            let full = run_with_failures(&STAGES, p, RestartPolicy::FullRestart, seed);
            let ckpt = run_with_failures(&STAGES, p, RestartPolicy::Checkpoint, seed);
            assert_eq!(full.useful_units, 1000);
            assert_eq!(ckpt.useful_units, 1000);
            full_waste += full.wasted_units();
            ckpt_waste += ckpt.wasted_units();
        }
        assert!(ckpt_waste < full_waste, "checkpoint {ckpt_waste} vs full {full_waste}");
    }

    #[test]
    fn waste_grows_with_failure_rate() {
        let mut last = -1.0;
        for p in [0.0, 0.001, 0.004] {
            let r = run_with_failures(&STAGES, p, RestartPolicy::FullRestart, 99);
            let w = r.waste_fraction();
            assert!(w >= last, "waste fell from {last} to {w} at p={p}");
            last = w;
        }
    }

    #[test]
    fn long_queries_hurt_full_restart_more() {
        // Same total work, one long stage vs many short ones: with full
        // restart the long pipeline wastes at least as much work.
        let p = 0.001;
        let long = run_with_failures(&[4000], p, RestartPolicy::FullRestart, 5);
        let short = run_with_failures(&[500; 8], p, RestartPolicy::Checkpoint, 5);
        assert!(long.wasted_units() >= short.wasted_units());
    }

    #[test]
    fn empty_pipeline() {
        let r = run_with_failures(&[], 0.5, RestartPolicy::Checkpoint, 1);
        assert_eq!(r.executed_units, 0);
        assert_eq!(r.waste_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "failure probability")]
    fn bad_probability_panics() {
        run_with_failures(&[1], 1.0, RestartPolicy::FullRestart, 1);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", RestartPolicy::Checkpoint), "checkpoint");
    }
}
