//! The crate-wide error type.

use haec_columnar::value::DataType;
use haec_energy::units::Joules;
use std::fmt;

/// Errors surfaced by the database facade.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// The referenced table does not exist.
    NoSuchTable(
        /// Table name.
        String,
    ),
    /// A table with this name already exists.
    TableExists(
        /// Table name.
        String,
    ),
    /// The referenced column does not exist.
    NoSuchColumn {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// A value did not match the column type.
    TypeMismatch {
        /// Column name.
        column: String,
        /// The column's type.
        expected: DataType,
    },
    /// A strict-schema table rejected an unknown or missing field.
    SchemaViolation(
        /// Human-readable reason.
        String,
    ),
    /// The referenced index does not exist.
    NoSuchIndex {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// Query execution failed in the engine.
    Exec(
        /// The execution-layer message.
        String,
    ),
    /// The query is malformed (e.g. aggregate without value column).
    BadQuery(
        /// Human-readable reason.
        String,
    ),
    /// The query was cancelled (explicitly or by deadline) before it
    /// completed. The engine stops within one morsel of the signal and
    /// bills the bytes it already touched — `partial_energy` is that
    /// honest partial charge, already applied to the meter.
    Cancelled {
        /// Energy consumed by the work done before the cancel landed.
        partial_energy: Joules,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NoSuchTable(t) => write!(f, "no such table {t:?}"),
            DbError::TableExists(t) => write!(f, "table {t:?} already exists"),
            DbError::NoSuchColumn { table, column } => {
                write!(f, "no column {column:?} in table {table:?}")
            }
            DbError::TypeMismatch { column, expected } => {
                write!(f, "column {column:?} expects {expected}")
            }
            DbError::SchemaViolation(msg) => write!(f, "schema violation: {msg}"),
            DbError::NoSuchIndex { table, column } => {
                write!(f, "no index on {table:?}.{column:?}")
            }
            DbError::Exec(msg) => write!(f, "execution failed: {msg}"),
            DbError::BadQuery(msg) => write!(f, "bad query: {msg}"),
            DbError::Cancelled { partial_energy } => {
                write!(f, "query cancelled after spending {partial_energy}")
            }
        }
    }
}

impl std::error::Error for DbError {}

impl From<haec_exec::pipeline::ExecError> for DbError {
    fn from(e: haec_exec::pipeline::ExecError) -> Self {
        DbError::Exec(e.to_string())
    }
}

/// Crate-wide result alias.
pub type DbResult<T> = Result<T, DbError>;

/// Query-facing alias of [`DbError`]: the name callers match when they
/// care about per-query outcomes like
/// [`Cancelled`](DbError::Cancelled).
pub type QueryError = DbError;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(format!("{}", DbError::NoSuchTable("t".into())), "no such table \"t\"");
        assert!(format!("{}", DbError::TypeMismatch { column: "c".into(), expected: DataType::Int64 })
            .contains("int64"));
        assert!(format!("{}", DbError::SchemaViolation("x".into())).contains("x"));
    }

    #[test]
    fn from_exec_error() {
        let e = haec_exec::pipeline::ExecError::MissingColumn("c".into());
        let d: DbError = e.into();
        assert!(matches!(d, DbError::Exec(_)));
    }
}
