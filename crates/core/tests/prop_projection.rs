//! Differential property tests for codes-to-client projections: string
//! columns flow to the client `Chunk` as dictionary codes + one shared
//! output dictionary, and must decode to byte-identical strings vs a
//! naive decode-everything reference — across flat, mixed and fully
//! merged layouts, sparse and dense hit densities, and post-merge
//! dictionary growth (delta values the global dictionary has never
//! seen).

use haec_columnar::value::CmpOp;
use haecdb::prelude::*;
use proptest::prelude::*;

/// Tag pool spanning repeats and the empty string (the sentinel value).
const TAGS: [&str; 5] = ["alpha", "beta", "gamma", "delta", ""];

fn ops() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn make_db() -> Database {
    let db = Database::new();
    db.create_table(
        "t",
        &[
            ("id", DataType::Int64),
            ("amount", DataType::Int64),
            ("tag", DataType::Str),
            ("name", DataType::Str),
        ],
    )
    .unwrap();
    db.set_merge_threshold("t", usize::MAX).unwrap();
    db
}

/// One logical row: the id/amount payload plus both decoded strings —
/// the naive reference keeps plain `String`s, never codes.
type Row = (i64, i64, String, String);

fn insert_row(db: &mut Database, row: &Row) {
    let (id, amount, tag, name) = row;
    db.insert(
        "t",
        &Record::new()
            .with("id", *id)
            .with("amount", *amount)
            .with("tag", tag.as_str())
            .with("name", name.as_str()),
    )
    .unwrap();
}

proptest! {
    /// Random rows, a random merge cadence (flat → mixed → merged), a
    /// post-merge tail carrying *fresh* dictionary values, and a random
    /// filter driving the hit density from empty through sparse to
    /// dense: every projected string must decode byte-identically to
    /// the plain-Rust reference, through both the whole-chunk accessors
    /// and per-row `Chunk::row`.
    #[test]
    fn codes_to_client_projection_matches_naive_reference(
        base in proptest::collection::vec((0i64..300, -50i64..50, 0usize..5), 1..250),
        fresh in proptest::collection::vec((0i64..300, -50i64..50, 0usize..3), 0..40),
        merge_every in 1usize..120,
        op in ops(),
        lit in -60i64..360,
        narrow in any::<bool>(),
    ) {
        // The reference rows, with strings decoded eagerly.
        let mut reference: Vec<Row> = base
            .iter()
            .map(|&(id, amount, t)| (id, amount, TAGS[t].to_string(), format!("n{}", id % 7)))
            .collect();
        // Post-merge rows use values no merged dictionary has interned,
        // so the delta-local dictionary genuinely grows past the global.
        reference.extend(
            fresh.iter().map(|&(id, amount, t)| (id, amount, format!("fresh-{t}"), format!("n{}", id % 7))),
        );

        let mut flat = make_db();
        let mut seg = make_db();
        for (i, row) in reference.iter().enumerate() {
            insert_row(&mut flat, row);
            insert_row(&mut seg, row);
            // Merges stop before the fresh tail, leaving it delta-only.
            if i < base.len() && (i + 1) % merge_every == 0 {
                seg.merge("t").unwrap();
            }
        }

        let q = Query::scan("t").filter("id", op, lit);
        let q = if narrow { q.select(["tag", "name"]) } else { q };
        let expected: Vec<&Row> = reference.iter().filter(|r| op.eval(r.0, lit)).collect();

        for (label, db) in [("flat", &mut flat), ("segmented", &mut seg)] {
            let out = db.execute(&q).unwrap();
            prop_assert_eq!(out.rows.rows(), expected.len(), "{}: row count", label);
            let tags = out.rows.column("tag").unwrap().as_str().unwrap();
            let names = out.rows.column("name").unwrap().as_str().unwrap();
            for (i, want) in expected.iter().enumerate() {
                prop_assert_eq!(tags.get(i), Some(want.2.as_str()), "{}: tag row {}", label, i);
                prop_assert_eq!(names.get(i), Some(want.3.as_str()), "{}: name row {}", label, i);
                if !narrow {
                    let row = out.rows.row(i).unwrap();
                    prop_assert_eq!(&row[0], &Value::Int(want.0), "{}: id row {}", label, i);
                    prop_assert_eq!(&row[1], &Value::Int(want.1), "{}: amount row {}", label, i);
                }
            }
            // The shared output dictionary is exact: one entry per
            // distinct projected value, regardless of how many code
            // spaces (global, delta-local, sentinel) fed it.
            let distinct: std::collections::BTreeSet<&str> =
                expected.iter().map(|r| r.2.as_str()).collect();
            prop_assert_eq!(tags.dict_size(), distinct.len(), "{}: output dictionary is minimal", label);
        }
    }

    /// A snapshot pinned before a dictionary-growing merge keeps
    /// decoding its string codes against the pinned dictionary state:
    /// rows and values the merge (and the post-merge tail) interned
    /// later are invisible, and the projection still decodes
    /// byte-identically to the reference prefix.
    #[test]
    fn pinned_snapshot_decodes_against_pinned_dictionary(
        base in proptest::collection::vec((0i64..300, -50i64..50, 0usize..5), 1..150),
        tail in proptest::collection::vec((0i64..300, -50i64..50, 0usize..3), 1..60),
        op in ops(),
        lit in -60i64..360,
    ) {
        let reference: Vec<Row> = base
            .iter()
            .map(|&(id, amount, t)| (id, amount, TAGS[t].to_string(), format!("n{}", id % 7)))
            .collect();
        let mut db = make_db();
        for row in &reference {
            insert_row(&mut db, row);
        }

        // Pin now: the tail below carries values no dictionary has seen,
        // and the merge folds them into a *grown* global dictionary.
        let snap = db.begin_snapshot();

        for &(id, amount, t) in &tail {
            db.insert(
                "t",
                &Record::new()
                    .with("id", id)
                    .with("amount", amount)
                    .with("tag", format!("fresh-{t}").as_str())
                    .with("name", format!("n{}", id % 7).as_str()),
            )
            .unwrap();
        }
        db.merge("t").unwrap();

        let q = Query::scan("t").filter("id", op, lit).select(["tag", "name"]);
        let expected: Vec<&Row> = reference.iter().filter(|r| op.eval(r.0, lit)).collect();
        let out = snap.execute(&q).unwrap();
        prop_assert_eq!(out.rows.rows(), expected.len(), "pinned snapshot: row count");
        let tags = out.rows.column("tag").unwrap().as_str().unwrap();
        let names = out.rows.column("name").unwrap().as_str().unwrap();
        for (i, want) in expected.iter().enumerate() {
            prop_assert_eq!(tags.get(i), Some(want.2.as_str()), "pinned snapshot: tag row {}", i);
            prop_assert_eq!(names.get(i), Some(want.3.as_str()), "pinned snapshot: name row {}", i);
        }
        // The later dictionary growth is invisible: no `fresh-*` value
        // can appear in the snapshot's output dictionary.
        let distinct: std::collections::BTreeSet<&str> =
            expected.iter().map(|r| r.2.as_str()).collect();
        prop_assert_eq!(tags.dict_size(), distinct.len(), "pinned snapshot: dictionary is minimal");

        // Control: a fresh snapshot sees base + tail through the merged,
        // grown dictionary.
        let all = db.table("t").unwrap().rows();
        prop_assert_eq!(all, reference.len() + tail.len());
    }
}
