//! Pool stress tests: N concurrent governor-granted queries (scans,
//! aggregates, group-bys, joins) racing insert+merge writers over one
//! shared worker pool — the `prop_mvcc.rs` differential shape, extended
//! to pooled execution.
//!
//! Every query runs with an explicit [`ExecOpts`] grant (`dop > 0`), so
//! even these small tables take the pooled dispatch path that a query
//! server drives, and every answer is checked against closed-form
//! prefix references (rows become visible in insertion order, so any
//! snapshot answers as a frozen prefix would). Structural facts checked
//! alongside correctness: the pool never creates a thread after
//! construction, and a morsel gate with budget 1 serializes in-flight
//! morsels without changing any answer.

use haec_columnar::value::CmpOp;
use haec_energy::machine::MachineSpec;
use haecdb::prelude::*;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const WORKERS: usize = 8;
const REGIONS: i64 = 4;

fn amount(i: i64) -> i64 {
    (i * 31 + 7) % 100 - 50
}
fn region(i: i64) -> i64 {
    i % REGIONS
}

fn record(i: i64) -> Record {
    Record::new().with("id", i).with("region", region(i)).with("amount", amount(i))
}

/// A database over its own explicit 8-worker pool (not the process
/// global), so `threads_spawned` is attributable to this test alone.
fn make_db() -> Database {
    let pool = Arc::new(WorkerPool::new(WORKERS));
    let db = Database::with_machine_and_pool(MachineSpec::commodity_2013().with_cores(WORKERS), pool);
    db.create_table(
        "t",
        &[("id", DataType::Int64), ("region", DataType::Int64), ("amount", DataType::Int64)],
    )
    .unwrap();
    db.set_merge_threshold("t", usize::MAX).unwrap();
    db.create_table("dim", &[("region", DataType::Int64), ("w", DataType::Int64)]).unwrap();
    for r in 0..REGIONS {
        db.insert("dim", &Record::new().with("region", r).with("w", r * 10)).unwrap();
    }
    db
}

/// Closed-form prefix answers (see `prop_mvcc.rs`).
struct Reference {
    total: usize,
    sum: Vec<i64>,
    nonneg: Vec<usize>,
    by_region: Vec<[usize; REGIONS as usize]>,
}

impl Reference {
    fn new(total: usize) -> Reference {
        let mut sum = vec![0i64; total + 1];
        let mut nonneg = vec![0usize; total + 1];
        let mut by_region = vec![[0usize; REGIONS as usize]; total + 1];
        for i in 0..total as i64 {
            let n = i as usize;
            sum[n + 1] = sum[n] + amount(i);
            nonneg[n + 1] = nonneg[n] + usize::from(amount(i) >= 0);
            by_region[n + 1] = by_region[n];
            by_region[n + 1][region(i) as usize] += 1;
        }
        Reference { total, sum, nonneg, by_region }
    }

    /// Runs the query mix on one pinned snapshot under `opts` and
    /// checks every answer against the prefix tables. Returns the
    /// snapshot's visible row count.
    fn check(&self, snap: &haecdb::DbSnapshot<'_>, opts: &ExecOpts, ctx: &str) -> usize {
        let n = snap.table("t").expect("table t pinned").rows();
        assert!(n <= self.total, "{ctx}: snapshot sees {n} rows, only {} inserted", self.total);

        let agg = |q: &Query| -> f64 {
            let out = snap.execute_opts(q, opts).unwrap();
            out.rows.row(0).unwrap()[0].as_float().unwrap()
        };
        let q = Query::scan("t").aggregate(AggKind::Count, "amount");
        assert_eq!(agg(&q) as usize, n, "{ctx}: COUNT(*)");
        let q = Query::scan("t").aggregate(AggKind::Sum, "amount");
        assert_eq!(agg(&q) as i64, self.sum[n], "{ctx}: SUM(amount)");
        let q = Query::scan("t").filter("amount", CmpOp::Ge, 0).aggregate(AggKind::Count, "amount");
        assert_eq!(agg(&q) as usize, self.nonneg[n], "{ctx}: filtered COUNT");

        let q = Query::scan("t").group_by("region").aggregate(AggKind::Count, "amount");
        let out = snap.execute_opts(&q, opts).unwrap();
        let want: Vec<(i64, usize)> = (0..REGIONS)
            .filter(|&r| self.by_region[n][r as usize] > 0)
            .map(|r| (r, self.by_region[n][r as usize]))
            .collect();
        assert_eq!(out.rows.rows(), want.len(), "{ctx}: grouped group count");
        for (row, (key, cnt)) in want.iter().enumerate() {
            let r = out.rows.row(row).unwrap();
            assert_eq!(r[0], Value::Int(*key), "{ctx}: grouped key");
            assert_eq!(r[1].as_float().unwrap() as usize, *cnt, "{ctx}: grouped COUNT for {key}");
        }

        // Each fact row matches exactly one dim row.
        let q = Query::scan("t").join("dim", "region", "region");
        let out = snap.execute_opts(&q, opts).unwrap();
        assert_eq!(out.rows.rows(), n, "{ctx}: join output rows");
        n
    }
}

/// One step of the writer's schedule.
#[derive(Clone, Copy, Debug)]
enum Op {
    Insert(usize),
    Merge,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (1usize..=64).prop_map(Op::Insert),
            (1usize..=64).prop_map(Op::Insert),
            (1usize..=64).prop_map(Op::Insert),
            Just(Op::Merge),
        ],
        1..=10,
    )
}

fn total_rows(ops: &[Op]) -> usize {
    ops.iter().map(|op| if let Op::Insert(n) = op { *n } else { 0 }).sum()
}

proptest! {
    /// The centerpiece: four pooled readers (each with a different
    /// parallelism grant and morsel size) race an insert+merge writer
    /// over one shared 8-worker pool. Every snapshot answers exactly as
    /// the serial prefix reference dictates, and the pool never creates
    /// a thread while the race runs.
    #[test]
    fn concurrent_pooled_queries_match_serial_reference(schedule in ops()) {
        let db = make_db();
        let reference = Reference::new(total_rows(&schedule));
        let spawned_before = db.pool().threads_spawned();
        let done = AtomicBool::new(false);

        thread::scope(|scope| {
            let writer = scope.spawn(|| {
                let mut next = 0i64;
                for op in &schedule {
                    match op {
                        Op::Insert(n) => {
                            for _ in 0..*n {
                                db.insert("t", &record(next)).unwrap();
                                next += 1;
                            }
                        }
                        Op::Merge => {
                            db.merge("t").unwrap();
                        }
                    }
                }
                done.store(true, Ordering::Release);
            });
            let readers: Vec<_> = (0..4)
                .map(|reader| {
                    let done = &done;
                    let db = &db;
                    let reference = &reference;
                    // Different grants per reader: serial, half the
                    // pool, the whole pool, oversubscribed — with
                    // morsel sizes from minimum to default.
                    let opts = ExecOpts {
                        dop: [1, 4, 8, 12][reader],
                        morsel_rows: [1024, 4096, 16 * 1024, 2048][reader],
                        gate: None,
                        cancel: None,
                    };
                    scope.spawn(move || {
                        let mut last_n = 0usize;
                        let mut iterations = 0usize;
                        loop {
                            let finished = done.load(Ordering::Acquire);
                            let snap = db.begin_snapshot();
                            let ctx = format!("reader {reader} iteration {iterations}");
                            let n = reference.check(&snap, &opts, &ctx);
                            assert!(n >= last_n, "{ctx}: visible prefix shrank: {last_n} -> {n}");
                            last_n = n;
                            iterations += 1;
                            if finished {
                                break;
                            }
                        }
                        assert_eq!(last_n, reference.total, "reader {reader}: final snapshot complete");
                    })
                })
                .collect();
            writer.join().unwrap();
            for r in readers {
                r.join().unwrap();
            }
        });

        prop_assert_eq!(
            db.pool().threads_spawned(),
            spawned_before,
            "queries must never create threads"
        );
        // The quiesced database agrees with the full-prefix reference at
        // every grant level.
        for dop in [1, WORKERS] {
            reference.check(
                &db.begin_snapshot(),
                &ExecOpts { dop, ..ExecOpts::default() },
                &format!("final dop={dop}"),
            );
        }
    }

    /// A budget-1 morsel gate serializes in-flight morsels — the
    /// high-water mark proves it — without changing any answer.
    #[test]
    fn gate_budget_one_serializes_without_changing_answers(rows in 1usize..600, merged in any::<bool>()) {
        let db = make_db();
        let reference = Reference::new(rows);
        for i in 0..rows as i64 {
            db.insert("t", &record(i)).unwrap();
        }
        if merged {
            db.merge("t").unwrap();
        }
        let gate = MorselGate::new(1);
        let opts = ExecOpts { dop: WORKERS, morsel_rows: 1024, gate: Some(Arc::clone(&gate)), cancel: None };
        reference.check(&db.begin_snapshot(), &opts, "gated");
        prop_assert!(gate.high_water() <= 1, "budget-1 gate admitted {} concurrent morsels", gate.high_water());
        prop_assert_eq!(gate.inflight(), 0, "all permits returned");
    }
}

/// Every grant level answers identically on a mixed main+delta table —
/// the dop-1 serial path is the reference for the pooled paths.
#[test]
fn all_grant_levels_agree() {
    let db = make_db();
    let rows = 5_000i64;
    for i in 0..rows {
        db.insert("t", &record(i)).unwrap();
    }
    db.merge("t").unwrap();
    for i in rows..rows + 2_500 {
        db.insert("t", &record(i)).unwrap();
    }
    let reference = Reference::new((rows + 2_500) as usize);
    for dop in [1, 2, WORKERS, 2 * WORKERS] {
        for morsel_rows in [1024, 16 * 1024, 64 * 1024] {
            let opts = ExecOpts { dop, morsel_rows, gate: None, cancel: None };
            reference.check(&db.begin_snapshot(), &opts, &format!("dop={dop} morsel={morsel_rows}"));
        }
    }
}
