//! Differential MVCC property tests: snapshot reads racing concurrent
//! inserts and merges must be observationally identical to a serial
//! single-version reference.
//!
//! The key structural fact the tests lean on: rows become visible in
//! insertion order, so the visible set of *any* snapshot is a prefix of
//! the insertion sequence. With deterministic per-row payloads the
//! serial reference collapses to closed-form prefix tables — a snapshot
//! that sees `n` rows must answer every query exactly as a frozen table
//! holding rows `0..n` would, no matter how many merges swapped the
//! physical layout underneath it.

use haec_columnar::value::CmpOp;
use haecdb::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

const REGIONS: i64 = 4;
const TAGS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// Deterministic payload of the `i`-th inserted row.
fn amount(i: i64) -> i64 {
    (i * 31 + 7) % 100 - 50
}
fn region(i: i64) -> i64 {
    i % REGIONS
}
fn tag(i: i64) -> &'static str {
    TAGS[(i % 4) as usize]
}

fn record(i: i64) -> Record {
    Record::new().with("id", i).with("region", region(i)).with("amount", amount(i)).with("tag", tag(i))
}

/// Closed-form answers for every visible prefix length `0..=total`.
struct Reference {
    total: usize,
    sum: Vec<i64>,
    nonneg: Vec<usize>,
    by_region: Vec<[usize; REGIONS as usize]>,
}

impl Reference {
    fn new(total: usize) -> Reference {
        let mut sum = vec![0i64; total + 1];
        let mut nonneg = vec![0usize; total + 1];
        let mut by_region = vec![[0usize; REGIONS as usize]; total + 1];
        for i in 0..total as i64 {
            let n = i as usize;
            sum[n + 1] = sum[n] + amount(i);
            nonneg[n + 1] = nonneg[n] + usize::from(amount(i) >= 0);
            by_region[n + 1] = by_region[n];
            by_region[n + 1][region(i) as usize] += 1;
        }
        Reference { total, sum, nonneg, by_region }
    }

    /// Checks every supported query shape against the prefix answers for
    /// one pinned snapshot. Returns the snapshot's visible row count.
    fn check(&self, snap: &haecdb::DbSnapshot<'_>, ctx: &str) -> usize {
        let t = snap.table("t").expect("table t pinned");
        let n = t.rows();
        assert!(n <= self.total, "{ctx}: snapshot sees {n} rows, only {} inserted", self.total);
        let dim = snap.table("dim").expect("table dim pinned");
        assert_eq!(dim.rows(), REGIONS as usize, "{ctx}: dim table is static");

        let count = |q: &Query| -> f64 {
            let out = snap.execute(q).unwrap();
            out.rows.row(0).unwrap()[0].as_float().unwrap()
        };
        // COUNT over the full snapshot equals the pinned prefix length —
        // and stays equal when asked again after other queries ran (the
        // snapshot is immutable, not merely "current at first use").
        let q_count = Query::scan("t").aggregate(AggKind::Count, "amount");
        assert_eq!(count(&q_count) as usize, n, "{ctx}: COUNT(*)");

        let q_sum = Query::scan("t").aggregate(AggKind::Sum, "amount");
        assert_eq!(count(&q_sum) as i64, self.sum[n], "{ctx}: SUM(amount) over {n} rows");

        let q_filtered = Query::scan("t").filter("amount", CmpOp::Ge, 0).aggregate(AggKind::Count, "amount");
        assert_eq!(count(&q_filtered) as usize, self.nonneg[n], "{ctx}: filtered COUNT");

        // Grouped counts: exactly the non-empty regions of the prefix,
        // keyed in sorted order.
        let q_grouped = Query::scan("t").group_by("region").aggregate(AggKind::Count, "amount");
        let out = snap.execute(&q_grouped).unwrap();
        let want: BTreeMap<i64, usize> = (0..REGIONS)
            .filter(|&r| self.by_region[n][r as usize] > 0)
            .map(|r| (r, self.by_region[n][r as usize]))
            .collect();
        assert_eq!(out.rows.rows(), want.len(), "{ctx}: grouped COUNT group count");
        for (row, (key, cnt)) in want.iter().enumerate() {
            let r = out.rows.row(row).unwrap();
            assert_eq!(r[0], Value::Int(*key), "{ctx}: grouped COUNT key");
            assert_eq!(r[1].as_float().unwrap() as usize, *cnt, "{ctx}: grouped COUNT for region {key}");
        }

        // Every fact row matches exactly one dim row, so the equi-join
        // emits one output row per visible fact row — a torn snapshot
        // (fact rows from one epoch, dim from another) would break this.
        let q_join = Query::scan("t").join("dim", "region", "region");
        let out = snap.execute(&q_join).unwrap();
        assert_eq!(out.rows.rows(), n, "{ctx}: join output rows");

        // COUNT again on the same snapshot: merges and inserts that
        // happened meanwhile must be invisible.
        assert_eq!(count(&q_count) as usize, n, "{ctx}: COUNT(*) repeated on same snapshot");
        n
    }
}

fn make_db() -> Database {
    let db = Database::new();
    db.create_table(
        "t",
        &[
            ("id", DataType::Int64),
            ("region", DataType::Int64),
            ("amount", DataType::Int64),
            ("tag", DataType::Str),
        ],
    )
    .unwrap();
    db.set_merge_threshold("t", usize::MAX).unwrap();
    db.create_table("dim", &[("region", DataType::Int64), ("name", DataType::Str)]).unwrap();
    for r in 0..REGIONS {
        db.insert("dim", &Record::new().with("region", r).with("name", TAGS[r as usize])).unwrap();
    }
    db
}

/// One step of the writer's schedule.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Insert the next `n` rows of the deterministic sequence.
    Insert(usize),
    /// Fold the delta into compressed segments (swap the segment set).
    Merge,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    // The insert arm is repeated to weight the schedule roughly 3:1
    // toward inserts (the shim's `prop_oneof!` picks uniformly).
    proptest::collection::vec(
        prop_oneof![
            (1usize..=64).prop_map(Op::Insert),
            (1usize..=64).prop_map(Op::Insert),
            (1usize..=64).prop_map(Op::Insert),
            Just(Op::Merge),
        ],
        1..=12,
    )
}

fn total_rows(ops: &[Op]) -> usize {
    ops.iter().map(|op| if let Op::Insert(n) = op { *n } else { 0 }).sum()
}

proptest! {
    /// The centerpiece: two reader threads continuously pin snapshots and
    /// run scans, aggregates, group-bys and joins while a writer thread
    /// races inserts and merge swaps against them. Every snapshot must
    /// answer exactly as the serial prefix reference dictates — no torn
    /// reads, no rows seen twice across a merge swap — and both the
    /// per-reader timestamps and the visible prefixes must be monotone.
    #[test]
    fn concurrent_snapshots_match_serial_reference(schedule in ops()) {
        let db = make_db();
        let reference = Reference::new(total_rows(&schedule));
        let done = AtomicBool::new(false);

        thread::scope(|scope| {
            let writer = scope.spawn(|| {
                let mut next = 0i64;
                for op in &schedule {
                    match op {
                        Op::Insert(n) => {
                            for _ in 0..*n {
                                db.insert("t", &record(next)).unwrap();
                                next += 1;
                            }
                        }
                        Op::Merge => {
                            db.merge("t").unwrap();
                        }
                    }
                }
                done.store(true, Ordering::Release);
            });
            let readers: Vec<_> = (0..2)
                .map(|reader| {
                    let done = &done;
                    let db = &db;
                    let reference = &reference;
                    scope.spawn(move || {
                        let mut last_ts = Timestamp::ZERO;
                        let mut last_n = 0usize;
                        let mut iterations = 0usize;
                        loop {
                            let finished = done.load(Ordering::Acquire);
                            let snap = db.begin_snapshot();
                            let ctx = format!("reader {reader} iteration {iterations}");
                            assert!(snap.timestamp() > last_ts, "{ctx}: timestamps monotone");
                            last_ts = snap.timestamp();
                            let n = reference.check(&snap, &ctx);
                            assert!(n >= last_n, "{ctx}: visible prefix shrank: {last_n} -> {n}");
                            last_n = n;
                            iterations += 1;
                            if finished {
                                break;
                            }
                        }
                        // `done` was set before this reader's final pin, so
                        // the last snapshot must be complete.
                        assert_eq!(last_n, reference.total, "reader {reader}: final snapshot complete");
                    })
                })
                .collect();
            writer.join().unwrap();
            for r in readers {
                r.join().unwrap();
            }
        });

        // The quiesced database agrees with the full-prefix reference.
        reference.check(&db.begin_snapshot(), "final");
    }

    /// Serial history: a snapshot taken after every schedule step keeps
    /// answering for its own prefix even after all later inserts and
    /// merges — including a final merge that retires every segment set
    /// the pinned snapshots still reference.
    #[test]
    fn old_snapshots_survive_later_inserts_and_merges(schedule in ops()) {
        let db = make_db();
        let reference = Reference::new(total_rows(&schedule));
        let mut pinned = vec![(db.begin_snapshot(), 0usize)];
        let mut next = 0i64;
        for op in &schedule {
            match op {
                Op::Insert(n) => {
                    for _ in 0..*n {
                        db.insert("t", &record(next)).unwrap();
                        next += 1;
                    }
                }
                Op::Merge => {
                    db.merge("t").unwrap();
                }
            }
            pinned.push((db.begin_snapshot(), next as usize));
        }
        db.merge("t").unwrap();
        for (i, (snap, expect_n)) in pinned.iter().enumerate() {
            let n = reference.check(snap, &format!("pinned snapshot {i}"));
            prop_assert_eq!(n, *expect_n, "pinned snapshot {} sees its own prefix", i);
        }
    }

    /// Read-your-own-writes: a transaction's overlay rows are visible to
    /// its own queries (on top of its pinned base), invisible to
    /// concurrent snapshots, and durable exactly after commit.
    #[test]
    fn transaction_overlay_is_private_until_commit(
        base_rows in 0usize..96,
        pending in 1usize..32,
    ) {
        let db = make_db();
        let reference = Reference::new(base_rows + pending);
        for i in 0..base_rows as i64 {
            db.insert("t", &record(i)).unwrap();
        }
        let mut txn = db.begin_transaction();
        for i in 0..pending as i64 {
            txn.insert("t", record(base_rows as i64 + i)).unwrap();
        }
        prop_assert_eq!(txn.pending_writes(), pending);

        // The transaction sees base + overlay …
        let q_count = Query::scan("t").aggregate(AggKind::Count, "amount");
        let q_sum = Query::scan("t").aggregate(AggKind::Sum, "amount");
        let got = txn.execute(&q_count).unwrap().rows.row(0).unwrap()[0].as_float().unwrap();
        prop_assert_eq!(got as usize, base_rows + pending, "txn sees its own writes");
        let got = txn.execute(&q_sum).unwrap().rows.row(0).unwrap()[0].as_float().unwrap();
        prop_assert_eq!(got as i64, reference.sum[base_rows + pending], "txn overlay SUM");

        // … while a concurrent snapshot sees only the committed base …
        let outside = db.begin_snapshot();
        let n = reference.check(&outside, "snapshot concurrent with txn");
        prop_assert_eq!(n, base_rows, "overlay invisible before commit");

        // … and after commit a fresh snapshot sees everything, while the
        // old snapshot still sees the base.
        let commit_ts = txn.commit().unwrap();
        let after = db.begin_snapshot();
        prop_assert!(after.timestamp() > commit_ts);
        let n = reference.check(&after, "snapshot after commit");
        prop_assert_eq!(n, base_rows + pending, "overlay visible after commit");
        let n = reference.check(&outside, "old snapshot after commit");
        prop_assert_eq!(n, base_rows, "old snapshot unaffected by commit");
    }

    /// Regression for the *sorting* merge racing pinned readers: a
    /// table with a declared sort key swaps in permuted, sorted segment
    /// sets while readers continuously pin snapshots. Every pinned view
    /// must be internally consistent — each segment's sortedness claim
    /// is true of its actual contents, the zone maps report exactly the
    /// flags the pinned segments carry (never recomputed against a newer
    /// layout), the delta zone never claims sortedness — and answers
    /// must still match the serial prefix reference (the stable sort
    /// respects MVCC prefix visibility).
    #[test]
    fn sorting_merge_keeps_pinned_snapshots_consistent(schedule in ops()) {
        let key = |i: i64| (i * 31 + 7) % 100; // duplicates, unsorted arrival
        let db = Database::new();
        db.create_table_sorted("s", &[("k", DataType::Int64), ("v", DataType::Int64)], "k").unwrap();
        db.set_merge_threshold("s", usize::MAX).unwrap();
        let total = total_rows(&schedule);
        let mut sum = vec![0i64; total + 1];
        for i in 0..total {
            sum[i + 1] = sum[i] + key(i as i64);
        }
        let done = AtomicBool::new(false);

        thread::scope(|scope| {
            let writer = scope.spawn(|| {
                let mut next = 0i64;
                for op in &schedule {
                    match op {
                        Op::Insert(n) => {
                            for _ in 0..*n {
                                db.insert("s", &Record::new().with("k", key(next)).with("v", next))
                                    .unwrap();
                                next += 1;
                            }
                        }
                        Op::Merge => {
                            db.merge("s").unwrap();
                        }
                    }
                }
                done.store(true, Ordering::Release);
            });
            let reader = scope.spawn(|| {
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let snap = db.begin_snapshot();
                    let t = snap.table("s").expect("table s pinned");
                    let n = t.rows();
                    let zones = t.zone_maps("k").expect("int sort key");
                    let segs = t.segments();
                    for (zi, seg) in segs.iter().enumerate() {
                        assert_eq!(
                            zones[zi].sorted,
                            seg.sorted_by() == Some(0),
                            "zone flag must mirror the pinned segment's claim"
                        );
                        if zones[zi].sorted {
                            let mut prev = i64::MIN;
                            for r in 0..seg.rows() {
                                let v = seg.get_int(0, r).expect("int sort key");
                                assert!(v >= prev, "claimed-sorted segment out of order");
                                prev = v;
                            }
                        }
                    }
                    if zones.len() > segs.len() {
                        assert!(!zones[segs.len()].sorted, "delta zone never claims sortedness");
                    }
                    let q = Query::scan("s").aggregate(AggKind::Sum, "k");
                    let got =
                        snap.execute(&q).unwrap().rows.row(0).unwrap()[0].as_float().unwrap();
                    assert_eq!(got as i64, sum[n], "prefix SUM(k) at n={n}");
                    if finished {
                        break;
                    }
                }
            });
            writer.join().unwrap();
            reader.join().unwrap();
        });

        // Quiesced: one last merge, then the fully-sorted layout still
        // answers the full-prefix reference.
        db.merge("s").unwrap();
        let snap = db.begin_snapshot();
        let q = Query::scan("s").aggregate(AggKind::Sum, "k");
        let got = snap.execute(&q).unwrap().rows.row(0).unwrap()[0].as_float().unwrap();
        prop_assert_eq!(got as i64, sum[total]);
        let t = snap.table("s").expect("pinned");
        if total > 0 {
            prop_assert!(t.zone_maps("k").expect("int sort key").iter().all(|z| z.sorted));
        }
    }

    /// Cancellation racing insert+merge: readers pin snapshots and run
    /// the aggregate pipeline under randomly drawn cancel tokens and
    /// deadlines while the writer churns. Two invariants, per query:
    ///
    /// * **completed ⇒ exact** — a query that runs to completion
    ///   answers precisely as the serial prefix reference dictates,
    ///   cancellation machinery in the options or not;
    /// * **cancelled ⇒ honest partial bill** — a cancelled query's
    ///   `partial_energy` never exceeds the energy of an uncancelled
    ///   twin executed on the *same* snapshot (partial work is a subset
    ///   of full work), and is never negative.
    #[test]
    fn cancelled_readers_bill_at_most_their_completed_twin(
        schedule in ops(),
        modes in proptest::collection::vec(0u8..5, 4..=12),
    ) {
        let db = make_db();
        let reference = Reference::new(total_rows(&schedule));
        let done = AtomicBool::new(false);

        thread::scope(|scope| {
            let writer = scope.spawn(|| {
                let mut next = 0i64;
                for op in &schedule {
                    match op {
                        Op::Insert(n) => {
                            for _ in 0..*n {
                                db.insert("t", &record(next)).unwrap();
                                next += 1;
                            }
                        }
                        Op::Merge => {
                            db.merge("t").unwrap();
                        }
                    }
                }
                done.store(true, Ordering::Release);
            });
            let readers: Vec<_> = (0..2)
                .map(|reader| {
                    let done = &done;
                    let db = &db;
                    let reference = &reference;
                    let modes = &modes;
                    scope.spawn(move || {
                        let q_sum = Query::scan("t").aggregate(AggKind::Sum, "amount");
                        let mut iterations = 0usize;
                        loop {
                            let finished = done.load(Ordering::Acquire);
                            let token = match modes[iterations % modes.len()] {
                                0 => None,
                                1 => {
                                    let t = CancelToken::new();
                                    t.cancel();
                                    Some(t)
                                }
                                // Already expired, lands at the first check.
                                2 => Some(CancelToken::deadline_in(std::time::Duration::ZERO)),
                                // Tiny: may land at any phase boundary.
                                3 => Some(CancelToken::deadline_in(
                                    std::time::Duration::from_micros(20),
                                )),
                                // Generous: never lands.
                                _ => Some(CancelToken::deadline_in(
                                    std::time::Duration::from_secs(300),
                                )),
                            };
                            let opts = ExecOpts { cancel: token, ..ExecOpts::default() };
                            let snap = db.begin_snapshot();
                            let n = snap.table("t").expect("table t pinned").rows();
                            let ctx = format!("reader {reader} iteration {iterations} n={n}");
                            // The uncancelled twin on the SAME snapshot is
                            // both the answer oracle and the energy bound.
                            let twin = snap.execute(&q_sum).unwrap();
                            assert_eq!(
                                twin.rows.row(0).unwrap()[0].as_float().unwrap() as i64,
                                reference.sum[n],
                                "{ctx}: twin answer"
                            );
                            match snap.execute_opts(&q_sum, &opts) {
                                Ok(out) => {
                                    assert_eq!(
                                        out.rows.row(0).unwrap()[0].as_float().unwrap() as i64,
                                        reference.sum[n],
                                        "{ctx}: completed under cancel machinery"
                                    );
                                }
                                Err(DbError::Cancelled { partial_energy }) => {
                                    assert!(
                                        partial_energy.joules() >= 0.0,
                                        "{ctx}: negative partial bill"
                                    );
                                    assert!(
                                        partial_energy.joules() <= twin.energy.joules() + 1e-9,
                                        "{ctx}: cancelled bill {partial_energy} exceeds \
                                         completed twin {}",
                                        twin.energy
                                    );
                                }
                                Err(other) => panic!("{ctx}: unexpected error {other}"),
                            }
                            iterations += 1;
                            if finished {
                                break;
                            }
                        }
                    })
                })
                .collect();
            writer.join().unwrap();
            for r in readers {
                r.join().unwrap();
            }
        });

        // Quiesced, with no cancellation in play, the reference holds.
        reference.check(&db.begin_snapshot(), "final");
    }

    /// Rolled-back transactions leave no trace.
    #[test]
    fn rollback_discards_the_overlay(base_rows in 0usize..64, pending in 1usize..16) {
        let db = make_db();
        let reference = Reference::new(base_rows);
        for i in 0..base_rows as i64 {
            db.insert("t", &record(i)).unwrap();
        }
        let mut txn = db.begin_transaction();
        for i in 0..pending as i64 {
            txn.insert("t", record(base_rows as i64 + i)).unwrap();
        }
        txn.rollback();
        let n = reference.check(&db.begin_snapshot(), "after rollback");
        prop_assert_eq!(n, base_rows, "rollback leaves the database untouched");
    }
}
