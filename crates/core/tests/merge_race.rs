//! Interleaving test for the merge swap: reader threads continuously
//! pin snapshots and scan while a writer loops insert batches and
//! `merge()` swaps underneath them. Every scan must return a pre- or
//! post-merge answer — never a mix of the two layouts — and the shared
//! energy meter must stay consistent under the race.

use haecdb::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Barrier;
use std::thread;

const READERS: usize = 4;
/// Each reader must complete this many full snapshot iterations while
/// the writer is actively inserting and merging.
const ITERATIONS_UNDER_RACE: usize = 8;
const BATCH: i64 = 200;
const MAX_ROUNDS: usize = 2_000;

fn amount(i: i64) -> i64 {
    (i * 31 + 7) % 100 - 50
}

/// Sum of `amount(0..n)` — the closed-form answer a snapshot seeing `n`
/// rows must report, whatever physical layout serves it.
fn prefix_sum(n: usize) -> i64 {
    (0..n as i64).map(amount).sum()
}

#[test]
fn scans_never_tear_across_merge_swaps() {
    let db = Database::new();
    db.create_table("t", &[("id", DataType::Int64), ("amount", DataType::Int64)]).unwrap();
    db.set_merge_threshold("t", usize::MAX).unwrap();
    for i in 0..1_000i64 {
        db.insert("t", &Record::new().with("id", i).with("amount", amount(i))).unwrap();
    }
    db.merge("t").unwrap();

    let start = Barrier::new(READERS + 1);
    let done = AtomicBool::new(false);
    let progress: Vec<AtomicUsize> = (0..READERS).map(|_| AtomicUsize::new(0)).collect();

    thread::scope(|scope| {
        let writer = scope.spawn(|| {
            start.wait();
            let mut next = 1_000i64;
            let mut rounds = 0usize;
            // Keep churning until every reader has raced several full
            // iterations against live inserts and merge swaps (bounded,
            // so a wedged reader fails the test instead of hanging it).
            while progress.iter().any(|p| p.load(Ordering::Relaxed) < ITERATIONS_UNDER_RACE)
                && rounds < MAX_ROUNDS
            {
                for _ in 0..BATCH {
                    db.insert("t", &Record::new().with("id", next).with("amount", amount(next))).unwrap();
                    next += 1;
                }
                db.merge("t").unwrap();
                rounds += 1;
            }
            done.store(true, Ordering::Release);
            next as usize
        });

        let readers: Vec<_> = (0..READERS)
            .map(|r| {
                let db = &db;
                let done = &done;
                let start = &start;
                let progress = &progress;
                scope.spawn(move || {
                    start.wait();
                    let q_count = Query::scan("t").aggregate(AggKind::Count, "amount");
                    let q_sum = Query::scan("t").aggregate(AggKind::Sum, "amount");
                    let mut last_n = 0usize;
                    let mut last_joules = 0.0f64;
                    loop {
                        let finished = done.load(Ordering::Acquire);
                        let snap = db.begin_snapshot();
                        let n = snap.table("t").unwrap().rows();
                        assert!(n >= last_n, "reader {r}: visible prefix shrank {last_n} -> {n}");
                        last_n = n;
                        // A torn scan — some rows from the pre-merge
                        // layout, some from the post-merge one — would
                        // break the count/sum closed forms.
                        let count = snap.execute(&q_count).unwrap();
                        assert_eq!(count.rows.row(0).unwrap()[0].as_float().unwrap() as usize, n);
                        let sum = snap.execute(&q_sum).unwrap();
                        assert_eq!(
                            sum.rows.row(0).unwrap()[0].as_float().unwrap() as i64,
                            prefix_sum(n),
                            "reader {r}: SUM over a snapshot of {n} rows"
                        );
                        assert!(sum.energy.joules() > 0.0, "reader {r}: queries are metered");
                        // The shared meter only ever accumulates, even
                        // with writers and other readers charging it.
                        let joules = db.meter().grand_total().joules();
                        assert!(
                            joules >= last_joules,
                            "reader {r}: meter went backwards ({last_joules} -> {joules})"
                        );
                        last_joules = joules;
                        progress[r].fetch_add(1, Ordering::Relaxed);
                        if finished {
                            break;
                        }
                    }
                    last_n
                })
            })
            .collect();

        let total = writer.join().unwrap();
        for (r, handle) in readers.into_iter().enumerate() {
            let final_n = handle.join().unwrap();
            assert_eq!(final_n, total, "reader {r}: final snapshot sees every committed row");
        }
        for (r, p) in progress.iter().enumerate() {
            assert!(p.load(Ordering::Relaxed) >= ITERATIONS_UNDER_RACE, "reader {r} never raced the writer");
        }
    });

    // Quiesced: the final answer matches the closed form exactly.
    let rows = db.table("t").unwrap().rows();
    let out = db.execute(&Query::scan("t").aggregate(AggKind::Sum, "amount")).unwrap();
    assert_eq!(out.rows.row(0).unwrap()[0].as_float().unwrap() as i64, prefix_sum(rows));
}

#[test]
fn oracle_timestamps_stay_monotone_under_concurrency() {
    // Satellite check at the database level: inserts, merges and
    // snapshots racing on all threads still draw strictly increasing
    // timestamps from the one shared oracle.
    let db = Database::new();
    db.create_table("t", &[("id", DataType::Int64)]).unwrap();
    db.set_merge_threshold("t", 64).unwrap();
    thread::scope(|scope| {
        for w in 0..3i64 {
            let db = &db;
            scope.spawn(move || {
                let mut last = Timestamp::ZERO;
                for i in 0..300 {
                    let ts = if i % 50 == 49 {
                        db.merge("t").unwrap();
                        db.begin_snapshot().timestamp()
                    } else {
                        db.insert("t", &Record::new().with("id", w * 1_000 + i)).unwrap()
                    };
                    assert!(ts > last, "writer {w}: timestamp {ts} after {last}");
                    last = ts;
                }
            });
        }
    });
    assert_eq!(db.table("t").unwrap().rows(), 3 * 294);
}
