//! Differential property tests: segmented main/delta execution must be
//! observationally identical to a flat (never-merged) table for every
//! query shape, across random data, random merge points, and every
//! comparison operator.

use haec_columnar::value::CmpOp;
use haecdb::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

const TAGS: [&str; 4] = ["alpha", "beta", "gamma", ""];

const KINDS: [AggKind; 5] = [AggKind::Count, AggKind::Sum, AggKind::Min, AggKind::Max, AggKind::Avg];

fn ops() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn make_db() -> Database {
    let db = Database::new();
    db.create_table(
        "t",
        &[
            ("id", DataType::Int64),
            ("region", DataType::Int64),
            ("amount", DataType::Int64),
            ("tag", DataType::Str),
        ],
    )
    .unwrap();
    db.set_merge_threshold("t", usize::MAX).unwrap();
    db
}

fn insert_row(db: &mut Database, row: &(i64, i64, i64)) {
    let (id, region, amount) = *row;
    db.insert(
        "t",
        &Record::new()
            .with("id", id)
            .with("region", region)
            .with("amount", amount)
            .with("tag", TAGS[(region.unsigned_abs() as usize) % TAGS.len()]),
    )
    .unwrap();
}

/// NaN-aware float equality (MIN/MAX/AVG of an empty selection are NaN).
fn float_eq(a: f64, b: f64) -> bool {
    (a.is_nan() && b.is_nan()) || a == b
}

/// The naive gather-and-fold reference: what an aggregate must equal,
/// computed in plain Rust over the raw row tuples.
fn fold_value(kind: AggKind, values: &[i64]) -> f64 {
    let count = values.len() as f64;
    match kind {
        AggKind::Count => count,
        AggKind::Sum => values.iter().sum::<i64>() as f64,
        AggKind::Min => values.iter().copied().min().map_or(f64::NAN, |v| v as f64),
        AggKind::Max => values.iter().copied().max().map_or(f64::NAN, |v| v as f64),
        AggKind::Avg => {
            if values.is_empty() {
                f64::NAN
            } else {
                values.iter().sum::<i64>() as f64 / count
            }
        }
    }
}

/// Asserts two results carry exactly the same rows, in the same order.
fn assert_same(a: &QueryResult, b: &QueryResult, ctx: &str) {
    assert_eq!(a.rows.rows(), b.rows.rows(), "{ctx}: row count");
    assert_eq!(a.rows.names(), b.rows.names(), "{ctx}: column names");
    for r in 0..a.rows.rows() {
        assert_eq!(a.rows.row(r), b.rows.row(r), "{ctx}: row {r}");
    }
}

proptest! {
    /// Random inserts, a random merge cadence, and every query shape the
    /// engine supports: the segmented store and the flat store must give
    /// byte-identical answers.
    #[test]
    fn segmented_and_flat_answers_agree(
        rows in proptest::collection::vec((0i64..200, 0i64..6, -50i64..50), 1..250),
        merge_every in 1usize..100,
        op in ops(),
        lit in -60i64..260,
        filter_col in 0usize..3,
        tag_idx in 0usize..4,
        negate_tag in any::<bool>(),
    ) {
        let mut flat = make_db();
        let mut seg = make_db();
        for (i, row) in rows.iter().enumerate() {
            insert_row(&mut flat, row);
            insert_row(&mut seg, row);
            if (i + 1) % merge_every == 0 {
                seg.merge("t").unwrap();
            }
        }
        let col = ["id", "region", "amount"][filter_col];
        let tag = TAGS[tag_idx];
        let base = Query::scan("t").filter(col, op, lit);
        let with_tag = if negate_tag {
            base.clone().filter_str_ne("tag", tag)
        } else {
            base.clone().filter_str_eq("tag", tag)
        };
        let queries = [
            base.clone(),
            base.clone().select(["id", "tag"]),
            with_tag,
            base.clone().aggregate(AggKind::Sum, "amount"),
            base.group_by("region").aggregate(AggKind::Count, "amount"),
        ];
        for (qi, q) in queries.iter().enumerate() {
            let a = flat.execute(q).unwrap();
            let b = seg.execute(q).unwrap();
            assert_same(&a, &b, &format!("query {qi} ({col} {op:?} {lit}, tag {tag:?})"));
        }
    }

    /// Merging between queries never changes subsequent answers, and
    /// auto-merge (small threshold) agrees with manual merging.
    #[test]
    fn merge_points_are_invisible_to_queries(
        rows in proptest::collection::vec((0i64..100, 0i64..4, -20i64..20), 1..150),
        threshold in 1usize..64,
        lit in -25i64..125,
    ) {
        let mut manual = make_db();
        let mut auto = make_db();
        auto.set_merge_threshold("t", threshold).unwrap();
        for row in &rows {
            insert_row(&mut manual, row);
            insert_row(&mut auto, row);
        }
        let q = Query::scan("t").filter("id", CmpOp::Ge, lit);
        let before = manual.execute(&q).unwrap();
        manual.merge("t").unwrap();
        let after = manual.execute(&q).unwrap();
        let auto_out = auto.execute(&q).unwrap();
        assert_same(&before, &after, "manual merge between queries");
        assert_same(&before, &auto_out, "auto-merged vs flat");
        prop_assert!(auto.table("t").unwrap().delta_rows() < threshold);
    }

    /// Pushed-down aggregates — every `AggKind`, global, int-keyed and
    /// string-keyed — must equal the naive gather-and-fold reference
    /// across random inserts, merge cadences and filter mixes, on both
    /// the segmented and the flat store.
    #[test]
    fn pushdown_aggregates_match_naive_reference(
        rows in proptest::collection::vec((0i64..150, 0i64..6, -40i64..40), 1..220),
        merge_every in 1usize..90,
        op in ops(),
        lit in -50i64..200,
        filter_col in 0usize..3,
        kind_idx in 0usize..5,
        with_tag_filter in any::<bool>(),
        tag_idx in 0usize..4,
    ) {
        let mut flat = make_db();
        let mut seg = make_db();
        for (i, row) in rows.iter().enumerate() {
            insert_row(&mut flat, row);
            insert_row(&mut seg, row);
            if (i + 1) % merge_every == 0 {
                seg.merge("t").unwrap();
            }
        }
        let kind = KINDS[kind_idx];
        let col = ["id", "region", "amount"][filter_col];
        let tag = TAGS[tag_idx];
        let mut base = Query::scan("t").filter(col, op, lit);
        if with_tag_filter {
            base = base.filter_str_eq("tag", tag);
        }
        // The surviving rows, per the reference semantics.
        let matching: Vec<&(i64, i64, i64)> = rows
            .iter()
            .filter(|(id, region, amount)| {
                let v = [*id, *region, *amount][filter_col];
                op.eval(v, lit)
                    && (!with_tag_filter || TAGS[(region.unsigned_abs() as usize) % TAGS.len()] == tag)
            })
            .collect();

        // --- global -----------------------------------------------------
        let q = base.clone().aggregate(kind, "amount");
        let want = fold_value(kind, &matching.iter().map(|r| r.2).collect::<Vec<_>>());
        for (db, name) in [(&mut flat, "flat"), (&mut seg, "segmented")] {
            let out = db.execute(&q).unwrap();
            let got = out.rows.row(0).unwrap()[0].as_float().unwrap();
            prop_assert!(float_eq(got, want), "{name} global {kind}: got {got}, want {want}");
        }

        // --- grouped by the integer key ---------------------------------
        let q = base.clone().group_by("region").aggregate(kind, "amount");
        let mut by_region: BTreeMap<i64, Vec<i64>> = BTreeMap::new();
        for r in &matching {
            by_region.entry(r.1).or_default().push(r.2);
        }
        for (db, name) in [(&mut flat, "flat"), (&mut seg, "segmented")] {
            let out = db.execute(&q).unwrap();
            prop_assert_eq!(out.rows.rows(), by_region.len(), "{} grouped-int {} groups", name, kind);
            for (row, (key, vals)) in by_region.iter().enumerate() {
                let r = out.rows.row(row).unwrap();
                prop_assert_eq!(r[0].clone(), Value::Int(*key), "{} grouped-int {} key", name, kind);
                let got = r[1].as_float().unwrap();
                let want = fold_value(kind, vals);
                prop_assert!(
                    float_eq(got, want),
                    "{name} grouped-int {kind} key {key}: got {got}, want {want}"
                );
            }
        }

        // --- grouped by the string key (dictionary codes) ---------------
        let q = base.group_by("tag").aggregate(kind, "amount");
        let mut by_tag: BTreeMap<&str, Vec<i64>> = BTreeMap::new();
        for r in &matching {
            by_tag.entry(TAGS[(r.1.unsigned_abs() as usize) % TAGS.len()]).or_default().push(r.2);
        }
        for (db, name) in [(&mut flat, "flat"), (&mut seg, "segmented")] {
            let out = db.execute(&q).unwrap();
            prop_assert_eq!(out.rows.rows(), by_tag.len(), "{} grouped-str {} groups", name, kind);
            for (row, (key, vals)) in by_tag.iter().enumerate() {
                let r = out.rows.row(row).unwrap();
                prop_assert_eq!(r[0].clone(), Value::Str((*key).to_string()), "{} grouped-str {}", name, kind);
                let got = r[1].as_float().unwrap();
                let want = fold_value(kind, vals);
                prop_assert!(
                    float_eq(got, want),
                    "{name} grouped-str {kind} key {key:?}: got {got}, want {want}"
                );
            }
        }
    }

    /// Index lookups and compressed scans agree on merged tables for
    /// every operator on the first predicate's re-check path.
    #[test]
    fn index_agrees_with_segmented_scan(
        rows in proptest::collection::vec((0i64..50, -30i64..30), 1..200),
        key in 0i64..50,
        op in ops(),
        lit in -35i64..35,
    ) {
        let mut db = Database::new();
        db.create_table("t", &[("k", DataType::Int64), ("v", DataType::Int64)]).unwrap();
        db.set_merge_threshold("t", usize::MAX).unwrap();
        for (k, v) in &rows {
            db.insert("t", &Record::new().with("k", *k).with("v", *v)).unwrap();
        }
        db.merge("t").unwrap();
        let mut indexed = Database::new();
        indexed.create_table("t", &[("k", DataType::Int64), ("v", DataType::Int64)]).unwrap();
        indexed.set_merge_threshold("t", 32).unwrap();
        for (k, v) in &rows {
            indexed.insert("t", &Record::new().with("k", *k).with("v", *v)).unwrap();
        }
        indexed.create_index("t", "k", IndexMaintenance::Eager).unwrap();
        let q = Query::scan("t").filter("k", CmpOp::Eq, key).filter("v", op, lit);
        let a = db.execute(&q).unwrap();
        let b = indexed.execute(&q).unwrap();
        assert_same(&a, &b, "index vs scan");
    }
}
