//! Differential property tests for join execution: joins on compressed
//! segments (hash or sort-merge, zone-pruned, code-to-code string keys)
//! must be observationally identical to a naive nested loop over the
//! decoded rows — across random data, duplicate keys, empty sides,
//! filters on both sides, and every storage layout (flat, fully merged,
//! and mixed main/delta with random merge points).

use haec_columnar::value::CmpOp;
use haecdb::prelude::*;
use proptest::prelude::*;

const TAGS: [&str; 5] = ["alpha", "beta", "gamma", "delta", ""];

/// Left rows: `(key, amount, tag_idx)`; right rows: `(key, score,
/// tag_idx)`. Keys deliberately overlap only partially so both sides
/// dangle.
type Row = (i64, i64, usize);

fn ops() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn make_db() -> Database {
    let db = Database::new();
    db.create_table("l", &[("k", DataType::Int64), ("amount", DataType::Int64), ("tag", DataType::Str)])
        .unwrap();
    db.create_table("r", &[("k", DataType::Int64), ("score", DataType::Int64), ("tag", DataType::Str)])
        .unwrap();
    db.set_merge_threshold("l", usize::MAX).unwrap();
    db.set_merge_threshold("r", usize::MAX).unwrap();
    db
}

fn fill(db: &mut Database, table: &str, rows: &[Row], val_col: &str, merge_every: usize) {
    for (i, &(k, v, t)) in rows.iter().enumerate() {
        db.insert(table, &Record::new().with("k", k).with(val_col, v).with("tag", TAGS[t % TAGS.len()]))
            .unwrap();
        if (i + 1) % merge_every == 0 {
            db.merge(table).unwrap();
        }
    }
}

/// The three layouts under test: never merged, merged at a random
/// cadence, and merged once at the end.
fn layouts(lrows: &[Row], rrows: &[Row], ml: usize, mr: usize) -> Vec<Database> {
    let mut flat = make_db();
    fill(&mut flat, "l", lrows, "amount", usize::MAX);
    fill(&mut flat, "r", rrows, "score", usize::MAX);
    let mut mixed = make_db();
    fill(&mut mixed, "l", lrows, "amount", ml);
    fill(&mut mixed, "r", rrows, "score", mr);
    let mut merged = make_db();
    fill(&mut merged, "l", lrows, "amount", usize::MAX);
    fill(&mut merged, "r", rrows, "score", usize::MAX);
    merged.merge("l").unwrap();
    merged.merge("r").unwrap();
    vec![flat, mixed, merged]
}

/// Sorted multiset of result tuples (join output order is
/// algorithm-dependent, so comparisons are order-insensitive).
fn result_tuples(out: &QueryResult) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = (0..out.rows.rows())
        .map(|r| out.rows.row(r).unwrap().iter().map(|v| format!("{v:?}")).collect())
        .collect();
    rows.sort();
    rows
}

proptest! {
    /// Integer-key joins with filters on both sides equal the nested-
    /// loop reference on every layout.
    #[test]
    fn int_key_join_matches_nested_loop(
        lrows in proptest::collection::vec((0i64..25, -40i64..40, 0usize..5), 0..120),
        rrows in proptest::collection::vec((5i64..30, -40i64..40, 0usize..5), 0..120),
        ml in 1usize..60,
        mr in 1usize..60,
        lop in ops(),
        llit in -45i64..45,
        rop in ops(),
        rlit in -45i64..45,
        with_filters in any::<bool>(),
    ) {
        let mut q = Query::scan("l").join("r", "k", "k").select(["k", "amount", "r.score"]);
        if with_filters {
            q = q.filter("amount", lop, llit).join_filter("score", rop, rlit);
        }
        // Nested-loop reference over the raw tuples.
        let mut want: Vec<Vec<String>> = Vec::new();
        for &(lk, amount, _) in &lrows {
            if with_filters && !lop.eval(amount, llit) {
                continue;
            }
            for &(rk, score, _) in &rrows {
                if lk == rk && (!with_filters || rop.eval(score, rlit)) {
                    want.push(vec![
                        format!("{:?}", Value::Int(lk)),
                        format!("{:?}", Value::Int(amount)),
                        format!("{:?}", Value::Int(score)),
                    ]);
                }
            }
        }
        want.sort();
        for (li, mut db) in layouts(&lrows, &rrows, ml, mr).into_iter().enumerate() {
            let out = db.execute(&q).unwrap();
            prop_assert_eq!(result_tuples(&out), want.clone(), "layout {}", li);
        }
    }

    /// String-key joins (dictionary code-to-code, including `""` and
    /// values fresh in one side's delta) equal the nested-loop
    /// reference on every layout.
    #[test]
    fn string_key_join_matches_nested_loop(
        lrows in proptest::collection::vec((0i64..25, -40i64..40, 0usize..5), 0..100),
        rrows in proptest::collection::vec((5i64..30, -40i64..40, 0usize..5), 0..100),
        ml in 1usize..50,
        mr in 1usize..50,
        filter_tag in 0usize..5,
        negated in any::<bool>(),
        with_filter in any::<bool>(),
    ) {
        let mut q = Query::scan("l").join("r", "tag", "tag").select(["amount", "tag", "r.score"]);
        let tag = TAGS[filter_tag];
        if with_filter {
            q = if negated { q.join_filter_str_ne("tag", tag) } else { q.join_filter_str_eq("tag", tag) };
        }
        let mut want: Vec<Vec<String>> = Vec::new();
        for &(_, amount, lt) in &lrows {
            for &(_, score, rt) in &rrows {
                let (ls, rs) = (TAGS[lt % TAGS.len()], TAGS[rt % TAGS.len()]);
                if ls == rs && (!with_filter || ((rs == tag) != negated)) {
                    want.push(vec![
                        format!("{:?}", Value::Int(amount)),
                        format!("{:?}", Value::Str(ls.to_string())),
                        format!("{:?}", Value::Int(score)),
                    ]);
                }
            }
        }
        want.sort();
        for (li, mut db) in layouts(&lrows, &rrows, ml, mr).into_iter().enumerate() {
            let out = db.execute(&q).unwrap();
            prop_assert_eq!(result_tuples(&out), want.clone(), "layout {}", li);
        }
    }

    /// Duplicate keys produce the full cross product per key group, and
    /// an empty side produces an empty (but well-shaped) result.
    #[test]
    fn duplicates_and_empty_sides(
        dup_l in 0usize..6,
        dup_r in 0usize..6,
        key in 0i64..5,
        merge_l in any::<bool>(),
        merge_r in any::<bool>(),
    ) {
        let lrows: Vec<Row> = (0..dup_l).map(|i| (key, i as i64, i)).collect();
        let rrows: Vec<Row> = (0..dup_r).map(|i| (key, -(i as i64), i)).collect();
        let mut db = make_db();
        fill(&mut db, "l", &lrows, "amount", usize::MAX);
        fill(&mut db, "r", &rrows, "score", usize::MAX);
        if merge_l {
            db.merge("l").unwrap();
        }
        if merge_r {
            db.merge("r").unwrap();
        }
        let out = db.execute(&Query::scan("l").join("r", "k", "k")).unwrap();
        prop_assert_eq!(out.rows.rows(), dup_l * dup_r, "cross product per duplicate key group");
        prop_assert_eq!(out.rows.width(), 6, "all left + prefixed right columns");
    }
}
