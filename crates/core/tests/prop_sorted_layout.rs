//! Differential property tests for declared sort keys: a table sorted
//! on a key by its merges must be observationally identical to the same
//! table without a sort key — for scans, projections, aggregates and
//! joins, across flat/mixed/fully-merged states and duplicate keys —
//! except for row *order*, which the sorting merge is allowed (indeed
//! required) to change. Row-returning queries are therefore compared as
//! multisets; aggregates compare exactly.
//!
//! String sort keys order by **global dictionary code** (first
//! appearance), not collation — the last test pins that documented
//! behavior down.

use haec_columnar::value::CmpOp;
use haecdb::prelude::*;
use proptest::prelude::*;

const TAGS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

const KINDS: [AggKind; 5] = [AggKind::Count, AggKind::Sum, AggKind::Min, AggKind::Max, AggKind::Avg];

fn ops() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// An int-keyed table, with or without `k` declared as the sort key.
fn make_db(sorted: bool) -> Database {
    let db = Database::new();
    let cols = [("k", DataType::Int64), ("v", DataType::Int64), ("tag", DataType::Str)];
    if sorted {
        db.create_table_sorted("t", &cols, "k").unwrap();
    } else {
        db.create_table("t", &cols).unwrap();
    }
    db.set_merge_threshold("t", usize::MAX).unwrap();
    db
}

fn insert_row(db: &Database, row: &(i64, i64)) {
    let (k, v) = *row;
    db.insert(
        "t",
        &Record::new().with("k", k).with("v", v).with("tag", TAGS[(v.unsigned_abs() as usize) % TAGS.len()]),
    )
    .unwrap();
}

/// Canonical multiset view of a result: every row rendered and sorted.
fn canon(out: &QueryResult) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = (0..out.rows.rows())
        .map(|r| out.rows.row(r).unwrap().iter().map(|v| format!("{v:?}")).collect())
        .collect();
    rows.sort();
    rows
}

/// Asserts two results carry the same rows as a multiset (the sorting
/// merge permutes physical row order, so positional comparison would be
/// wrong by design), and the same column names.
fn assert_same_rows(a: &QueryResult, b: &QueryResult, ctx: &str) {
    assert_eq!(a.rows.names(), b.rows.names(), "{ctx}: column names");
    assert_eq!(canon(a), canon(b), "{ctx}: row multiset");
}

proptest! {
    /// Every query shape, against random data with duplicate keys and a
    /// random merge cadence (flat → mixed → fully merged): the sorted
    /// table answers exactly like the unsorted reference.
    #[test]
    fn sorted_and_unsorted_answers_agree(
        rows in proptest::collection::vec((0i64..60, -50i64..50), 1..250),
        merge_every in 1usize..100,
        op in ops(),
        lit in -10i64..70,
        kind_idx in 0usize..5,
        tag_idx in 0usize..4,
        negate_tag in any::<bool>(),
    ) {
        let sorted = make_db(true);
        let unsorted = make_db(false);
        for (i, row) in rows.iter().enumerate() {
            insert_row(&sorted, row);
            insert_row(&unsorted, row);
            if (i + 1) % merge_every == 0 {
                sorted.merge("t").unwrap();
                unsorted.merge("t").unwrap();
            }
        }
        let tag = TAGS[tag_idx];
        let base = Query::scan("t").filter("k", op, lit);
        let with_tag = if negate_tag {
            base.clone().filter_str_ne("tag", tag)
        } else {
            base.clone().filter_str_eq("tag", tag)
        };
        let row_queries = [
            base.clone(),
            base.clone().select(["v", "tag"]),
            with_tag,
            Query::scan("t").filter("v", op, lit).filter("k", CmpOp::Ge, 10),
        ];
        for (qi, q) in row_queries.iter().enumerate() {
            let a = sorted.execute(q).unwrap();
            let b = unsorted.execute(q).unwrap();
            assert_same_rows(&a, &b, &format!("query {qi} (k {op:?} {lit}, tag {tag:?})"));
        }
        let kind = KINDS[kind_idx];
        let agg_queries = [
            base.clone().aggregate(kind, "v"),
            base.group_by("k").aggregate(kind, "v"),
        ];
        for (qi, q) in agg_queries.iter().enumerate() {
            let a = sorted.execute(q).unwrap();
            let b = unsorted.execute(q).unwrap();
            assert_same_rows(&a, &b, &format!("agg query {qi} ({kind:?}, k {op:?} {lit})"));
        }
    }

    /// Joins on the sorted key (where the merge-join sort-skip kicks in
    /// for fully-merged sides) and on an unsorted payload column both
    /// agree with the unsorted reference, across merge states.
    #[test]
    fn sorted_join_agrees_with_unsorted(
        left in proptest::collection::vec((0i64..30, -20i64..20), 1..120),
        right in proptest::collection::vec((0i64..30, -20i64..20), 1..120),
        merge_left in any::<bool>(),
        merge_right in any::<bool>(),
        lit in 0i64..30,
    ) {
        let build = |sorted: bool| {
            let db = Database::new();
            let cols = [("k", DataType::Int64), ("v", DataType::Int64)];
            if sorted {
                db.create_table_sorted("l", &cols, "k").unwrap();
                db.create_table_sorted("r", &cols, "k").unwrap();
            } else {
                db.create_table("l", &cols).unwrap();
                db.create_table("r", &cols).unwrap();
            }
            for t in ["l", "r"] {
                db.set_merge_threshold(t, usize::MAX).unwrap();
            }
            for (k, v) in &left {
                db.insert("l", &Record::new().with("k", *k).with("v", *v)).unwrap();
            }
            for (k, v) in &right {
                db.insert("r", &Record::new().with("k", *k).with("v", *v)).unwrap();
            }
            if merge_left {
                db.merge("l").unwrap();
            }
            if merge_right {
                db.merge("r").unwrap();
            }
            db
        };
        let s = build(true);
        let u = build(false);
        for (qi, q) in [
            Query::scan("l").join("r", "k", "k"),
            Query::scan("l").join("r", "k", "k").filter("k", CmpOp::Ge, lit),
            Query::scan("l").join("r", "k", "k").join_filter("v", CmpOp::Lt, 5),
        ]
        .iter()
        .enumerate()
        {
            let a = s.execute(q).unwrap();
            let b = u.execute(q).unwrap();
            assert_same_rows(&a, &b, &format!("join query {qi} (lit {lit})"));
        }
    }

    /// String sort keys: answers agree with the unsorted reference, and
    /// the physical order after a merge is *global dictionary code*
    /// order (first appearance at insert), not collation order.
    #[test]
    fn string_sort_key_agrees_and_orders_by_code(
        picks in proptest::collection::vec((0usize..4, -30i64..30), 1..150),
        merge_every in 1usize..60,
        tag_idx in 0usize..4,
    ) {
        let build = |sorted: bool| {
            let db = Database::new();
            let cols = [("name", DataType::Str), ("v", DataType::Int64)];
            if sorted {
                db.create_table_sorted("t", &cols, "name").unwrap();
            } else {
                db.create_table("t", &cols).unwrap();
            }
            db.set_merge_threshold("t", usize::MAX).unwrap();
            db
        };
        let sorted = build(true);
        let unsorted = build(false);
        for (i, (pick, v)) in picks.iter().enumerate() {
            for db in [&sorted, &unsorted] {
                db.insert("t", &Record::new().with("name", TAGS[*pick]).with("v", *v)).unwrap();
            }
            if (i + 1) % merge_every == 0 {
                sorted.merge("t").unwrap();
                unsorted.merge("t").unwrap();
            }
        }
        let tag = TAGS[tag_idx];
        for q in [
            Query::scan("t").filter_str_eq("name", tag),
            Query::scan("t").filter_str_ne("name", tag).select(["v"]),
            Query::scan("t").filter("v", CmpOp::Ge, 0),
        ] {
            let a = sorted.execute(&q).unwrap();
            let b = unsorted.execute(&q).unwrap();
            assert_same_rows(&a, &b, "string-keyed query");
        }
        // Physical order inside every merged segment is ascending
        // *global code* — checked against the claim the segment records.
        let t = sorted.table("t").unwrap();
        for seg in t.segments() {
            prop_assert_eq!(seg.sorted_by(), Some(0));
            let codes: Vec<i64> = (0..seg.rows()).map(|r| seg.get_int(0, r).unwrap()).collect();
            prop_assert!(codes.windows(2).all(|w| w[0] <= w[1]), "codes not ascending: {:?}", codes);
        }
    }
}
