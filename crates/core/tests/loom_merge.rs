//! Model-checked verification of the `Table` two-phase merge publish
//! against pinned snapshot readers and racing inserts.
//!
//! Only built under `RUSTFLAGS="--cfg haec_loom"`: the `parking_lot`
//! shim then wraps the `loom` shim's model-checked locks, so the
//! table's real lock protocol (unchanged) runs under `loom::model`'s
//! interleaving exploration. Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg haec_loom" cargo test -p haecdb --test loom_merge --release
//! ```
#![cfg(haec_loom)]

use haecdb::prelude::*;
use loom::sync::Arc;

fn int_schema() -> TableSchema {
    TableSchema::strict(vec![("v".into(), DataType::Int64)])
}

fn sum(snapshot: &TableSnapshot) -> i64 {
    snapshot.gather_ints("v", None).expect("int column").iter().sum()
}

/// A reader pinned at an existing timestamp races the merge swap: in
/// every interleaving the pin must succeed (the merge folds only older
/// rows) and serve exactly the pinned prefix, whether it reads the
/// pre-merge delta or the post-merge main.
#[test]
fn pinned_reader_survives_merge_publish() {
    let report = loom::model(|| {
        let table = Arc::new(Table::new("t", int_schema()));
        let oracle = Arc::new(TimestampOracle::new());
        table.insert(&Record::new().with("v", 1i64), &oracle).unwrap();
        table.insert(&Record::new().with("v", 2i64), &oracle).unwrap();
        let pin_ts = oracle.next();

        let merger = {
            let table = Arc::clone(&table);
            loom::thread::spawn(move || table.merge())
        };

        let snapshot =
            table.pin_at(pin_ts).expect("merge folds only rows older than the pin; the pin must survive");
        assert_eq!(snapshot.rows(), 2);
        assert_eq!(sum(&snapshot), 3, "pinned read tore across the merge swap");

        let stats = merger.join().unwrap();
        assert_eq!(stats.rows_merged, 2);
        let after = table.read();
        assert_eq!(after.rows(), 2);
        assert_eq!(sum(&after), 3);
        assert!(after.epoch() >= 1, "publish must advance the epoch");
    });
    assert!(report.interleavings > 1, "expected >1 distinct interleaving, got {report:?}");
}

/// An insert racing the merge lands either in the compacted batch's
/// successor delta or before the pin — never lost, never double-counted
/// — and the final view always sees all three rows.
#[test]
fn insert_racing_merge_is_never_lost() {
    let report = loom::model(|| {
        let table = Arc::new(Table::new("t", int_schema()));
        let oracle = Arc::new(TimestampOracle::new());
        table.insert(&Record::new().with("v", 1i64), &oracle).unwrap();
        table.insert(&Record::new().with("v", 2i64), &oracle).unwrap();

        let inserter = {
            let table = Arc::clone(&table);
            let oracle = Arc::clone(&oracle);
            loom::thread::spawn(move || {
                table.insert(&Record::new().with("v", 4i64), &oracle).unwrap();
            })
        };
        let stats = table.merge();
        // The racing insert either made the merge batch or stayed
        // behind in the delta for the next one.
        assert!(stats.rows_merged == 2 || stats.rows_merged == 3);
        inserter.join().unwrap();

        let after = table.read();
        assert_eq!(after.rows(), 3, "the racing insert was lost");
        assert_eq!(sum(&after), 7);
    });
    assert!(report.interleavings > 1, "expected >1 distinct interleaving, got {report:?}");
}

/// A *sorting* merge (declared sort key) racing a pinned reader: the
/// permuting rebuild happens entirely in the lock-free build phase, so
/// in every interleaving the reader — pinned as if mid-binary-search —
/// sees either the unsorted delta or the fully sorted segment set,
/// never a half-sorted mixture: every segment claiming `sorted_by` is
/// actually non-decreasing, and the pinned totals are preserved.
#[test]
fn sorting_merge_publishes_atomically() {
    let report = loom::model(|| {
        let schema = TableSchema::strict(vec![("v".into(), DataType::Int64)]).with_sort_key("v");
        let table = Arc::new(Table::new("t", schema));
        let oracle = Arc::new(TimestampOracle::new());
        // Deliberately out of order: the merge must permute.
        table.insert(&Record::new().with("v", 3i64), &oracle).unwrap();
        table.insert(&Record::new().with("v", 1i64), &oracle).unwrap();
        table.insert(&Record::new().with("v", 2i64), &oracle).unwrap();
        let pin_ts = oracle.next();

        let merger = {
            let table = Arc::clone(&table);
            loom::thread::spawn(move || table.merge())
        };

        let snapshot = table.pin_at(pin_ts).expect("pin covers the whole batch; it must survive");
        assert_eq!(snapshot.rows(), 3);
        assert_eq!(sum(&snapshot), 6, "pinned read tore across the sorting swap");
        // Whatever state the pin caught, any claimed sortedness is true:
        // a half-sorted segment set can never be observed.
        for seg in snapshot.segments() {
            if seg.sorted_by() == Some(0) {
                let mut prev = i64::MIN;
                for r in 0..seg.rows() {
                    let v = seg.get_int(0, r).expect("int column");
                    assert!(v >= prev, "claimed-sorted segment out of order");
                    prev = v;
                }
            }
        }

        let stats = merger.join().unwrap();
        assert_eq!(stats.rows_merged, 3);
        let after = table.read();
        assert_eq!(after.rows(), 3);
        assert_eq!(sum(&after), 6);
        let segs = after.segments();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].sorted_by(), Some(0), "published segment carries the sort claim");
        assert_eq!(
            (0..3).map(|r| segs[0].get_int(0, r).unwrap()).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "published segment is globally sorted"
        );
    });
    assert!(report.interleavings > 1, "expected >1 distinct interleaving, got {report:?}");
}

/// Two mergers and a reader: concurrent merges serialize internally,
/// publish exactly once each (idempotent on an empty delta), and the
/// latest view is identical in every schedule.
#[test]
fn concurrent_merges_serialize() {
    let report = loom::model(|| {
        let table = Arc::new(Table::new("t", int_schema()));
        let oracle = Arc::new(TimestampOracle::new());
        table.insert(&Record::new().with("v", 5i64), &oracle).unwrap();

        let other = {
            let table = Arc::clone(&table);
            loom::thread::spawn(move || table.merge().rows_merged)
        };
        let mine = table.merge().rows_merged;
        let theirs = other.join().unwrap();
        // Exactly one merger compacts the single delta row; the other
        // sees an empty delta and no-ops.
        assert_eq!(mine + theirs, 1, "the delta row must be merged exactly once");

        let after = table.read();
        assert_eq!(after.rows(), 1);
        assert_eq!(sum(&after), 5);
    });
    assert!(report.interleavings > 1, "expected >1 distinct interleaving, got {report:?}");
}
