//! Fault-injection proofs: every instrumented failpoint, when fired,
//! leaves the engine in a state the crash-safety story promises —
//! pinned readers unharmed, table state all-or-nothing, the energy
//! meter monotone, the worker pool reusable.
//!
//! Only built under `RUSTFLAGS="--cfg haec_fail"`, which compiles the
//! `fail` shim's failpoints in (they are zero-token no-ops otherwise).
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg haec_fail" cargo test -p haecdb --test fault_injection
//! ```
//!
//! The failpoint registry is process-global, so every test serializes
//! on one mutex and tears the registry down on every exit path.
#![cfg(haec_fail)]

use haecdb::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes tests (cargo runs them concurrently in one process) and
/// clears the global failpoint registry on drop, panic included.
struct FailGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

fn armed() -> FailGuard {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = M.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    fail::teardown();
    FailGuard(guard)
}

impl Drop for FailGuard {
    fn drop(&mut self) {
        fail::teardown();
    }
}

fn amount(i: i64) -> i64 {
    (i * 31 + 7) % 100 - 50
}

/// Sum of `amount(0..n)` — the closed-form answer any consistent view
/// of the first `n` rows must report, whatever its physical layout.
fn prefix_sum(n: usize) -> i64 {
    (0..n as i64).map(amount).sum()
}

fn seeded_db(merged: i64, delta: i64) -> Database {
    let db = Database::new();
    db.create_table("t", &[("id", DataType::Int64), ("amount", DataType::Int64)]).unwrap();
    db.set_merge_threshold("t", usize::MAX).unwrap();
    for i in 0..merged {
        db.insert("t", &Record::new().with("id", i).with("amount", amount(i))).unwrap();
    }
    if merged > 0 {
        db.merge("t").unwrap();
    }
    for i in merged..merged + delta {
        db.insert("t", &Record::new().with("id", i).with("amount", amount(i))).unwrap();
    }
    db
}

fn sum_query() -> Query {
    Query::scan("t").aggregate(AggKind::Sum, "amount")
}

fn sum_of(db: &Database) -> i64 {
    let out = db.execute(&sum_query()).unwrap();
    out.rows.row(0).unwrap()[0].as_float().unwrap() as i64
}

fn segment_count(db: &Database) -> usize {
    let snap = db.begin_snapshot();
    snap.table("t").unwrap().segments().len()
}

/// Every merge-phase failpoint, fired as a panic, must leave (a) a
/// reader pinned before the merge serving its exact prefix, (b) fresh
/// snapshots consistent, (c) the meter monotone, and (d) the table
/// fully usable: the next insert and merge succeed and converge to the
/// same physical shape as a twin database that never faulted.
#[test]
fn merge_phase_panics_leave_readers_and_state_whole() {
    for fp in ["merge::build", "merge::remap", "merge::segment", "merge::publish"] {
        let _g = armed();
        let db = seeded_db(1_000, 500);
        let meter_before = db.meter().grand_total().joules();

        let pinned = db.begin_snapshot();
        fail::cfg(fp, "panic(injected)").unwrap();
        let r = catch_unwind(AssertUnwindSafe(|| db.merge("t")));
        assert!(r.is_err(), "{fp}: armed merge must panic");
        fail::remove(fp);

        // The reader pinned before the fault is untouched: its full
        // 1500-row prefix, straddling main and delta, still sums to
        // the closed form.
        let out = pinned.execute(&sum_query()).unwrap();
        assert_eq!(
            out.rows.row(0).unwrap()[0].as_float().unwrap() as i64,
            prefix_sum(1_500),
            "{fp}: pinned reader was harmed"
        );
        drop(pinned);

        // Fresh snapshots see a consistent (all-or-nothing) state.
        assert_eq!(sum_of(&db), prefix_sum(1_500), "{fp}: post-fault snapshot torn");
        assert!(
            db.meter().grand_total().joules() >= meter_before,
            "{fp}: meter went backwards across the fault"
        );

        // The table is not wedged: insert, merge and query all work,
        // and the physical shape converges to the never-faulted twin's.
        db.insert("t", &Record::new().with("id", 1_500i64).with("amount", amount(1_500))).unwrap();
        let stats = db.merge("t").unwrap();
        assert!(stats.rows_merged > 0, "{fp}: recovery merge compacted nothing");
        assert_eq!(sum_of(&db), prefix_sum(1_501), "{fp}: post-recovery answer");

        let twin = seeded_db(1_000, 500);
        twin.insert("t", &Record::new().with("id", 1_500i64).with("amount", amount(1_500))).unwrap();
        twin.merge("t").unwrap();
        assert_eq!(
            segment_count(&db),
            segment_count(&twin),
            "{fp}: faulted-then-recovered table leaked segments vs the twin"
        );
        assert_eq!(sum_of(&twin), sum_of(&db));
    }
}

/// Regression for the scariest window: a panic in `merge()`'s
/// lock-free build phase (before the publish lock is ever taken) must
/// not leak the pinned build inputs or leave any lock unusable — the
/// delta keeps its rows, a second merge compacts them, and repeated
/// fault/recover cycles don't accumulate segments.
#[test]
fn merge_build_panic_regression_no_leak_no_wedge() {
    let _g = armed();
    let db = seeded_db(1_000, 500);

    let mut rows = 1_500i64;
    for round in 0..3 {
        fail::cfg("merge::build", "panic(build)").unwrap();
        assert!(
            catch_unwind(AssertUnwindSafe(|| db.merge("t"))).is_err(),
            "round {round}: armed build must panic"
        );
        fail::remove("merge::build");
        // The failed merge consumed nothing: the delta still holds all
        // its rows, so the recovery merge has exactly that to compact.
        let stats = db.merge("t").unwrap();
        assert_eq!(
            stats.rows_merged,
            if round == 0 { 500 } else { 200 },
            "round {round}: failed build must not consume delta rows"
        );
        assert_eq!(sum_of(&db), prefix_sum(rows as usize), "round {round}");
        // Refill the delta so the next round's merge has work to fault.
        for i in rows..rows + 200 {
            db.insert("t", &Record::new().with("id", i).with("amount", amount(i))).unwrap();
        }
        rows += 200;
    }

    // A twin replaying only the *successful* operations must end with
    // the identical physical shape: the faulted merges contributed
    // nothing — no leaked segments, no half-built dictionary state.
    let twin = seeded_db(1_000, 500);
    let mut twin_rows = 1_500i64;
    for _ in 0..3 {
        twin.merge("t").unwrap();
        for i in twin_rows..twin_rows + 200 {
            twin.insert("t", &Record::new().with("id", i).with("amount", amount(i))).unwrap();
        }
        twin_rows += 200;
    }
    db.merge("t").unwrap();
    twin.merge("t").unwrap();
    assert_eq!(segment_count(&db), segment_count(&twin), "repeated faults leaked segments");
    assert_eq!(sum_of(&db), sum_of(&twin));
}

/// The `db::insert` failpoint exercises the error-return path: the
/// insert fails with the injected message, commits nothing, and the
/// table accepts the retry.
#[test]
fn insert_failpoint_returns_error_without_committing() {
    let _g = armed();
    let db = seeded_db(100, 0);
    fail::cfg("db::insert", "return(injected-insert-fault)").unwrap();
    let err = db.insert("t", &Record::new().with("id", 100i64).with("amount", 7i64)).unwrap_err();
    assert!(err.to_string().contains("injected-insert-fault"), "got: {err}");
    fail::remove("db::insert");

    let snap = db.begin_snapshot();
    assert_eq!(snap.table("t").unwrap().rows(), 100, "failed insert must commit nothing");
    drop(snap);
    db.insert("t", &Record::new().with("id", 100i64).with("amount", amount(100))).unwrap();
    assert_eq!(sum_of(&db), prefix_sum(101));
}

/// Countdown chains replay deterministically: `2*off->1*return` admits
/// exactly two inserts, fails the third, and is exhausted (inert) from
/// the fourth on — identically on every re-arm.
#[test]
fn countdown_chain_replays_against_the_engine() {
    let _g = armed();
    for _ in 0..2 {
        let db = seeded_db(0, 0);
        fail::cfg("db::insert", "2*off->1*return(third-fails)").unwrap();
        let pattern: Vec<bool> = (0..4i64)
            .map(|i| db.insert("t", &Record::new().with("id", i).with("amount", amount(i))).is_ok())
            .collect();
        assert_eq!(pattern, [true, true, false, true]);
        fail::remove("db::insert");
    }
}

/// Seeded probabilistic faults replay byte-for-byte: the same seed and
/// spec produce the same ok/err pattern over a fresh database.
#[test]
fn seeded_probabilistic_faults_replay() {
    let _g = armed();
    let run = || -> Vec<bool> {
        fail::seed(42);
        fail::cfg("db::insert", "40%return(roll)").unwrap();
        let db = seeded_db(0, 0);
        let pattern = (0..64i64)
            .map(|i| db.insert("t", &Record::new().with("id", i).with("amount", amount(i))).is_ok())
            .collect();
        fail::remove("db::insert");
        pattern
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same seed must replay the same fault schedule");
    assert!(first.iter().any(|ok| *ok) && first.iter().any(|ok| !*ok), "40% should mix outcomes");
}

/// A panic during the post-merge index rebuild strands the index at its
/// pre-merge epoch; the epoch gate must keep it out of plans (correct,
/// just slower) until the next rebuild restamps it.
#[test]
fn index_rebuild_panic_strands_epoch_but_answers_stay_right() {
    let _g = armed();
    let db = Database::new();
    db.create_table_sorted("t", &[("id", DataType::Int64), ("amount", DataType::Int64)], "id").unwrap();
    db.set_merge_threshold("t", usize::MAX).unwrap();
    for i in 0..500i64 {
        db.insert("t", &Record::new().with("id", i).with("amount", amount(i))).unwrap();
    }
    db.merge("t").unwrap();
    db.create_index("t", "id", IndexMaintenance::Eager).unwrap();

    for i in 500..700i64 {
        db.insert("t", &Record::new().with("id", i).with("amount", amount(i))).unwrap();
    }
    fail::cfg("index::rebuild", "panic(rebuild)").unwrap();
    assert!(catch_unwind(AssertUnwindSafe(|| db.merge("t"))).is_err());
    fail::remove("index::rebuild");

    // The point query must answer correctly with the stale index gated.
    let probe = Query::scan("t").filter("id", CmpOp::Eq, 650).aggregate(AggKind::Sum, "amount");
    let out = db.execute(&probe).unwrap();
    assert_eq!(out.rows.row(0).unwrap()[0].as_float().unwrap() as i64, amount(650));

    // A later merge with fresh delta rows restamps the index; answers
    // are unchanged either side of the rebuild.
    db.insert("t", &Record::new().with("id", 700i64).with("amount", amount(700))).unwrap();
    db.merge("t").unwrap();
    let out = db.execute(&probe).unwrap();
    assert_eq!(out.rows.row(0).unwrap()[0].as_float().unwrap() as i64, amount(650));
    assert_eq!(sum_of(&db), prefix_sum(701));
}

/// A panic injected at the pool's morsel-dispatch (and pickup) sites
/// propagates to the submitting query, and the pool — the process-wide
/// shared one — stays fully reusable: the next query over the same
/// database answers exactly.
#[test]
fn pool_fault_propagates_and_pool_stays_reusable() {
    let _g = armed();
    // All rows left in the delta: ~24 morsel units at 64 rows, so the
    // query is genuinely pooled and the dispatch failpoint must fire.
    let db = seeded_db(0, 1_500);
    let meter_before = db.meter().grand_total().joules();
    let opts = ExecOpts { dop: 4, morsel_rows: 64, gate: None, cancel: None };

    // `pool::dispatch` fires on the first morsel grab of whichever unit
    // runs first (the caller-runs inline unit guarantees one exists);
    // `pool::pickup` additionally fires if a helper picks the job up —
    // both must travel the same panic-recovery path.
    fail::cfg("pool::dispatch", "1*panic(dispatch)").unwrap();
    fail::cfg("pool::pickup", "panic(pickup)").unwrap();
    let r = catch_unwind(AssertUnwindSafe(|| db.execute_opts(&sum_query(), &opts)));
    assert!(r.is_err(), "armed dispatch must panic the query");
    fail::teardown();

    assert!(db.meter().grand_total().joules() >= meter_before, "meter went backwards");
    for _ in 0..3 {
        let out = db.execute_opts(&sum_query(), &opts).unwrap();
        assert_eq!(
            out.rows.row(0).unwrap()[0].as_float().unwrap() as i64,
            prefix_sum(1_500),
            "pool unusable after injected fault"
        );
    }

    // Stochastic pickup faults: every run either panics or answers
    // exactly — never a wrong answer — and the pool survives them all.
    fail::seed(7);
    fail::cfg("pool::pickup", "25%panic(flaky-pickup)").unwrap();
    let mut panicked = 0;
    for _ in 0..16 {
        match catch_unwind(AssertUnwindSafe(|| db.execute_opts(&sum_query(), &opts))) {
            Ok(out) => {
                let out = out.unwrap();
                assert_eq!(out.rows.row(0).unwrap()[0].as_float().unwrap() as i64, prefix_sum(1_500));
            }
            Err(_) => panicked += 1,
        }
    }
    fail::teardown();
    let _ = panicked; // whether helpers raced to pickup is schedule-dependent
    let out = db.execute_opts(&sum_query(), &opts).unwrap();
    assert_eq!(out.rows.row(0).unwrap()[0].as_float().unwrap() as i64, prefix_sum(1_500));
}

/// The qserver failpoints complete the instrumented set; fired as
/// panics they fail only the one submission — admission slots release
/// and the server keeps serving. (Exercised here through the public
/// sched crate? No — sched depends on core, so the server-side proof
/// lives in `haec-sched`; this test pins the *registry names* so a
/// rename breaks loudly.)
#[test]
fn instrumented_failpoint_names_are_stable() {
    let _g = armed();
    for name in [
        "merge::build",
        "merge::remap",
        "merge::segment",
        "merge::publish",
        "db::insert",
        "index::rebuild",
        "pool::dispatch",
        "pool::pickup",
        "qserver::admit",
        "qserver::snapshot",
    ] {
        fail::cfg(name, "off").unwrap();
    }
    let listed = fail::list();
    assert_eq!(listed.len(), 10, "instrumented failpoint registry drifted: {listed:?}");
    fail::teardown();
    assert!(fail::list().is_empty());
}
