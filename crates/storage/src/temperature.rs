//! Access-temperature tracking and density classification.
//!
//! The paper distinguishes "high-density" data (business-critical,
//! point-accessed, belongs in memory) from "low-density" data (sensor /
//! click-stream, scanned in bulk, belongs on cheap disks). Placement
//! needs two signals: *how hot* a segment currently is (exponentially
//! decayed access frequency) and *what kind* of data it is.

use std::fmt;

/// The paper's data-density classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DensityClass {
    /// Business-critical objects under transactional point access.
    High,
    /// Append-mostly statistical data queried by massive scans.
    Low,
}

impl fmt::Display for DensityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DensityClass::High => f.write_str("high-density"),
            DensityClass::Low => f.write_str("low-density"),
        }
    }
}

/// The kind of access recorded against a segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A point lookup (touches one block).
    Point,
    /// A bulk scan (touches the whole segment).
    Scan,
}

/// Exponentially decayed access-frequency estimator.
///
/// `record` bumps the temperature; `decay(dt)` halves it every
/// `half_life` seconds of inactivity. The result is a stable hotness
/// score in accesses-per-halflife units.
///
/// ```
/// use haec_storage::temperature::Temperature;
/// let mut t = Temperature::new(60.0);
/// t.record(1.0);
/// t.record(1.0);
/// assert!(t.value() > 1.9);
/// t.decay(60.0);                 // one half-life passes
/// assert!((t.value() - 1.0).abs() < 0.05);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Temperature {
    value: f64,
    half_life_s: f64,
}

impl Temperature {
    /// Creates a cold tracker with the given half-life in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `half_life_s` is not strictly positive.
    pub fn new(half_life_s: f64) -> Self {
        assert!(half_life_s > 0.0, "half-life must be positive");
        Temperature { value: 0.0, half_life_s }
    }

    /// Adds `weight` heat (1.0 per point access; scans typically weigh
    /// by blocks touched).
    pub fn record(&mut self, weight: f64) {
        self.value += weight;
    }

    /// Applies `dt_s` seconds of exponential decay.
    pub fn decay(&mut self, dt_s: f64) {
        if dt_s > 0.0 {
            self.value *= 0.5f64.powf(dt_s / self.half_life_s);
        }
    }

    /// The current hotness score.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl fmt::Display for Temperature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut t = Temperature::new(10.0);
        assert_eq!(t.value(), 0.0);
        t.record(1.0);
        t.record(2.5);
        assert!((t.value() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn decay_halves_per_half_life() {
        let mut t = Temperature::new(10.0);
        t.record(8.0);
        t.decay(10.0);
        assert!((t.value() - 4.0).abs() < 1e-9);
        t.decay(20.0);
        assert!((t.value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_dt_is_noop() {
        let mut t = Temperature::new(10.0);
        t.record(5.0);
        t.decay(0.0);
        assert_eq!(t.value(), 5.0);
    }

    #[test]
    fn hot_beats_cold_after_decay() {
        let mut hot = Temperature::new(60.0);
        let mut cold = Temperature::new(60.0);
        for _ in 0..100 {
            hot.record(1.0);
        }
        cold.record(1.0);
        hot.decay(600.0);
        cold.decay(600.0);
        assert!(hot.value() > cold.value());
    }

    #[test]
    #[should_panic(expected = "half-life")]
    fn bad_half_life_panics() {
        let _ = Temperature::new(0.0);
    }

    #[test]
    fn displays() {
        assert_eq!(format!("{}", DensityClass::Low), "low-density");
        let t = Temperature::new(1.0);
        assert_eq!(format!("{t}"), "0.000");
    }
}
