//! Storage tiers: the levels of the paper's "multi-level storage
//! structures" (§IV.B), each with latency, bandwidth and energy
//! parameters.
//!
//! "Main memory is the new disk, disk is the new archive": the tier
//! table makes that quantitative, so placement policies can trade
//! access latency against capacity cost and energy.

use haec_energy::units::ByteCount;
use haec_energy::ResourceProfile;
use std::fmt;
use std::time::Duration;

/// A level of the storage hierarchy, fastest first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StorageTier {
    /// DRAM: the primary data home of the in-memory DBMS.
    Dram,
    /// Persistent memory (storage-class memory, paper ref \[19\]).
    Nvm,
    /// Flash SSD.
    Ssd,
    /// Spinning disk ("low-density" data farm).
    Disk,
}

impl StorageTier {
    /// All tiers, fastest first.
    pub const ALL: [StorageTier; 4] =
        [StorageTier::Dram, StorageTier::Nvm, StorageTier::Ssd, StorageTier::Disk];

    /// The next slower tier, if any.
    pub fn demote(self) -> Option<StorageTier> {
        match self {
            StorageTier::Dram => Some(StorageTier::Nvm),
            StorageTier::Nvm => Some(StorageTier::Ssd),
            StorageTier::Ssd => Some(StorageTier::Disk),
            StorageTier::Disk => None,
        }
    }

    /// The next faster tier, if any.
    pub fn promote(self) -> Option<StorageTier> {
        match self {
            StorageTier::Dram => None,
            StorageTier::Nvm => Some(StorageTier::Dram),
            StorageTier::Ssd => Some(StorageTier::Nvm),
            StorageTier::Disk => Some(StorageTier::Ssd),
        }
    }
}

impl fmt::Display for StorageTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StorageTier::Dram => "dram",
            StorageTier::Nvm => "nvm",
            StorageTier::Ssd => "ssd",
            StorageTier::Disk => "disk",
        };
        f.write_str(s)
    }
}

/// Performance/energy/cost parameters of one tier.
#[derive(Clone, Debug, PartialEq)]
pub struct TierSpec {
    /// Fixed per-access latency (page fetch / seek / word access).
    pub access_latency: Duration,
    /// Streaming bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Dynamic energy per byte moved (picojoules).
    pub pj_per_byte: f64,
    /// Static power attributable per GiB stored.
    pub static_w_per_gib: f64,
    /// Relative capacity cost ($(/GiB, arbitrary units) — used by the
    /// placement policy's budget.
    pub cost_per_gib: f64,
}

impl TierSpec {
    /// 2013-era defaults for `tier` (DDR3 / early SCM / SATA SSD /
    /// nearline disk).
    pub fn default_for(tier: StorageTier) -> TierSpec {
        match tier {
            StorageTier::Dram => TierSpec {
                access_latency: Duration::from_nanos(100),
                bandwidth: 40.0e9,
                pj_per_byte: 60.0,
                static_w_per_gib: 0.35,
                cost_per_gib: 10.0,
            },
            StorageTier::Nvm => TierSpec {
                access_latency: Duration::from_micros(1),
                bandwidth: 8.0e9,
                pj_per_byte: 150.0,
                static_w_per_gib: 0.05,
                cost_per_gib: 5.0,
            },
            StorageTier::Ssd => TierSpec {
                access_latency: Duration::from_micros(80),
                bandwidth: 500.0e6,
                pj_per_byte: 600.0,
                static_w_per_gib: 0.01,
                cost_per_gib: 1.0,
            },
            StorageTier::Disk => TierSpec {
                access_latency: Duration::from_millis(8),
                bandwidth: 140.0e6,
                pj_per_byte: 2500.0,
                static_w_per_gib: 0.002,
                cost_per_gib: 0.05,
            },
        }
    }

    /// Time to serve one access of `bytes` from this tier.
    pub fn access_time(&self, bytes: ByteCount) -> Duration {
        self.access_latency + Duration::from_secs_f64(bytes.bytes() as f64 / self.bandwidth)
    }

    /// The resource profile of one access of `bytes` (DRAM traffic is
    /// metered as DRAM; every other tier is metered as disk traffic plus
    /// a seek).
    pub fn access_profile(&self, tier: StorageTier, bytes: ByteCount) -> ResourceProfile {
        match tier {
            StorageTier::Dram => ResourceProfile { dram_read: bytes, ..ResourceProfile::default() },
            StorageTier::Nvm => ResourceProfile {
                dram_read: bytes, // metered on the memory bus
                ..ResourceProfile::default()
            },
            StorageTier::Ssd | StorageTier::Disk => {
                ResourceProfile { disk_read: bytes, disk_seeks: 1, ..ResourceProfile::default() }
            }
        }
    }
}

/// The full tier table.
#[derive(Clone, Debug, PartialEq)]
pub struct TierTable {
    specs: [TierSpec; 4],
}

impl TierTable {
    /// The 2013 defaults for all tiers.
    pub fn default_2013() -> Self {
        TierTable {
            specs: [
                TierSpec::default_for(StorageTier::Dram),
                TierSpec::default_for(StorageTier::Nvm),
                TierSpec::default_for(StorageTier::Ssd),
                TierSpec::default_for(StorageTier::Disk),
            ],
        }
    }

    /// The spec of `tier`.
    pub fn spec(&self, tier: StorageTier) -> &TierSpec {
        &self.specs[tier as usize]
    }

    /// Replaces the spec of `tier` (for what-if experiments).
    pub fn set_spec(&mut self, tier: StorageTier, spec: TierSpec) {
        self.specs[tier as usize] = spec;
    }
}

impl Default for TierTable {
    fn default() -> Self {
        TierTable::default_2013()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_strictly_increases_down_the_hierarchy() {
        let t = TierTable::default_2013();
        let lats: Vec<Duration> = StorageTier::ALL.iter().map(|&tier| t.spec(tier).access_latency).collect();
        assert!(lats.windows(2).all(|w| w[0] < w[1]), "{lats:?}");
    }

    #[test]
    fn bandwidth_strictly_decreases() {
        let t = TierTable::default_2013();
        let bws: Vec<f64> = StorageTier::ALL.iter().map(|&tier| t.spec(tier).bandwidth).collect();
        assert!(bws.windows(2).all(|w| w[0] > w[1]), "{bws:?}");
    }

    #[test]
    fn cost_per_gib_decreases() {
        let t = TierTable::default_2013();
        let costs: Vec<f64> = StorageTier::ALL.iter().map(|&tier| t.spec(tier).cost_per_gib).collect();
        assert!(costs.windows(2).all(|w| w[0] > w[1]), "{costs:?}");
    }

    #[test]
    fn promote_demote_chain() {
        assert_eq!(StorageTier::Dram.demote(), Some(StorageTier::Nvm));
        assert_eq!(StorageTier::Disk.demote(), None);
        assert_eq!(StorageTier::Disk.promote(), Some(StorageTier::Ssd));
        assert_eq!(StorageTier::Dram.promote(), None);
        // promote ∘ demote = identity (where defined)
        for t in StorageTier::ALL {
            if let Some(d) = t.demote() {
                assert_eq!(d.promote(), Some(t));
            }
        }
    }

    #[test]
    fn access_time_includes_latency_floor() {
        let spec = TierSpec::default_for(StorageTier::Disk);
        let t0 = spec.access_time(ByteCount::ZERO);
        assert_eq!(t0, Duration::from_millis(8));
        let t1 = spec.access_time(ByteCount::from_mib(140));
        assert!(t1 > Duration::from_secs(1));
    }

    #[test]
    fn profiles_route_to_right_component() {
        let table = TierTable::default_2013();
        let b = ByteCount::from_kib(4);
        let dram = table.spec(StorageTier::Dram).access_profile(StorageTier::Dram, b);
        assert_eq!(dram.dram_read, b);
        assert_eq!(dram.disk_seeks, 0);
        let disk = table.spec(StorageTier::Disk).access_profile(StorageTier::Disk, b);
        assert_eq!(disk.disk_read, b);
        assert_eq!(disk.disk_seeks, 1);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", StorageTier::Nvm), "nvm");
    }
}
