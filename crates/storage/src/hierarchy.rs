//! The storage hierarchy: segments, placement policies, aging and
//! migration — experiment E7's machinery.

use crate::temperature::{AccessKind, DensityClass, Temperature};
use crate::tier::{StorageTier, TierTable};
use haec_energy::units::ByteCount;
use haec_energy::ResourceProfile;
use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

/// Identifier of a storage segment (a table partition / column extent).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub u64);

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

/// Metadata of one segment.
#[derive(Clone, Debug, PartialEq)]
pub struct Segment {
    /// Payload size.
    pub size: ByteCount,
    /// The paper's density classification.
    pub density: DensityClass,
    /// Current tier.
    pub tier: StorageTier,
    /// Hotness tracker.
    pub temperature: Temperature,
    /// Total accesses ever.
    pub accesses: u64,
}

/// Placement/aging policy for the hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlacementPolicy {
    /// Leave every segment where it was created (no aging).
    Static,
    /// Pure temperature thresholds, density-blind.
    TemperatureOnly,
    /// The paper's policy: temperature thresholds, but high-density data
    /// never leaves DRAM/NVM and low-density data never occupies DRAM.
    DensityAware,
}

impl fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PlacementPolicy::Static => "static",
            PlacementPolicy::TemperatureOnly => "temperature",
            PlacementPolicy::DensityAware => "density-aware",
        };
        f.write_str(s)
    }
}

/// The outcome of one access: where it was served from and what it cost.
#[derive(Clone, Debug, PartialEq)]
pub struct AccessOutcome {
    /// The tier that served the access.
    pub tier: StorageTier,
    /// Modelled service time.
    pub time: Duration,
    /// Modelled resource consumption.
    pub profile: ResourceProfile,
}

/// One migration performed by [`Hierarchy::age`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Migration {
    /// The segment moved.
    pub segment: SegmentId,
    /// Where it was.
    pub from: StorageTier,
    /// Where it went.
    pub to: StorageTier,
}

/// The multi-level store.
///
/// ```
/// use haec_storage::prelude::*;
/// use haec_energy::units::ByteCount;
///
/// let mut h = Hierarchy::new(PlacementPolicy::DensityAware);
/// let seg = h.create_segment(ByteCount::from_mib(64), DensityClass::Low);
/// assert_eq!(h.segment(seg).unwrap().tier, StorageTier::Ssd); // low-density starts cold
/// let out = h.access(seg, AccessKind::Scan);
/// assert!(out.time.as_micros() > 0);
/// ```
#[derive(Debug)]
pub struct Hierarchy {
    tiers: TierTable,
    policy: PlacementPolicy,
    segments: HashMap<SegmentId, Segment>,
    next_id: u64,
    clock_s: f64,
    /// Temperature half-life used for new segments.
    half_life_s: f64,
    /// Promote when hotter than this.
    promote_above: f64,
    /// Demote when colder than this.
    demote_below: f64,
}

impl Hierarchy {
    /// Creates an empty hierarchy with 2013 tier defaults and standard
    /// thresholds.
    pub fn new(policy: PlacementPolicy) -> Self {
        Hierarchy {
            tiers: TierTable::default_2013(),
            policy,
            segments: HashMap::new(),
            next_id: 0,
            clock_s: 0.0,
            half_life_s: 300.0,
            promote_above: 4.0,
            demote_below: 0.5,
        }
    }

    /// Replaces the tier table (what-if experiments).
    pub fn with_tiers(mut self, tiers: TierTable) -> Self {
        self.tiers = tiers;
        self
    }

    /// Overrides the promotion/demotion thresholds.
    pub fn with_thresholds(mut self, promote_above: f64, demote_below: f64) -> Self {
        assert!(promote_above > demote_below, "thresholds must be ordered");
        self.promote_above = promote_above;
        self.demote_below = demote_below;
        self
    }

    /// The active policy.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Creates a segment; initial tier follows the density class
    /// (high-density → DRAM, low-density → SSD).
    pub fn create_segment(&mut self, size: ByteCount, density: DensityClass) -> SegmentId {
        let id = SegmentId(self.next_id);
        self.next_id += 1;
        let tier = match density {
            DensityClass::High => StorageTier::Dram,
            DensityClass::Low => StorageTier::Ssd,
        };
        self.segments.insert(
            id,
            Segment { size, density, tier, temperature: Temperature::new(self.half_life_s), accesses: 0 },
        );
        id
    }

    /// Looks a segment up.
    pub fn segment(&self, id: SegmentId) -> Option<&Segment> {
        self.segments.get(&id)
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Returns `true` if no segments exist.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Advances the hierarchy's clock (drives temperature decay).
    pub fn tick(&mut self, dt: Duration) {
        let dt_s = dt.as_secs_f64();
        self.clock_s += dt_s;
        for seg in self.segments.values_mut() {
            seg.temperature.decay(dt_s);
        }
    }

    /// Serves one access against a segment, heating it up.
    ///
    /// # Panics
    ///
    /// Panics if the segment does not exist.
    pub fn access(&mut self, id: SegmentId, kind: AccessKind) -> AccessOutcome {
        let seg = self.segments.get_mut(&id).expect("no such segment");
        seg.accesses += 1;
        let bytes = match kind {
            AccessKind::Point => ByteCount::from_kib(4).min_of(seg.size),
            AccessKind::Scan => seg.size,
        };
        // Scans heat less per byte than point accesses: a scan is one
        // logical use of the whole segment.
        seg.temperature.record(match kind {
            AccessKind::Point => 1.0,
            AccessKind::Scan => 2.0,
        });
        let spec = self.tiers.spec(seg.tier);
        AccessOutcome {
            tier: seg.tier,
            time: spec.access_time(bytes),
            profile: spec.access_profile(seg.tier, bytes),
        }
    }

    /// Runs one aging pass: applies the policy's promotion/demotion
    /// rules and returns the migrations performed. Migration cost is
    /// returned via the per-migration profiles in `migration_cost`.
    pub fn age(&mut self) -> Vec<Migration> {
        if self.policy == PlacementPolicy::Static {
            return Vec::new();
        }
        let mut migrations = Vec::new();
        let mut ids: Vec<SegmentId> = self.segments.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let seg = self.segments.get_mut(&id).expect("listed segment exists");
            let temp = seg.temperature.value();
            let mut target = seg.tier;
            if temp > self.promote_above {
                if let Some(up) = seg.tier.promote() {
                    target = up;
                }
            } else if temp < self.demote_below {
                if let Some(down) = seg.tier.demote() {
                    target = down;
                }
            }
            if self.policy == PlacementPolicy::DensityAware {
                target = match seg.density {
                    // Business-critical data must stay point-addressable.
                    DensityClass::High => target.max(StorageTier::Dram).min(StorageTier::Nvm),
                    // Bulk data never earns DRAM residency.
                    DensityClass::Low => target.max(StorageTier::Nvm),
                };
            }
            if target != seg.tier {
                migrations.push(Migration { segment: id, from: seg.tier, to: target });
                seg.tier = target;
            }
        }
        migrations
    }

    /// The modelled cost of performing `migration` (read from source,
    /// write to destination).
    pub fn migration_cost(&self, migration: &Migration) -> (Duration, ResourceProfile) {
        let seg = &self.segments[&migration.segment];
        let src = self.tiers.spec(migration.from);
        let dst = self.tiers.spec(migration.to);
        let time = src.access_time(seg.size) + dst.access_time(seg.size);
        let profile =
            src.access_profile(migration.from, seg.size) + dst.access_profile(migration.to, seg.size);
        (time, profile)
    }

    /// Total static power of resident data, per the tier specs — the
    /// quantity density-aware placement minimizes.
    pub fn static_power_watts(&self) -> f64 {
        self.segments
            .values()
            .map(|s| {
                let gib = s.size.bytes() as f64 / (1u64 << 30) as f64;
                self.tiers.spec(s.tier).static_w_per_gib * gib
            })
            .sum()
    }

    /// Bytes resident per tier.
    pub fn residency(&self) -> HashMap<StorageTier, u64> {
        let mut out = HashMap::new();
        for s in self.segments.values() {
            *out.entry(s.tier).or_insert(0) += s.size.bytes();
        }
        out
    }
}

/// Extension: min of two byte counts (helper for point-access clamping).
trait ByteCountExt {
    fn min_of(self, other: ByteCount) -> ByteCount;
}

impl ByteCountExt for ByteCount {
    fn min_of(self, other: ByteCount) -> ByteCount {
        if self.bytes() <= other.bytes() {
            self
        } else {
            other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_drives_initial_placement() {
        let mut h = Hierarchy::new(PlacementPolicy::DensityAware);
        let hot = h.create_segment(ByteCount::from_mib(1), DensityClass::High);
        let cold = h.create_segment(ByteCount::from_mib(1), DensityClass::Low);
        assert_eq!(h.segment(hot).unwrap().tier, StorageTier::Dram);
        assert_eq!(h.segment(cold).unwrap().tier, StorageTier::Ssd);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn access_outcome_reflects_tier() {
        let mut h = Hierarchy::new(PlacementPolicy::Static);
        let hot = h.create_segment(ByteCount::from_mib(1), DensityClass::High);
        let cold = h.create_segment(ByteCount::from_mib(1), DensityClass::Low);
        let fast = h.access(hot, AccessKind::Point);
        let slow = h.access(cold, AccessKind::Point);
        assert!(fast.time < slow.time);
        assert_eq!(fast.tier, StorageTier::Dram);
        assert_eq!(slow.tier, StorageTier::Ssd);
        assert!(slow.profile.disk_seeks > 0);
    }

    #[test]
    fn point_access_clamps_to_segment_size() {
        let mut h = Hierarchy::new(PlacementPolicy::Static);
        let tiny = h.create_segment(ByteCount::new(100), DensityClass::High);
        let out = h.access(tiny, AccessKind::Point);
        assert_eq!(out.profile.dram_read.bytes(), 100);
    }

    #[test]
    fn static_policy_never_migrates() {
        let mut h = Hierarchy::new(PlacementPolicy::Static);
        let seg = h.create_segment(ByteCount::from_mib(1), DensityClass::Low);
        for _ in 0..100 {
            h.access(seg, AccessKind::Point);
        }
        assert!(h.age().is_empty());
    }

    #[test]
    fn hot_cold_migration_cycle() {
        let mut h = Hierarchy::new(PlacementPolicy::TemperatureOnly);
        let seg = h.create_segment(ByteCount::from_mib(1), DensityClass::Low);
        // Heat it: should promote SSD → NVM (and later further).
        for _ in 0..10 {
            h.access(seg, AccessKind::Point);
        }
        let migs = h.age();
        assert_eq!(migs.len(), 1);
        assert_eq!(migs[0].from, StorageTier::Ssd);
        assert_eq!(migs[0].to, StorageTier::Nvm);
        // Cool it for a long time: demotes back down.
        h.tick(Duration::from_secs(3600 * 10));
        let migs = h.age();
        assert_eq!(migs.len(), 1);
        assert_eq!(migs[0].to, StorageTier::Ssd);
    }

    #[test]
    fn density_aware_pins_classes() {
        let mut h = Hierarchy::new(PlacementPolicy::DensityAware);
        let critical = h.create_segment(ByteCount::from_mib(1), DensityClass::High);
        let bulk = h.create_segment(ByteCount::from_mib(1), DensityClass::Low);
        // Freeze the critical segment: may demote at most to NVM.
        h.tick(Duration::from_secs(3600 * 100));
        let migs = h.age();
        let critical_mig = migs.iter().find(|m| m.segment == critical).unwrap();
        assert_eq!(critical_mig.to, StorageTier::Nvm);
        // Heat the bulk segment hard: must never reach DRAM.
        for _ in 0..1000 {
            h.access(bulk, AccessKind::Scan);
        }
        for _ in 0..5 {
            h.age();
        }
        assert!(h.segment(bulk).unwrap().tier >= StorageTier::Nvm);
    }

    #[test]
    fn migration_cost_positive() {
        let mut h = Hierarchy::new(PlacementPolicy::TemperatureOnly);
        let seg = h.create_segment(ByteCount::from_mib(64), DensityClass::Low);
        for _ in 0..10 {
            h.access(seg, AccessKind::Point);
        }
        let migs = h.age();
        let (time, profile) = h.migration_cost(&migs[0]);
        assert!(time > Duration::ZERO);
        assert!(!profile.is_empty());
    }

    #[test]
    fn static_power_falls_when_data_ages_out() {
        let mut h = Hierarchy::new(PlacementPolicy::TemperatureOnly);
        let seg = h.create_segment(ByteCount::from_gib(1), DensityClass::High);
        let hot_power = h.static_power_watts();
        h.tick(Duration::from_secs(3600 * 100));
        // Repeated aging passes demote step by step to disk.
        for _ in 0..4 {
            h.age();
        }
        assert_eq!(h.segment(seg).unwrap().tier, StorageTier::Disk);
        assert!(h.static_power_watts() < hot_power / 10.0);
    }

    #[test]
    fn residency_accounting() {
        let mut h = Hierarchy::new(PlacementPolicy::Static);
        h.create_segment(ByteCount::from_mib(2), DensityClass::High);
        h.create_segment(ByteCount::from_mib(3), DensityClass::High);
        h.create_segment(ByteCount::from_mib(5), DensityClass::Low);
        let r = h.residency();
        assert_eq!(r[&StorageTier::Dram], 5 << 20);
        assert_eq!(r[&StorageTier::Ssd], 5 << 20);
    }

    #[test]
    #[should_panic(expected = "no such segment")]
    fn access_missing_segment_panics() {
        Hierarchy::new(PlacementPolicy::Static).access(SegmentId(99), AccessKind::Point);
    }

    #[test]
    fn displays() {
        assert_eq!(format!("{}", SegmentId(3)), "seg3");
        assert_eq!(format!("{}", PlacementPolicy::DensityAware), "density-aware");
    }
}
