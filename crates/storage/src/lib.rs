//! # haec-storage
//!
//! Multi-level storage hierarchy with temperature-based aging — the
//! "multi-level storage structures" (§IV.B) of the `haecdb` reproduction
//! of *Lehner, "Energy-Efficient In-Memory Database Computing"
//! (DATE 2013)*.
//!
//! * [`tier`] — DRAM / NVM / SSD / disk with 2013-era latency, bandwidth,
//!   energy-per-byte and capacity-cost parameters.
//! * [`temperature`] — exponentially decayed hotness plus the paper's
//!   high-density / low-density classification.
//! * [`hierarchy`] — segments, placement policies (static /
//!   temperature-only / density-aware), aging passes and migration
//!   costing (experiment E7).
//! * [`buffer`] — a clock buffer pool for cold-tier blocks.
//!
//! ## Example
//!
//! ```
//! use haec_storage::prelude::*;
//! use haec_energy::units::ByteCount;
//! use std::time::Duration;
//!
//! let mut h = Hierarchy::new(PlacementPolicy::DensityAware);
//! let orders = h.create_segment(ByteCount::from_mib(256), DensityClass::High);
//! let clicks = h.create_segment(ByteCount::from_gib(4), DensityClass::Low);
//! h.access(orders, AccessKind::Point);
//! h.access(clicks, AccessKind::Scan);
//! h.tick(Duration::from_secs(600));
//! let migrations = h.age();
//! assert!(migrations.len() <= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod buffer;
pub mod hierarchy;
pub mod temperature;
pub mod tier;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::buffer::{BlockId, BufferOutcome, BufferPool};
    pub use crate::hierarchy::{AccessOutcome, Hierarchy, Migration, PlacementPolicy, Segment, SegmentId};
    pub use crate::temperature::{AccessKind, DensityClass, Temperature};
    pub use crate::tier::{StorageTier, TierSpec, TierTable};
}

pub use buffer::BufferPool;
pub use hierarchy::{Hierarchy, PlacementPolicy, SegmentId};
pub use temperature::{AccessKind, DensityClass};
pub use tier::{StorageTier, TierTable};
