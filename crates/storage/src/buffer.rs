//! A clock (second-chance) buffer manager for cold-tier blocks.
//!
//! The paper notes that main-memory systems re-grow a buffer manager one
//! level up: "cache lines may be considered the new block size and the
//! CPU cache management may reflect the new buffer manager". For data
//! that *does* live on the cold tiers, an explicit buffer pool still
//! decides which blocks get DRAM residency; this is that pool.

use std::collections::HashMap;
use std::fmt;

/// Identifier of an on-cold-storage block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u64);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk{}", self.0)
    }
}

/// Result of a buffer access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BufferOutcome {
    /// The block was already resident.
    Hit,
    /// The block was fetched; no eviction was needed.
    MissFree,
    /// The block was fetched and `evicted` was dropped to make room.
    MissEvict(
        /// The evicted block.
        BlockId,
    ),
}

impl BufferOutcome {
    /// Returns `true` for a hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, BufferOutcome::Hit)
    }
}

#[derive(Clone, Copy, Debug)]
struct Frame {
    block: BlockId,
    referenced: bool,
    pinned: bool,
}

/// Fixed-capacity clock buffer pool.
///
/// ```
/// use haec_storage::buffer::{BlockId, BufferPool};
/// let mut pool = BufferPool::new(2);
/// assert!(!pool.access(BlockId(1)).is_hit());
/// assert!(pool.access(BlockId(1)).is_hit());
/// ```
#[derive(Debug)]
pub struct BufferPool {
    frames: Vec<Frame>,
    map: HashMap<BlockId, usize>,
    hand: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// Creates a pool with `capacity` frames.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            frames: Vec::with_capacity(capacity),
            map: HashMap::new(),
            hand: 0,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Returns `true` if nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The pool capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio over all accesses (0 if none).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Returns `true` if `block` is resident.
    pub fn contains(&self, block: BlockId) -> bool {
        self.map.contains_key(&block)
    }

    /// Accesses `block`, faulting it in if needed.
    ///
    /// # Panics
    ///
    /// Panics if every frame is pinned and an eviction is required.
    pub fn access(&mut self, block: BlockId) -> BufferOutcome {
        if let Some(&idx) = self.map.get(&block) {
            self.frames[idx].referenced = true;
            self.hits += 1;
            return BufferOutcome::Hit;
        }
        self.misses += 1;
        if self.frames.len() < self.capacity {
            self.frames.push(Frame { block, referenced: true, pinned: false });
            self.map.insert(block, self.frames.len() - 1);
            return BufferOutcome::MissFree;
        }
        // Clock sweep: give referenced frames a second chance.
        let mut sweeps = 0usize;
        loop {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            let frame = &mut self.frames[idx];
            if frame.pinned {
                sweeps += 1;
                assert!(sweeps <= 2 * self.frames.len(), "all frames pinned, cannot evict");
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                sweeps += 1;
                continue;
            }
            let evicted = frame.block;
            self.map.remove(&evicted);
            frame.block = block;
            frame.referenced = true;
            self.map.insert(block, idx);
            return BufferOutcome::MissEvict(evicted);
        }
    }

    /// Pins `block` (must be resident), protecting it from eviction.
    ///
    /// # Panics
    ///
    /// Panics if the block is not resident.
    pub fn pin(&mut self, block: BlockId) {
        let idx = self.map[&block];
        self.frames[idx].pinned = true;
    }

    /// Unpins `block` (must be resident).
    ///
    /// # Panics
    ///
    /// Panics if the block is not resident.
    pub fn unpin(&mut self, block: BlockId) {
        let idx = self.map[&block];
        self.frames[idx].pinned = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses_counted() {
        let mut p = BufferPool::new(4);
        assert_eq!(p.access(BlockId(1)), BufferOutcome::MissFree);
        assert_eq!(p.access(BlockId(1)), BufferOutcome::Hit);
        assert_eq!(p.hits(), 1);
        assert_eq!(p.misses(), 1);
        assert_eq!(p.hit_ratio(), 0.5);
    }

    #[test]
    fn clock_gives_second_chances() {
        let mut p = BufferPool::new(2);
        p.access(BlockId(1));
        p.access(BlockId(2));
        // Both frames referenced: the sweep clears both and the hand
        // order makes block 1 the victim (clock, not exact LRU).
        match p.access(BlockId(3)) {
            BufferOutcome::MissEvict(victim) => assert_eq!(victim, BlockId(1)),
            other => panic!("expected eviction, got {other:?}"),
        }
        // State: frame0 = 3 (referenced), frame1 = 2 (cleared).
        // Re-reference 3; the next miss must spare it and take 2 — the
        // second chance in action.
        assert!(p.access(BlockId(3)).is_hit());
        match p.access(BlockId(5)) {
            BufferOutcome::MissEvict(victim) => assert_eq!(victim, BlockId(2)),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(p.contains(BlockId(3)));
        assert!(p.contains(BlockId(5)));
    }

    #[test]
    fn pinned_frames_survive() {
        let mut p = BufferPool::new(2);
        p.access(BlockId(1));
        p.access(BlockId(2));
        p.pin(BlockId(1));
        for b in 3..20 {
            p.access(BlockId(b));
            assert!(p.contains(BlockId(1)), "pinned block evicted at {b}");
        }
        p.unpin(BlockId(1));
        // Now it can be evicted eventually.
        let mut evicted1 = false;
        for b in 20..40 {
            p.access(BlockId(b));
            if !p.contains(BlockId(1)) {
                evicted1 = true;
                break;
            }
        }
        assert!(evicted1);
    }

    #[test]
    #[should_panic(expected = "all frames pinned")]
    fn all_pinned_panics() {
        let mut p = BufferPool::new(1);
        p.access(BlockId(1));
        p.pin(BlockId(1));
        p.access(BlockId(2));
    }

    #[test]
    fn working_set_fits_high_hit_ratio() {
        let mut p = BufferPool::new(10);
        for round in 0..100 {
            let _ = round;
            for b in 0..10 {
                p.access(BlockId(b));
            }
        }
        assert!(p.hit_ratio() > 0.98, "{}", p.hit_ratio());
    }

    #[test]
    fn scan_thrashes_small_pool() {
        let mut p = BufferPool::new(10);
        for b in 0..1000u64 {
            p.access(BlockId(b % 100));
        }
        assert!(p.hit_ratio() < 0.2, "{}", p.hit_ratio());
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_panics() {
        let _ = BufferPool::new(0);
    }

    #[test]
    fn accessors() {
        let mut p = BufferPool::new(3);
        assert!(p.is_empty());
        p.access(BlockId(7));
        assert_eq!(p.len(), 1);
        assert_eq!(p.capacity(), 3);
        assert_eq!(format!("{}", BlockId(7)), "blk7");
        assert_eq!(BufferPool::new(1).hit_ratio(), 0.0);
    }
}
