//! Measurement collection: histograms, percentiles, time-weighted means.
//!
//! Every experiment reports latency percentiles, throughput and
//! utilization; this module is the one implementation all of them share.

use std::fmt;
use std::time::Duration;

/// Running mean / variance / extrema via Welford's algorithm.
///
/// ```
/// use haec_sim::stats::Summary;
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0] { s.record(x); }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let d = x - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} std={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min().unwrap_or(0.0),
            self.max().unwrap_or(0.0)
        )
    }
}

/// HDR-style log-linear histogram over positive values, built for latency
/// percentiles: ~1.6% relative error, fixed memory, O(1) insert.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// 64 exponent buckets × 64 linear sub-buckets.
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
}

const SUB_BUCKETS: usize = 64;
const SUB_BITS: u32 = 6;

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: vec![0; 64 * SUB_BUCKETS], count: 0, sum: 0.0 }
    }

    fn index_of(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        // Exponent group: values in [2^e, 2^{e+1}) share a group of
        // SUB_BUCKETS linear sub-buckets of width 2^{e-SUB_BITS}.
        let e = 63 - value.leading_zeros(); // e >= SUB_BITS here
        let shift = e - SUB_BITS;
        let sub = (value >> shift) as usize - SUB_BUCKETS; // in [0, SUB_BUCKETS)
        (e - SUB_BITS + 1) as usize * SUB_BUCKETS + sub
    }

    fn value_of(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let group = index / SUB_BUCKETS - 1; // = e - SUB_BITS
        let sub = index % SUB_BUCKETS;
        // Lower bound of the bucket; within 1/SUB_BUCKETS relative error.
        ((SUB_BUCKETS + sub) as u64) << group
    }

    /// Records one non-negative integer value (e.g. nanoseconds).
    pub fn record(&mut self, value: u64) {
        let idx = Self::index_of(value).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as f64;
    }

    /// Records a duration with nanosecond resolution.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The value at quantile `q` ∈ [0, 1] (upper bucket bound; `None` if
    /// empty).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Self::value_of(i));
            }
        }
        Some(Self::value_of(self.buckets.len() - 1))
    }

    /// Quantile as a `Duration` (for nanosecond-recorded histograms).
    pub fn quantile_duration(&self, q: f64) -> Option<Duration> {
        self.quantile(q).map(Duration::from_nanos)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.0} p50={} p95={} p99={}",
            self.count,
            self.mean(),
            self.quantile(0.50).unwrap_or(0),
            self.quantile(0.95).unwrap_or(0),
            self.quantile(0.99).unwrap_or(0),
        )
    }
}

/// Time-weighted average of a step function (e.g. number of busy cores
/// over virtual time → utilization).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimeWeighted {
    integral: f64,
    last_value: f64,
    last_t: f64,
    start_t: Option<f64>,
}

impl TimeWeighted {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        TimeWeighted::default()
    }

    /// Records that the tracked quantity changed to `value` at time `t`
    /// (seconds). Times must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the previous observation.
    pub fn set(&mut self, t: f64, value: f64) {
        match self.start_t {
            None => {
                self.start_t = Some(t);
            }
            Some(_) => {
                assert!(t >= self.last_t, "time went backwards");
                self.integral += self.last_value * (t - self.last_t);
            }
        }
        self.last_t = t;
        self.last_value = value;
    }

    /// The time-weighted mean over `[start, t_end]`.
    pub fn mean_until(&self, t_end: f64) -> f64 {
        match self.start_t {
            None => 0.0,
            Some(s) => {
                let total = t_end - s;
                if total <= 0.0 {
                    return 0.0;
                }
                let integral = self.integral + self.last_value * (t_end - self.last_t);
                integral / total
            }
        }
    }
}

/// Left-pads/truncates experiment table cells; shared by the harness.
pub fn fmt_cell(s: &str, width: usize) -> String {
    if s.len() >= width {
        s.to_string()
    } else {
        format!("{s:>width$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        a.record(5.0);
        let b = Summary::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Summary::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 5.0);
    }

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        // Small values land in exact buckets.
        assert_eq!(h.quantile(1.0), Some(63));
        assert_eq!(h.count(), 64);
    }

    #[test]
    fn histogram_quantiles_bounded_error() {
        let mut h = Histogram::new();
        for i in 1..=100_000u64 {
            h.record(i);
        }
        let p50 = h.quantile(0.5).unwrap() as f64;
        assert!((p50 - 50_000.0).abs() / 50_000.0 < 0.02, "p50={p50}");
        let p99 = h.quantile(0.99).unwrap() as f64;
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.02, "p99={p99}");
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..1000 {
            if i % 2 == 0 {
                a.record(i);
            } else {
                b.record(i);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        let p50 = a.quantile(0.5).unwrap() as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.05);
    }

    #[test]
    fn histogram_durations() {
        let mut h = Histogram::new();
        h.record_duration(Duration::from_micros(100));
        let q = h.quantile_duration(1.0).unwrap();
        let err = (q.as_nanos() as f64 - 100_000.0).abs() / 100_000.0;
        assert!(err < 0.02, "q={q:?}");
    }

    #[test]
    fn histogram_mean() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        assert_eq!(h.mean(), 15.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn histogram_bad_quantile_panics() {
        Histogram::new().quantile(1.5);
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new();
        tw.set(0.0, 0.0);
        tw.set(1.0, 4.0); // value 0 for [0,1)
        tw.set(3.0, 2.0); // value 4 for [1,3)
                          // value 2 for [3,5]
        let m = tw.mean_until(5.0);
        // (0*1 + 4*2 + 2*2) / 5 = 12/5
        assert!((m - 2.4).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_empty_and_zero_span() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.mean_until(10.0), 0.0);
        let mut tw = TimeWeighted::new();
        tw.set(5.0, 3.0);
        assert_eq!(tw.mean_until(5.0), 0.0);
    }

    #[test]
    fn displays_nonempty() {
        let mut s = Summary::new();
        s.record(1.0);
        assert!(format!("{s}").contains("n=1"));
        let mut h = Histogram::new();
        h.record(5);
        assert!(format!("{h}").contains("n=1"));
    }

    #[test]
    fn fmt_cell_pads() {
        assert_eq!(fmt_cell("ab", 4), "  ab");
        assert_eq!(fmt_cell("abcdef", 4), "abcdef");
    }
}
