//! Seeded randomness for workload generation.
//!
//! All stochastic inputs of the reproduction (arrival processes, key
//! skew, value distributions) flow through [`SimRng`] so that a single
//! seed pins down an entire experiment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A deterministic random source with the distributions the workloads
/// need (uniform, exponential, Zipf, Bernoulli).
///
/// ```
/// use haec_sim::rng::SimRng;
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.uniform_u64(1000), b.uniform_u64(1000));
/// ```
pub struct SimRng {
    rng: StdRng,
    seed: u64,
    /// Memoized Zipf constants for the last `(n, theta)` pair.
    zipf_cache: Option<ZipfConsts>,
}

#[derive(Clone, Copy)]
struct ZipfConsts {
    n: u64,
    theta: f64,
    zetan: f64,
    alpha: f64,
    eta: f64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng { rng: StdRng::seed_from_u64(seed), seed, zipf_cache: None }
    }

    /// The seed this generator was created with.
    pub fn initial_seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator; used to give each
    /// simulated node / thread its own stream while staying reproducible.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.rng.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed(s)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn uniform_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.rng.gen_range(0..bound)
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Bernoulli trial with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn flip(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.rng.gen::<f64>() < p
    }

    /// Exponentially distributed value with the given mean (inter-arrival
    /// times of a Poisson process).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "mean must be positive");
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Normally distributed value via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// A value in `[0, n)` drawn from a Zipf distribution with skew
    /// `theta` (0 = uniform, ~0.99 = classic YCSB hot-spot skew). Uses
    /// the rejection-inversion-free cumulative method with a cached
    /// normalization, adequate for the `n` values used in the
    /// experiments.
    pub fn zipf(&mut self, n: u64, theta: f64) -> u64 {
        assert!(n > 0, "n must be positive");
        assert!(theta >= 0.0, "theta must be non-negative");
        if theta == 0.0 {
            return self.uniform_u64(n);
        }
        // Gray et al. quick-and-accurate Zipf sampler, with the costly
        // zeta normalization memoized per (n, theta).
        let consts = match self.zipf_cache {
            Some(c) if c.n == n && c.theta == theta => c,
            _ => {
                let zetan = zeta(n, theta);
                let alpha = 1.0 / (1.0 - theta);
                let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta(2, theta) / zetan);
                let c = ZipfConsts { n, theta, zetan, alpha, eta };
                self.zipf_cache = Some(c);
                c
            }
        };
        let u = self.uniform_f64();
        let uz = u * consts.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(theta) {
            return 1;
        }
        ((n as f64) * (consts.eta * u - consts.eta + 1.0).powf(consts.alpha)) as u64 % n
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Access the underlying `rand` generator for distributions not
    /// wrapped here.
    pub fn inner(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Exact for small n; sampled harmonic approximation for large n keeps
    // workload generation O(1) per draw after the first.
    if n <= 10_000 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    } else {
        let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        // Integral approximation of the tail.
        let a = 10_000f64;
        let b = n as f64;
        head + (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
    }
}

impl fmt::Debug for SimRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimRng").field("seed", &self.seed).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(1_000_000), b.uniform_u64(1_000_000));
        }
    }

    #[test]
    fn forks_are_independent_but_deterministic() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        let mut fa = a.fork(1);
        let mut fb = b.fork(1);
        assert_eq!(fa.uniform_u64(1000), fb.uniform_u64(1000));
        let mut fc = SimRng::seed(7).fork(2);
        // Different salt gives a different stream (overwhelmingly likely).
        let same = (0..20).all(|_| fa.uniform_u64(1000) == fc.uniform_u64(1000));
        assert!(!same);
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::seed(123);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!((observed - mean).abs() < 0.2, "observed mean {observed}");
    }

    #[test]
    fn normal_moments_close() {
        let mut r = SimRng::seed(9);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn zipf_skew_concentrates_mass() {
        let mut r = SimRng::seed(11);
        let n = 10_000u64;
        let draws = 50_000;
        let mut hot_uniform = 0;
        let mut hot_skewed = 0;
        for _ in 0..draws {
            if r.zipf(n, 0.0) < n / 100 {
                hot_uniform += 1;
            }
            if r.zipf(n, 0.99) < n / 100 {
                hot_skewed += 1;
            }
        }
        // Top 1% of keys: ~1% of uniform draws but a large share of
        // skewed draws.
        assert!(hot_uniform < draws / 50, "uniform hot {hot_uniform}");
        assert!(hot_skewed > draws / 4, "skewed hot {hot_skewed}");
    }

    #[test]
    fn zipf_in_range() {
        let mut r = SimRng::seed(3);
        for _ in 0..10_000 {
            assert!(r.zipf(100, 0.99) < 100);
        }
    }

    #[test]
    fn flip_extremes() {
        let mut r = SimRng::seed(4);
        assert!(!r.flip(0.0));
        assert!(r.flip(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely identity");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn uniform_zero_bound_panics() {
        SimRng::seed(1).uniform_u64(0);
    }

    #[test]
    fn debug_shows_seed() {
        assert!(format!("{:?}", SimRng::seed(99)).contains("99"));
    }
}
