//! # haec-sim
//!
//! Deterministic discrete-event simulation core for the `haecdb`
//! reproduction of *Lehner, "Energy-Efficient In-Memory Database
//! Computing" (DATE 2013)*.
//!
//! The scheduling, networking and elasticity experiments of the paper
//! concern machines (hundreds of cores, multi-node clusters, optical
//! board-level links) that the reproduction environment does not have.
//! Those experiments therefore run on virtual time: a seeded, perfectly
//! reproducible event simulation. This crate provides the three shared
//! ingredients:
//!
//! * [`engine`] — the future-event list ([`engine::EventQueue`]) with
//!   deterministic same-instant ordering and a driver loop ([`engine::run`]).
//! * [`rng`] — seeded randomness ([`rng::SimRng`]) with the workload
//!   distributions (Poisson, Zipf, normal).
//! * [`stats`] — histograms, Welford summaries, time-weighted means.
//!
//! ## Example
//!
//! ```
//! use haec_sim::prelude::*;
//! use std::time::Duration;
//!
//! // M/D/1 queue: Poisson arrivals, fixed 1 ms service.
//! let mut rng = SimRng::seed(1);
//! let mut q = EventQueue::new();
//! for _ in 0..100 {
//!     let dt = Duration::from_secs_f64(rng.exponential(0.002));
//!     let at = q.now().saturating_add(dt); // arrivals relative to t=0
//!     q.schedule_at(SimTime::ZERO + (at - SimTime::ZERO), ());
//! }
//! let mut served = 0u32;
//! let (_, end) = haec_sim::engine::run(&mut q, &mut |_now, _e, _q: &mut EventQueue<()>| {
//!     served += 1;
//!     true
//! }, SimTime::MAX);
//! assert_eq!(served, 100);
//! assert!(end > SimTime::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod rng;
pub mod stats;
pub mod time;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::engine::{run, EventQueue, RunOutcome, World};
    pub use crate::rng::SimRng;
    pub use crate::stats::{Histogram, Summary, TimeWeighted};
    pub use crate::time::SimTime;
}

pub use engine::{EventQueue, RunOutcome};
pub use rng::SimRng;
pub use stats::{Histogram, Summary, TimeWeighted};
pub use time::SimTime;
