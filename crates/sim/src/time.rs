//! Virtual time for deterministic simulation.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in virtual time, in nanoseconds since simulation start.
///
/// ```
/// use haec_sim::time::SimTime;
/// use std::time::Duration;
/// let t = SimTime::ZERO + Duration::from_millis(5);
/// assert_eq!(t.as_nanos(), 5_000_000);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    #[inline]
    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from whole seconds.
    #[inline]
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Duration {
        assert!(earlier <= self, "time went backwards: {earlier} > {self}");
        Duration::from_nanos(self.0 - earlier.0)
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.as_nanos().min(u64::MAX as u128) as u64))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos() as u64)
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_nanos() as u64;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}µs", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration() {
        let t = SimTime::ZERO + Duration::from_micros(3);
        assert_eq!(t.as_nanos(), 3000);
        let mut t2 = t;
        t2 += Duration::from_nanos(10);
        assert_eq!(t2.as_nanos(), 3010);
    }

    #[test]
    fn since_and_sub() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(350);
        assert_eq!(b.since(a), Duration::from_nanos(250));
        assert_eq!(b - a, Duration::from_nanos(250));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn since_panics_backwards() {
        let _ = SimTime::from_nanos(1).since(SimTime::from_nanos(2));
    }

    #[test]
    fn saturating_add_caps() {
        let t = SimTime::MAX.saturating_add(Duration::from_secs(1));
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimTime::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimTime::from_nanos(12_000)), "12.000µs");
        assert_eq!(format!("{}", SimTime::from_nanos(12_000_000)), "12.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(2)), "2.000s");
    }

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert!((SimTime::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-12);
    }
}
