//! The discrete-event engine: an event queue with deterministic ordering
//! and a pull-style simulation loop.
//!
//! Determinism is load-bearing for the reproduction: two events scheduled
//! for the same instant are delivered in scheduling order (a stable
//! sequence number breaks ties), so every experiment table is exactly
//! reproducible from its seed.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::time::Duration;

/// An event payload plus its delivery time, as stored in the queue.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest
        // sequence number) pops first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// ```
/// use haec_sim::engine::EventQueue;
/// use haec_sim::time::SimTime;
/// use std::time::Duration;
///
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime::from_nanos(50), "late");
/// q.schedule_at(SimTime::from_nanos(10), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_nanos(), e), (10, "early"));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: SimTime::ZERO }
    }

    /// The current virtual time (the delivery time of the last popped
    /// event, or zero).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` for absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time: events cannot be
    /// delivered into the past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past ({at} < {})", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Removes and returns the next event, advancing the clock to its
    /// delivery time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| {
            self.now = s.at;
            (s.at, s.event)
        })
    }

    /// The delivery time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue").field("now", &self.now).field("pending", &self.heap.len()).finish()
    }
}

/// A world that reacts to events of type `E`.
///
/// Implementations receive each event together with the queue so they can
/// schedule follow-up events; returning `false` stops the simulation
/// early (e.g. when a measurement horizon is reached).
pub trait World<E> {
    /// Handles one event delivered at `now`.
    fn handle(&mut self, now: SimTime, event: E, queue: &mut EventQueue<E>) -> bool;
}

impl<E, F> World<E> for F
where
    F: FnMut(SimTime, E, &mut EventQueue<E>) -> bool,
{
    fn handle(&mut self, now: SimTime, event: E, queue: &mut EventQueue<E>) -> bool {
        self(now, event, queue)
    }
}

/// Outcome of [`run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The queue drained completely.
    Drained,
    /// The horizon was reached with events still pending.
    HorizonReached,
    /// The world requested an early stop.
    Stopped,
}

/// Drives `world` until the queue drains, `horizon` passes, or the world
/// returns `false`. Returns the outcome and the final virtual time.
pub fn run<E, W: World<E>>(
    queue: &mut EventQueue<E>,
    world: &mut W,
    horizon: SimTime,
) -> (RunOutcome, SimTime) {
    loop {
        match queue.peek_time() {
            None => return (RunOutcome::Drained, queue.now()),
            Some(t) if t > horizon => return (RunOutcome::HorizonReached, queue.now()),
            Some(_) => {
                let (now, ev) = queue.pop().expect("peeked event must pop");
                if !world.handle(now, ev, queue) {
                    return (RunOutcome::Stopped, queue.now());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(30), 3);
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_in(Duration::from_micros(1), "a");
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(1000));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(100), ());
        q.pop();
        q.schedule_at(SimTime::from_nanos(50), ());
    }

    #[test]
    fn run_drains() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(1), 1u32);
        q.schedule_at(SimTime::from_nanos(2), 2);
        let mut seen = Vec::new();
        let (outcome, end) = run(
            &mut q,
            &mut |_: SimTime, e: u32, _: &mut EventQueue<u32>| {
                seen.push(e);
                true
            },
            SimTime::MAX,
        );
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(end, SimTime::from_nanos(2));
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn run_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), ());
        let (outcome, _) =
            run(&mut q, &mut |_: SimTime, _: (), _: &mut EventQueue<()>| true, SimTime::from_secs(1));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(q.len(), 1, "pending event stays queued");
    }

    #[test]
    fn run_stops_early() {
        let mut q = EventQueue::new();
        for i in 0..5u32 {
            q.schedule_at(SimTime::from_nanos(i as u64), i);
        }
        let mut count = 0;
        let (outcome, _) = run(
            &mut q,
            &mut |_: SimTime, _e: u32, _: &mut EventQueue<u32>| {
                count += 1;
                count < 3
            },
            SimTime::MAX,
        );
        assert_eq!(outcome, RunOutcome::Stopped);
        assert_eq!(count, 3);
    }

    #[test]
    fn cascading_events() {
        // A world that schedules a follow-up for each event, 3 deep.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, 0u32);
        let mut max_depth = 0;
        let (outcome, end) = run(
            &mut q,
            &mut |_: SimTime, depth: u32, q: &mut EventQueue<u32>| {
                max_depth = max_depth.max(depth);
                if depth < 3 {
                    q.schedule_in(Duration::from_nanos(7), depth + 1);
                }
                true
            },
            SimTime::MAX,
        );
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(max_depth, 3);
        assert_eq!(end, SimTime::from_nanos(21));
    }

    #[test]
    fn debug_impl_nonempty() {
        let q: EventQueue<()> = EventQueue::new();
        assert!(format!("{q:?}").contains("EventQueue"));
    }
}
