//! Property-based tests: governor envelopes and simulation determinism.

use haec_energy::machine::MachineSpec;
use haec_energy::pstate::{CState, PStateTable};
use haec_energy::units::Watts;
use haec_sched::elastic::{diurnal_trace, run_cluster_sim, Provisioning};
use haec_sched::governor::{decide, GovernorInput, GovernorPolicy};
use haec_sched::server::{run_server_sim, ServerSimConfig};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    /// The energy-cap governor never configures a core allocation whose
    /// all-busy power exceeds the cap (unless forced to the 1-core
    /// minimum), for arbitrary caps and queue states.
    #[test]
    fn energy_cap_always_within_budget(cap_w in 1.0f64..300.0, queued in 0usize..64, busy in 0usize..8) {
        let table = PStateTable::xeon_2013();
        let input = GovernorInput {
            queued,
            busy_cores: busy.min(8),
            total_cores: 8,
            head_work_cycles: 1_000_000,
            current: table.slowest(),
        };
        let d = decide(GovernorPolicy::EnergyCap(Watts::new(cap_w)), &table, input);
        let power = table.core_power(d.pstate, CState::Active).watts() * d.core_cap as f64;
        prop_assert!(power <= cap_w + 1e-9 || d.core_cap == 1, "{power} W over {cap_w} W cap");
        prop_assert!(d.core_cap >= 1 && d.core_cap <= 8);
    }

    /// A larger budget never yields a lower cycle-throughput
    /// configuration.
    #[test]
    fn energy_cap_monotone(cap_lo in 1.0f64..150.0, extra in 0.0f64..150.0) {
        let table = PStateTable::xeon_2013();
        let input = GovernorInput {
            queued: 16,
            busy_cores: 0,
            total_cores: 8,
            head_work_cycles: 1_000_000,
            current: table.slowest(),
        };
        let score = |cap: f64| {
            let d = decide(GovernorPolicy::EnergyCap(Watts::new(cap)), &table, input);
            d.core_cap as f64 * table.state(d.pstate).frequency().hertz()
        };
        prop_assert!(score(cap_lo + extra) >= score(cap_lo) - 1e-6);
    }

    /// The server simulation is a pure function of its config (same seed
    /// → identical results; different seeds → same completion ballpark).
    #[test]
    fn server_sim_deterministic(seed in any::<u64>(), rate in 5.0f64..80.0) {
        let mut cfg = ServerSimConfig::default_mix();
        cfg.seed = seed;
        cfg.arrival_rate = rate;
        cfg.horizon = Duration::from_secs(5);
        let a = run_server_sim(&cfg);
        let b = run_server_sim(&cfg);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.energy, b.energy);
        prop_assert!(a.utilization >= 0.0 && a.utilization <= 1.0);
    }

    /// Pace-to-deadline never beats race-to-idle on median latency.
    #[test]
    fn pace_never_faster_than_race(seed in any::<u64>()) {
        let mut cfg = ServerSimConfig::default_mix();
        cfg.seed = seed;
        cfg.arrival_rate = 20.0;
        cfg.horizon = Duration::from_secs(8);
        cfg.governor = GovernorPolicy::RaceToIdle;
        let race = run_server_sim(&cfg);
        cfg.governor = GovernorPolicy::PaceToDeadline(Duration::from_millis(300));
        let pace = run_server_sim(&cfg);
        let r50 = race.response.quantile(0.5).unwrap_or(0);
        let p50 = pace.response.quantile(0.5).unwrap_or(0);
        prop_assert!(p50 >= r50, "pace p50 {} < race p50 {}", p50, r50);
    }

    /// Elastic provisioning: a wider node ceiling never increases SLA
    /// violations; energy scales with the ceiling only as far as load
    /// demands.
    #[test]
    fn elasticity_sane(peak in 100.0f64..1200.0, max_nodes in 2usize..12) {
        let machine = MachineSpec::commodity_2013();
        let trace = diurnal_trace(48, peak);
        let step = Duration::from_secs(900);
        let small = run_cluster_sim(
            &machine,
            Provisioning::Elastic { target_utilization: 0.8, min_nodes: 1, max_nodes, boot_steps: 1 },
            &trace,
            100.0,
            step,
        );
        let large = run_cluster_sim(
            &machine,
            Provisioning::Elastic { target_utilization: 0.8, min_nodes: 1, max_nodes: max_nodes + 4, boot_steps: 1 },
            &trace,
            100.0,
            step,
        );
        prop_assert!(large.sla_violations <= small.sla_violations);
        prop_assert!(small.avg_nodes <= max_nodes as f64 + 1e-9);
    }
}
