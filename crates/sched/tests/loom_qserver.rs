//! Model-checked verification of the query server's admission path:
//! admit → cancel → permit-release interleavings over the real
//! [`AdmissionGate`] (the exact code `QueryServer` runs — its
//! primitives come from a cfg switch, not a port).
//!
//! Invariants checked in every schedule: no permit leak (the gate
//! quiesces to zero), no double release (a second release would leave
//! `active` ≠ 0), and a query cancelled while queued is never counted
//! in flight. Only built under `RUSTFLAGS="--cfg haec_loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg haec_loom" cargo test -p haec-sched --test loom_qserver --release
//! ```
#![cfg(haec_loom)]

use haec_exec::cancel::CancelToken;
use haec_sched::admission::{AdmissionGate, AdmitError};
use loom::sync::Arc;

/// A cancel racing a fast-path admission on a free gate: the query
/// either wins the slot before the cancel lands (and the engine would
/// then stop it at its first morsel) or exits `Cancelled` — and either
/// way the gate quiesces to zero and stays grantable.
#[test]
fn cancel_racing_fast_path_admission_never_leaks() {
    let report = loom::model(|| {
        let gate = Arc::new(AdmissionGate::new(1, 1));
        let token = CancelToken::new();

        let admitter = {
            let gate = Arc::clone(&gate);
            let token = token.clone();
            loom::thread::spawn(move || match gate.admit(0, None, Some(&token)) {
                Ok(permit) => {
                    drop(permit);
                    true
                }
                Err(e) => {
                    assert_eq!(e, AdmitError::Cancelled, "free gate + no deadline: only cancel refuses");
                    false
                }
            })
        };
        let canceller = {
            let gate = Arc::clone(&gate);
            let token = token.clone();
            loom::thread::spawn(move || {
                token.cancel();
                gate.poke();
            })
        };
        let _admitted = admitter.join().unwrap();
        canceller.join().unwrap();

        assert_eq!(gate.active(), 0, "permit leaked or double-released");
        assert_eq!(gate.queued(), 0, "waiter entry leaked");
        // The slot is genuinely free: a fresh admission takes it.
        drop(gate.admit(0, None, None).unwrap());
        assert_eq!(gate.active(), 0);
    });
    assert!(report.interleavings > 1, "expected >1 distinct interleaving, got {report:?}");
}

/// The hard window: a query *queued* behind a full gate is cancelled
/// while the slot-holder releases. Promotion may grant the slot to the
/// cancelled query before it notices — the bail path must hand the
/// grant straight back, so the cancelled query is never observably in
/// flight and the slot is immediately reusable.
#[test]
fn cancel_racing_release_hands_back_a_won_grant() {
    let report = loom::model(|| {
        let gate = Arc::new(AdmissionGate::new(1, 2));
        let token = CancelToken::new();
        let held = gate.admit(0, None, None).unwrap();

        // Pre-fire the cancel: the waiter below is cancelled from the
        // start, so every schedule exercises "cancelled query races a
        // promotion", including the one where promote() marks it
        // Admitted before its first poll.
        let waiter = {
            let gate = Arc::clone(&gate);
            let token = token.clone();
            loom::thread::spawn(move || {
                token.cancel();
                gate.admit(0, None, Some(&token)).map(drop)
            })
        };
        // The release interleaves with the waiter's enqueue and polls.
        drop(held);

        let outcome = waiter.join().unwrap();
        match outcome {
            // Fast path won before the flag was visible: permit was
            // held and dropped; nothing to undo.
            Ok(()) => {}
            Err(e) => assert_eq!(e, AdmitError::Cancelled),
        }

        assert_eq!(gate.active(), 0, "a cancelled query was counted in flight");
        assert_eq!(gate.queued(), 0, "cancelled waiter left its queue entry");
        drop(gate.admit(0, None, None).unwrap());
        assert_eq!(gate.active(), 0);
    });
    assert!(report.interleavings > 1, "expected >1 distinct interleaving, got {report:?}");
}

/// Shedding (the energy governor's budget-tighten path) racing a
/// release: the queued query is either shed or promoted, never both,
/// never lost — and the shed counter agrees with the outcome.
#[test]
fn shed_racing_release_resolves_each_waiter_exactly_once() {
    let report = loom::model(|| {
        let gate = Arc::new(AdmissionGate::new(1, 1));
        let held = gate.admit(0, None, None).unwrap();

        let waiter = {
            let gate = Arc::clone(&gate);
            loom::thread::spawn(move || gate.admit(0, None, None).map(drop))
        };
        let shedder = {
            let gate = Arc::clone(&gate);
            loom::thread::spawn(move || gate.shed_lowest(1))
        };
        // The release interleaves with the shed and the waiter's polls.
        drop(held);

        let outcome = waiter.join().unwrap();
        let shed = shedder.join().unwrap();

        match &outcome {
            Ok(()) => {}
            Err(e) => assert_eq!(*e, AdmitError::Shed, "no cancel/deadline in this model"),
        }
        assert_eq!(
            gate.shed_total(),
            if outcome.is_err() { 1 } else { shed as u64 },
            "shed accounting disagrees with the waiter's outcome"
        );
        assert_eq!(gate.active(), 0, "permit leaked or double-released");
        assert_eq!(gate.queued(), 0);
        drop(gate.admit(0, None, None).unwrap());
    });
    assert!(report.interleavings > 1, "expected >1 distinct interleaving, got {report:?}");
}
