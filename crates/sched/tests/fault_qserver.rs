//! Server-tier fault injection: the `qserver::admit` and
//! `qserver::snapshot` failpoints, fired as panics, fail only the one
//! submission — the admission slot releases through RAII and the
//! server keeps serving. Only built under `RUSTFLAGS="--cfg haec_fail"`:
//!
//! ```text
//! RUSTFLAGS="--cfg haec_fail" cargo test -p haec-sched --test fault_qserver
//! ```
#![cfg(haec_fail)]

use haec_sched::prelude::*;
use haecdb::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

struct FailGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

fn armed() -> FailGuard {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = M.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    fail::teardown();
    FailGuard(guard)
}

impl Drop for FailGuard {
    fn drop(&mut self) {
        fail::teardown();
    }
}

fn served_db(rows: i64) -> Arc<Database> {
    let db = Database::new();
    db.create_table("t", &[("id", DataType::Int64), ("v", DataType::Int64)]).unwrap();
    db.set_merge_threshold("t", usize::MAX).unwrap();
    for i in 0..rows {
        db.insert("t", &Record::new().with("id", i).with("v", i % 100)).unwrap();
    }
    db.merge("t").unwrap();
    Arc::new(db)
}

fn sum_query() -> Query {
    Query::scan("t").aggregate(AggKind::Sum, "v")
}

fn expected(rows: i64) -> f64 {
    (0..rows).map(|i| (i % 100) as f64).sum()
}

/// A panic at either server failpoint must not leak its admission slot
/// (RAII permit) or its cancel-token registration, even at
/// `max_concurrent: 1` where a single leaked slot would wedge the
/// server forever.
#[test]
fn server_failpoint_panics_release_slots_and_tokens() {
    let rows = 50_000;
    let db = served_db(rows);
    for fp in ["qserver::admit", "qserver::snapshot"] {
        let _g = armed();
        let srv =
            QueryServer::new(Arc::clone(&db), QueryServerConfig { max_concurrent: 1, ..Default::default() });
        fail::cfg(fp, "1*panic(injected)").unwrap();
        let r = catch_unwind(AssertUnwindSafe(|| srv.execute(&sum_query())));
        assert!(r.is_err(), "{fp}: armed submission must panic");
        assert_eq!(srv.active(), 0, "{fp}: panicked submission leaked its slot");
        assert_eq!(srv.queued(), 0, "{fp}: panicked submission left a waiter");
        // The single slot is free: the next query admits and answers.
        let out = srv.execute(&sum_query()).unwrap();
        assert_eq!(out.result.rows.row(0).unwrap()[0].as_float(), Some(expected(rows)));
        assert_eq!(srv.stats().completed, 1, "{fp}");
    }
}
