//! Concurrency primitives behind a cfg switch: `--cfg haec_loom`
//! (via `RUSTFLAGS`) swaps the admission path's locks, condvars and
//! atomics onto the model-checking shim so `loom_qserver.rs` can
//! explore admit → cancel → release interleavings exhaustively; normal
//! builds compile straight to `std::sync` with zero indirection.

#[cfg(haec_loom)]
pub(crate) use loom::sync::{atomic, Arc, Condvar, Mutex, MutexGuard};

#[cfg(not(haec_loom))]
pub(crate) use std::sync::{atomic, Arc, Condvar, Mutex, MutexGuard};
