//! The concurrent query server: hundreds of client queries over one
//! shared [`Database`], scheduled by a real [`GovernorPolicy`].
//!
//! This is the front door the paper's Fig. 2 asks for — "flexibly
//! balance query response time minimization and throughput maximization
//! under a given energy constraint" — driving the **real engine**, not
//! the [`crate::server`] simulation. Per admitted query the server:
//!
//! 1. applies **admission control** through an
//!    [`AdmissionGate`]: at most
//!    `max_concurrent` queries in flight, up to `max_queued` more
//!    waiting in priority order, everything beyond shed
//!    lowest-priority-first with [`ServerError::Overloaded`] carrying a
//!    `retry_after` hint (bounded queues and honest hints beat
//!    unbounded latency collapse);
//! 2. asks the governor for a decision over the machine's real P-state
//!    table, translated into a per-query **morsel-parallelism grant**
//!    (see `QueryServer::grant` for the mapping);
//! 3. pins an MVCC snapshot ([`Database::begin_snapshot`]) so the query
//!    reads one consistent cut while writers keep inserting/merging;
//! 4. executes on the shared worker pool via
//!    [`haecdb::DbSnapshot::execute_opts`] — no query ever creates a
//!    thread — carrying the query's [`CancelToken`] so an explicit
//!    [`QueryServer::cancel`] or an expired deadline stops it within
//!    one morsel, billed for the bytes it actually touched
//!    (`DbError::Cancelled { partial_energy }`).
//!
//! The engine has no DVFS to actuate, so the governor's `(pstate,
//! core_cap)` decision maps onto the two knobs the pool does have:
//! the **degree of parallelism** (units of the pool a query may occupy)
//! and, for [`GovernorPolicy::EnergyCap`], a fleet-wide in-flight
//! morsel budget enforced by a shared [`MorselGate`]. The budget is
//! derived from measured per-query `CostEstimate`s: an EWMA of each
//! completed query's modeled power (its own energy over its own modeled
//! time — never a shared-meter delta, which concurrent queries would
//! pollute) gives watts-per-morsel-stream, and the cap divided by that
//! is how many streams fit under the budget. When the budget
//! *tightens*, the server sheds that many of its lowest-priority queued
//! queries instead of letting the whole queue stall behind a smaller
//! pipe.

use haec_energy::pstate::PStateId;
use haec_energy::units::Joules;
use haec_exec::cancel::CancelToken;
use haecdb::db::QueryResult;
use haecdb::error::DbError;
use haecdb::prelude::{Database, ExecOpts, MorselGate, Query};
use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

use crate::admission::{AdmissionGate, AdmitError};
use crate::governor::{decide, GovernorInput, GovernorPolicy};
use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::sync::{Arc, Mutex};

/// Configuration of a [`QueryServer`].
#[derive(Clone, Debug)]
pub struct QueryServerConfig {
    /// The scheduling policy queries are granted parallelism under.
    pub governor: GovernorPolicy,
    /// Admission bound: queries in flight beyond this wait or are shed.
    pub max_concurrent: usize,
    /// Bounded admission queue beyond `max_concurrent`; `0` restores
    /// instant-reject admission control.
    pub max_queued: usize,
    /// Base morsel size granted when the server is uncontended; grants
    /// shrink it as concurrency rises so queries interleave fairly.
    pub morsel_rows: usize,
}

impl Default for QueryServerConfig {
    fn default() -> Self {
        QueryServerConfig {
            governor: GovernorPolicy::RaceToIdle,
            max_concurrent: 256,
            max_queued: 0,
            morsel_rows: haec_exec::morsel::DEFAULT_MORSEL_ROWS,
        }
    }
}

/// Per-submission options: deadline and shed priority.
#[derive(Clone, Debug, Default)]
pub struct QueryOpts {
    /// Give up (queued or mid-execution) this long after submission.
    pub deadline: Option<Duration>,
    /// Shed priority under overload: higher values are shed later.
    pub priority: u8,
}

impl QueryOpts {
    /// Options with a deadline relative to submission.
    pub fn with_deadline(deadline: Duration) -> QueryOpts {
        QueryOpts { deadline: Some(deadline), ..QueryOpts::default() }
    }
}

/// Handle to one prepared or in-flight query, for
/// [`QueryServer::cancel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QueryId(u64);

/// Why the server refused or failed a query.
#[derive(Debug)]
pub enum ServerError {
    /// Admission control refused the query: the in-flight set and the
    /// wait queue are full (or the query was shed from the queue to
    /// make room for higher-priority work).
    Overloaded {
        /// Queries in flight at rejection.
        active: usize,
        /// The configured admission bound.
        limit: usize,
        /// When a slot is expected to free — the server's latency EWMA
        /// spread over the in-flight set. A correct client sleeps at
        /// least this long before retrying (see [`crate::backoff`]).
        retry_after: Duration,
    },
    /// The engine failed the query. Cancellation and deadline expiry
    /// surface here as [`DbError::Cancelled`], carrying the energy the
    /// partial run was billed.
    Db(DbError),
}

impl ServerError {
    /// The `retry_after` hint, when this is an overload rejection.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            ServerError::Overloaded { retry_after, .. } => Some(*retry_after),
            ServerError::Db(_) => None,
        }
    }

    /// Whether this is a cancellation/deadline outcome.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, ServerError::Db(DbError::Cancelled { .. }))
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Overloaded { active, limit, retry_after } => write!(
                f,
                "server overloaded: {active} queries in flight (limit {limit}), retry in {retry_after:?}"
            ),
            ServerError::Db(e) => write!(f, "query failed: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// A completed query plus the grant it ran under.
#[derive(Debug)]
pub struct ServedQuery {
    /// The engine's result (rows, energy, modeled time, profile).
    pub result: QueryResult,
    /// Parallelism the governor granted this query.
    pub dop: usize,
    /// Morsel size the query ran with.
    pub morsel_rows: usize,
    /// End-to-end latency inside the server (admission to result).
    pub latency: Duration,
}

/// A point-in-time summary of the server's lifetime counters.
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// Queries completed successfully.
    pub completed: usize,
    /// Queries refused by admission control (instant rejections and
    /// queue sheds).
    pub rejected: usize,
    /// Queries that ended cancelled — explicit [`QueryServer::cancel`]
    /// or an expired deadline, queued or mid-execution.
    pub cancelled: usize,
    /// Waiters evicted from the admission queue by shedding.
    pub shed: u64,
    /// Total energy across completed queries (sum of their own
    /// `CostEstimate`s).
    pub energy: Joules,
    /// Median latency.
    pub p50: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Most morsels ever concurrently in flight through the gate.
    pub gate_high_water: usize,
    /// Largest in-flight budget the governor ever set on the gate (the
    /// structural bound `gate_high_water` must respect).
    pub budget_high: usize,
}

/// EWMA observations feeding governor inputs, the energy-cap budget and
/// the `retry_after` hint.
struct Ewma {
    /// Modeled watts of one running query (energy / modeled time).
    watts: f64,
    /// CPU cycles of one query (the `head_work_cycles` estimate).
    cycles: f64,
    /// Wall latency of one completed query, in seconds.
    latency_secs: f64,
}

const EWMA_ALPHA: f64 = 0.2;

impl Ewma {
    fn mix(old: f64, new: f64) -> f64 {
        if old == 0.0 {
            new
        } else {
            old * (1.0 - EWMA_ALPHA) + new * EWMA_ALPHA
        }
    }

    fn update(&mut self, watts: f64, cycles: f64, latency_secs: f64) {
        self.watts = Ewma::mix(self.watts, watts);
        self.cycles = Ewma::mix(self.cycles, cycles);
        self.latency_secs = Ewma::mix(self.latency_secs, latency_secs);
    }
}

/// The concurrent query server (see the module docs).
pub struct QueryServer {
    db: Arc<Database>,
    cfg: QueryServerConfig,
    /// Fleet-wide in-flight morsel gate, attached to every granted
    /// query under [`GovernorPolicy::EnergyCap`].
    gate: Arc<MorselGate>,
    /// Admission slots + bounded priority wait queue.
    admission: AdmissionGate,
    rejected: AtomicUsize,
    cancelled: AtomicUsize,
    /// Largest budget ever set on the gate.
    budget_high: AtomicUsize,
    /// P-state currently "in effect" (what `OnDemand` steps from).
    current_pstate: Mutex<PStateId>,
    ewma: Mutex<Ewma>,
    /// Latency and energy of every completed query.
    done: Mutex<Vec<(Duration, Joules)>>,
    /// Cancel token and priority of every prepared/in-flight query.
    tokens: Mutex<HashMap<u64, (CancelToken, u8)>>,
    next_query: AtomicU64,
}

impl QueryServer {
    /// Creates a server over a shared database. Queries execute on the
    /// database's own worker pool ([`Database::pool`]); the server adds
    /// scheduling, not threads.
    pub fn new(db: Arc<Database>, cfg: QueryServerConfig) -> QueryServer {
        let workers = db.pool().workers();
        let initial_budget = match cfg.governor {
            // Until a query completes there is no power observation;
            // start from the governor's own core cap under the budget.
            GovernorPolicy::EnergyCap(_) => {
                let d = decide(
                    cfg.governor,
                    db.machine().pstates(),
                    GovernorInput {
                        queued: 0,
                        busy_cores: 0,
                        total_cores: workers,
                        head_work_cycles: 0,
                        current: db.machine().pstates().fastest(),
                    },
                );
                d.core_cap.max(1)
            }
            _ => workers.max(1),
        };
        let current = db.machine().pstates().fastest();
        QueryServer {
            gate: MorselGate::new(initial_budget),
            admission: AdmissionGate::new(cfg.max_concurrent, cfg.max_queued),
            budget_high: AtomicUsize::new(initial_budget),
            db,
            cfg,
            rejected: AtomicUsize::new(0),
            cancelled: AtomicUsize::new(0),
            current_pstate: Mutex::new(current),
            ewma: Mutex::new(Ewma { watts: 0.0, cycles: 0.0, latency_secs: 0.0 }),
            done: Mutex::new(Vec::new()),
            tokens: Mutex::new(HashMap::new()),
            next_query: AtomicU64::new(0),
        }
    }

    /// The server's configuration.
    pub fn config(&self) -> &QueryServerConfig {
        &self.cfg
    }

    /// The fleet-wide morsel gate (for structural assertions: its
    /// high-water mark never exceeds [`ServerStats::budget_high`]).
    pub fn gate(&self) -> &Arc<MorselGate> {
        &self.gate
    }

    /// Queries in flight right now.
    pub fn active(&self) -> usize {
        self.admission.active()
    }

    /// Queries waiting for admission right now.
    pub fn queued(&self) -> usize {
        self.admission.queued()
    }

    fn lock<'a, T>(m: &'a Mutex<T>) -> crate::sync::MutexGuard<'a, T> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// When the next admission slot is expected to free: the completed-
    /// query latency EWMA spread over the in-flight set. Before any
    /// query completes there is no observation, so a small floor keeps
    /// naive retry loops from spinning.
    fn retry_after(&self) -> Duration {
        let lat = Self::lock(&self.ewma).latency_secs;
        if lat > 0.0 {
            Duration::from_secs_f64(lat / self.cfg.max_concurrent.max(1) as f64)
        } else {
            Duration::from_micros(100)
        }
    }

    /// Registers a query: allocates its id and cancel token (with the
    /// deadline clock starting now). Prepare before spawning the
    /// submitting thread to close the gap where a query is running but
    /// not yet cancellable.
    pub fn prepare(&self, opts: &QueryOpts) -> QueryId {
        let id = self.next_query.fetch_add(1, Ordering::Relaxed);
        let token = match opts.deadline {
            Some(d) => CancelToken::deadline_in(d),
            None => CancelToken::new(),
        };
        Self::lock(&self.tokens).insert(id, (token, opts.priority));
        QueryId(id)
    }

    /// Cancels a prepared or in-flight query: fires its token and wakes
    /// the admission queue so a waiting query leaves immediately; a
    /// running query stops within one morsel. Returns `false` when the
    /// id is unknown or already finished.
    pub fn cancel(&self, id: QueryId) -> bool {
        let found = match Self::lock(&self.tokens).get(&id.0) {
            Some((token, _)) => {
                token.cancel();
                true
            }
            None => false,
        };
        if found {
            self.admission.poke();
        }
        found
    }

    /// Maps the governor's decision onto the engine's knobs for one
    /// query, given `active` queries in flight (including this one).
    ///
    /// The real machine has no DVFS, so the `(pstate, core_cap)`
    /// decision becomes a *cycle-throughput budget*: `core_cap`
    /// full-speed-equivalent cores scaled by the chosen frequency,
    /// divided evenly among active queries — race-to-idle grants the
    /// whole pool, pace-to-deadline proportionally less the slower its
    /// chosen P-state, energy-cap whatever core count fit the budget.
    /// Morsels shrink as concurrency rises so grants interleave
    /// fairly, and under `EnergyCap` the shared gate re-targets to the
    /// measured-power budget and rides along in the options. A
    /// tightening budget additionally sheds that many queued queries,
    /// lowest priority first — less capacity should mean less queued
    /// work, not a longer stall.
    fn grant(&self, active: usize) -> ExecOpts {
        let table = self.db.machine().pstates();
        let workers = self.db.pool().workers();
        let ewma = {
            let e = Self::lock(&self.ewma);
            Ewma { watts: e.watts, cycles: e.cycles, latency_secs: e.latency_secs }
        };
        let input = GovernorInput {
            queued: self.db.pool().queued_tasks(),
            busy_cores: self.gate.inflight().min(workers),
            total_cores: workers,
            head_work_cycles: ewma.cycles as u64,
            current: *Self::lock(&self.current_pstate),
        };
        let d = decide(self.cfg.governor, table, input);
        *Self::lock(&self.current_pstate) = d.pstate;

        let freq_ratio =
            table.state(d.pstate).frequency().hertz() / table.state(table.fastest()).frequency().hertz();
        let throughput_cores = (d.core_cap as f64 * freq_ratio).max(1.0);
        let dop = ((throughput_cores / active.max(1) as f64).round() as usize).clamp(1, workers);
        // Shrink morsels as concurrency rises: finer units interleave
        // concurrent queries more fairly on the shared pool.
        let morsel_rows = (self.cfg.morsel_rows / active.max(1)).max(1);

        let gate = match self.cfg.governor {
            GovernorPolicy::EnergyCap(cap) => {
                if ewma.watts > 0.0 {
                    // Measured power per morsel stream → how many
                    // streams fit under the cap, fleet-wide.
                    let budget = ((cap.watts() / ewma.watts).floor() as usize).clamp(1, workers);
                    let prev = self.gate.budget();
                    if budget < prev {
                        self.admission.shed_lowest(prev - budget);
                    }
                    self.budget_high.fetch_max(budget, Ordering::Relaxed);
                    self.gate.set_budget(budget);
                }
                Some(Arc::clone(&self.gate))
            }
            _ => None,
        };
        ExecOpts { dop, morsel_rows, gate, cancel: None }
    }

    /// Admits, grants, pins and executes one query with default options
    /// (no deadline, priority 0).
    ///
    /// # Errors
    ///
    /// [`ServerError::Overloaded`] when admission control refuses it;
    /// [`ServerError::Db`] when the engine fails it.
    pub fn execute(&self, query: &Query) -> Result<ServedQuery, ServerError> {
        self.submit(query, &QueryOpts::default())
    }

    /// Admits, grants, pins and executes one query under `opts`
    /// (deadline + shed priority).
    ///
    /// # Errors
    ///
    /// As [`QueryServer::submit_prepared`].
    pub fn submit(&self, query: &Query, opts: &QueryOpts) -> Result<ServedQuery, ServerError> {
        let id = self.prepare(opts);
        self.submit_prepared(id, query)
    }

    /// Runs a query registered by [`QueryServer::prepare`]. The id's
    /// token is deregistered on every exit path, so a later
    /// [`QueryServer::cancel`] of a finished query returns `false`.
    ///
    /// # Errors
    ///
    /// [`ServerError::Overloaded`] (with `retry_after`) when rejected
    /// or shed; `ServerError::Db(DbError::Cancelled { .. })` when the
    /// query was cancelled or its deadline expired (queued: zero
    /// energy; mid-execution: the partial bill); any other engine
    /// failure as [`ServerError::Db`].
    pub fn submit_prepared(&self, id: QueryId, query: &Query) -> Result<ServedQuery, ServerError> {
        let (token, priority) = Self::lock(&self.tokens)
            .get(&id.0)
            .map(|(t, p)| (t.clone(), *p))
            .ok_or_else(|| ServerError::Db(DbError::BadQuery(format!("unknown query id {id:?}"))))?;
        // Deregister on every exit so cancel() of a done query is a
        // clean `false`, not a leak that grows with server lifetime.
        struct Dereg<'a>(&'a QueryServer, u64);
        impl Drop for Dereg<'_> {
            fn drop(&mut self) {
                QueryServer::lock(&self.0.tokens).remove(&self.1);
            }
        }
        let _dereg = Dereg(self, id.0);

        let started = Instant::now();
        fail::fail_point!("qserver::admit");
        let limit = self.cfg.max_concurrent;
        let permit = self.admission.admit(priority, token.deadline(), Some(&token)).map_err(|e| match e {
            AdmitError::Rejected { active, .. } => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                ServerError::Overloaded { active, limit, retry_after: self.retry_after() }
            }
            AdmitError::Shed => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                ServerError::Overloaded {
                    active: self.admission.active(),
                    limit,
                    retry_after: self.retry_after(),
                }
            }
            AdmitError::Cancelled | AdmitError::DeadlineExpired => {
                self.cancelled.fetch_add(1, Ordering::Relaxed);
                // Never admitted: no work ran, nothing to bill.
                ServerError::Db(DbError::Cancelled { partial_energy: Joules::new(0.0) })
            }
        })?;

        let active = self.admission.active();
        let mut opts = self.grant(active);
        opts.cancel = Some(token.clone());
        let snap = self.db.begin_snapshot();
        fail::fail_point!("qserver::snapshot");
        let outcome = snap.execute_opts(query, &opts);
        // The admission slot frees (and the next waiter promotes) here,
        // after the engine returned — cancelled queries release exactly
        // like completed ones, so gate permits and slots can never leak
        // on the cancel path.
        drop(permit);
        let result = outcome.map_err(|e| {
            if matches!(e, DbError::Cancelled { .. }) {
                self.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            ServerError::Db(e)
        })?;
        let latency = started.elapsed();

        let modeled_secs = result.modeled_time.as_secs_f64();
        if modeled_secs > 0.0 {
            Self::lock(&self.ewma).update(
                result.energy.joules() / modeled_secs,
                result.profile.cpu_cycles.count() as f64,
                latency.as_secs_f64(),
            );
        }
        Self::lock(&self.done).push((latency, result.energy));
        Ok(ServedQuery { result, dop: opts.dop, morsel_rows: opts.morsel_rows, latency })
    }

    /// A snapshot of the server's lifetime counters.
    pub fn stats(&self) -> ServerStats {
        let done = Self::lock(&self.done);
        let mut lat: Vec<Duration> = done.iter().map(|&(l, _)| l).collect();
        lat.sort_unstable();
        let pct = |p: f64| -> Duration {
            if lat.is_empty() {
                return Duration::ZERO;
            }
            let idx = ((lat.len() as f64 - 1.0) * p).round() as usize;
            lat[idx.min(lat.len() - 1)]
        };
        ServerStats {
            completed: done.len(),
            rejected: self.rejected.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            shed: self.admission.shed_total(),
            energy: done.iter().fold(Joules::new(0.0), |a, &(_, e)| a + e),
            p50: pct(0.50),
            p99: pct(0.99),
            gate_high_water: self.gate.high_water(),
            budget_high: self.budget_high.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for QueryServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryServer")
            .field("governor", &self.cfg.governor)
            .field("max_concurrent", &self.cfg.max_concurrent)
            .field("max_queued", &self.cfg.max_queued)
            .field("active", &self.active())
            .field("queued", &self.queued())
            .finish()
    }
}

#[cfg(all(test, not(haec_loom)))]
mod tests {
    use super::*;
    use haec_energy::units::Watts;
    use haecdb::prelude::*;

    fn db_with_rows(rows: i64) -> Arc<Database> {
        let db = Database::new();
        db.create_table("t", &[("id", DataType::Int64), ("v", DataType::Int64)]).unwrap();
        db.set_merge_threshold("t", usize::MAX).unwrap();
        for i in 0..rows {
            db.insert("t", &Record::new().with("id", i).with("v", i % 100)).unwrap();
        }
        db.merge("t").unwrap();
        Arc::new(db)
    }

    fn sum_query() -> Query {
        Query::scan("t").aggregate(AggKind::Sum, "v")
    }

    fn expected_sum(rows: i64) -> f64 {
        (0..rows).map(|i| (i % 100) as f64).sum()
    }

    #[test]
    fn serves_correct_answers_under_every_policy() {
        let rows = 150_000;
        let db = db_with_rows(rows);
        for governor in [
            GovernorPolicy::RaceToIdle,
            GovernorPolicy::PaceToDeadline(Duration::from_millis(100)),
            GovernorPolicy::OnDemand,
            GovernorPolicy::EnergyCap(Watts::new(40.0)),
        ] {
            let srv = QueryServer::new(Arc::clone(&db), QueryServerConfig { governor, ..Default::default() });
            for _ in 0..3 {
                let out = srv.execute(&sum_query()).unwrap();
                assert_eq!(out.result.rows.row(0).unwrap()[0].as_float(), Some(expected_sum(rows)));
                assert!(out.dop >= 1);
                assert!(out.result.energy.joules() > 0.0);
            }
            let stats = srv.stats();
            assert_eq!(stats.completed, 3, "{governor}");
            assert!(stats.energy.joules() > 0.0);
            assert!(stats.p99 >= stats.p50);
        }
    }

    #[test]
    fn admission_control_rejects_beyond_limit() {
        let db = db_with_rows(10_000);
        let srv = QueryServer::new(db, QueryServerConfig { max_concurrent: 0, ..Default::default() });
        let err = srv.execute(&sum_query()).unwrap_err();
        assert!(matches!(err, ServerError::Overloaded { limit: 0, .. }), "{err}");
        assert!(err.retry_after().is_some());
        assert_eq!(srv.stats().rejected, 1);
        assert_eq!(srv.stats().completed, 0);
    }

    #[test]
    fn queued_query_runs_when_a_slot_frees() {
        let db = db_with_rows(50_000);
        let srv = QueryServer::new(
            db,
            QueryServerConfig { max_concurrent: 1, max_queued: 4, ..Default::default() },
        );
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| srv.execute(&sum_query()).unwrap());
            }
        });
        let stats = srv.stats();
        assert_eq!(stats.completed, 4, "queueing must not drop work under capacity");
        assert_eq!(stats.rejected, 0);
        assert_eq!(srv.active(), 0);
        assert_eq!(srv.queued(), 0);
    }

    #[test]
    fn cancel_mid_execution_bills_partial_energy() {
        let rows = 400_000;
        let db = db_with_rows(rows);
        let srv = Arc::new(QueryServer::new(Arc::clone(&db), QueryServerConfig::default()));
        // A pre-fired cancel is the deterministic extreme of "cancel
        // lands mid-flight": the query admits, pins, then stops at its
        // first morsel boundary.
        let id = srv.prepare(&QueryOpts::default());
        assert!(srv.cancel(id));
        let err = srv.submit_prepared(id, &sum_query()).unwrap_err();
        assert!(err.is_cancelled(), "{err}");
        let stats = srv.stats();
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.cancelled, 1);
        assert_eq!(srv.active(), 0, "cancelled query released its slot");
        // The id is deregistered: cancelling again is a clean false.
        assert!(!srv.cancel(id));
        // The server still serves the next query correctly.
        let out = srv.execute(&sum_query()).unwrap();
        assert_eq!(out.result.rows.row(0).unwrap()[0].as_float(), Some(expected_sum(rows)));
    }

    #[test]
    fn expired_deadline_cancels_with_zero_or_partial_bill() {
        let db = db_with_rows(100_000);
        let srv = QueryServer::new(db, QueryServerConfig::default());
        let err = srv.submit(&sum_query(), &QueryOpts::with_deadline(Duration::ZERO)).unwrap_err();
        assert!(err.is_cancelled(), "{err}");
        match err {
            ServerError::Db(DbError::Cancelled { partial_energy }) => {
                assert!(partial_energy.joules() >= 0.0);
            }
            other => panic!("expected Cancelled, got {other}"),
        }
        assert_eq!(srv.stats().cancelled, 1);
        assert_eq!(srv.active(), 0);
    }

    #[test]
    fn energy_cap_gate_never_exceeds_budget_high() {
        let rows = 200_000;
        let db = db_with_rows(rows);
        let srv = QueryServer::new(
            db,
            QueryServerConfig { governor: GovernorPolicy::EnergyCap(Watts::new(30.0)), ..Default::default() },
        );
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..4 {
                        let out = srv.execute(&sum_query()).unwrap();
                        assert_eq!(out.result.rows.row(0).unwrap()[0].as_float(), Some(expected_sum(rows)));
                    }
                });
            }
        });
        let stats = srv.stats();
        assert_eq!(stats.completed, 16);
        assert!(stats.gate_high_water >= 1, "capped queries must flow through the gate");
        assert!(
            stats.gate_high_water <= stats.budget_high,
            "gate admitted {} concurrent morsels, budget never exceeded {}",
            stats.gate_high_water,
            stats.budget_high
        );
    }

    #[test]
    fn pace_grants_no_more_than_race() {
        let db = db_with_rows(150_000);
        let race = QueryServer::new(
            Arc::clone(&db),
            QueryServerConfig { governor: GovernorPolicy::RaceToIdle, ..Default::default() },
        );
        // A lenient deadline lets pace pick a slow P-state, which must
        // translate into a smaller (or equal) parallelism grant.
        let pace = QueryServer::new(
            db,
            QueryServerConfig {
                governor: GovernorPolicy::PaceToDeadline(Duration::from_secs(10)),
                ..Default::default()
            },
        );
        let rd = race.execute(&sum_query()).unwrap();
        // Seed pace's work EWMA so the deadline math sees real cycles.
        let pd0 = pace.execute(&sum_query()).unwrap();
        let pd = pace.execute(&sum_query()).unwrap();
        assert!(pd.dop <= rd.dop, "pace granted {} > race {}", pd.dop, rd.dop);
        let _ = pd0;
    }

    #[test]
    fn snapshot_isolation_under_concurrent_writes() {
        // A query admitted mid-insert still answers for a consistent
        // prefix: sum(v) of the first n rows for some n, never a torn
        // read.
        let db = db_with_rows(50_000);
        let srv = QueryServer::new(Arc::clone(&db), QueryServerConfig::default());
        std::thread::scope(|s| {
            let writer = s.spawn(|| {
                for i in 50_000..58_000i64 {
                    db.insert("t", &Record::new().with("id", i).with("v", i % 100)).unwrap();
                }
            });
            for _ in 0..8 {
                let out = srv.execute(&sum_query()).unwrap();
                let got = out.result.rows.row(0).unwrap()[0].as_float().unwrap();
                // sum over a prefix of length n has closed form; find n.
                let mut acc = 0.0;
                let mut matched = false;
                for i in 0..=58_000i64 {
                    if acc == got {
                        matched = true;
                        break;
                    }
                    acc += (i % 100) as f64;
                }
                assert!(matched, "sum {got} is not any insertion-order prefix");
            }
            writer.join().unwrap();
        });
    }
}
