//! The concurrent query server: hundreds of client queries over one
//! shared [`Database`], scheduled by a real [`GovernorPolicy`].
//!
//! This is the front door the paper's Fig. 2 asks for — "flexibly
//! balance query response time minimization and throughput maximization
//! under a given energy constraint" — driving the **real engine**, not
//! the [`crate::server`] simulation. Per admitted query the server:
//!
//! 1. applies **admission control**: at most `max_concurrent` queries
//!    in flight, the rest rejected with [`ServerError::Overloaded`]
//!    (bounded queues beat unbounded latency collapse);
//! 2. asks the governor for a decision over the machine's real P-state
//!    table, translated into a per-query **morsel-parallelism grant**
//!    (see `QueryServer::grant` for the mapping);
//! 3. pins an MVCC snapshot ([`Database::begin_snapshot`]) so the query
//!    reads one consistent cut while writers keep inserting/merging;
//! 4. executes on the shared worker pool via
//!    [`haecdb::DbSnapshot::execute_opts`] — no query ever creates a thread.
//!
//! The engine has no DVFS to actuate, so the governor's `(pstate,
//! core_cap)` decision maps onto the two knobs the pool does have:
//! the **degree of parallelism** (units of the pool a query may occupy)
//! and, for [`GovernorPolicy::EnergyCap`], a fleet-wide in-flight
//! morsel budget enforced by a shared [`MorselGate`]. The budget is
//! derived from measured per-query `CostEstimate`s: an EWMA of each
//! completed query's modeled power (its own energy over its own modeled
//! time — never a shared-meter delta, which concurrent queries would
//! pollute) gives watts-per-morsel-stream, and the cap divided by that
//! is how many streams fit under the budget.

use haec_energy::pstate::PStateId;
use haec_energy::units::Joules;
use haecdb::db::QueryResult;
use haecdb::error::DbError;
use haecdb::prelude::{Database, ExecOpts, MorselGate, Query};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::governor::{decide, GovernorInput, GovernorPolicy};

/// Configuration of a [`QueryServer`].
#[derive(Clone, Debug)]
pub struct QueryServerConfig {
    /// The scheduling policy queries are granted parallelism under.
    pub governor: GovernorPolicy,
    /// Admission bound: queries in flight beyond this are rejected.
    pub max_concurrent: usize,
    /// Base morsel size granted when the server is uncontended; grants
    /// shrink it as concurrency rises so queries interleave fairly.
    pub morsel_rows: usize,
}

impl Default for QueryServerConfig {
    fn default() -> Self {
        QueryServerConfig {
            governor: GovernorPolicy::RaceToIdle,
            max_concurrent: 256,
            morsel_rows: haec_exec::morsel::DEFAULT_MORSEL_ROWS,
        }
    }
}

/// Why the server refused or failed a query.
#[derive(Debug)]
pub enum ServerError {
    /// Admission control rejected the query: the server already has
    /// `limit` queries in flight.
    Overloaded {
        /// Queries in flight at rejection.
        active: usize,
        /// The configured admission bound.
        limit: usize,
    },
    /// The engine failed the query.
    Db(DbError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Overloaded { active, limit } => {
                write!(f, "server overloaded: {active} queries in flight (limit {limit})")
            }
            ServerError::Db(e) => write!(f, "query failed: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// A completed query plus the grant it ran under.
#[derive(Debug)]
pub struct ServedQuery {
    /// The engine's result (rows, energy, modeled time, profile).
    pub result: QueryResult,
    /// Parallelism the governor granted this query.
    pub dop: usize,
    /// Morsel size the query ran with.
    pub morsel_rows: usize,
    /// End-to-end latency inside the server (admission to result).
    pub latency: Duration,
}

/// A point-in-time summary of the server's lifetime counters.
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// Queries completed successfully.
    pub completed: usize,
    /// Queries refused by admission control.
    pub rejected: usize,
    /// Total energy across completed queries (sum of their own
    /// `CostEstimate`s).
    pub energy: Joules,
    /// Median latency.
    pub p50: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Most morsels ever concurrently in flight through the gate.
    pub gate_high_water: usize,
    /// Largest in-flight budget the governor ever set on the gate (the
    /// structural bound `gate_high_water` must respect).
    pub budget_high: usize,
}

/// EWMA observations feeding governor inputs and the energy-cap budget.
struct Ewma {
    /// Modeled watts of one running query (energy / modeled time).
    watts: f64,
    /// CPU cycles of one query (the `head_work_cycles` estimate).
    cycles: f64,
}

const EWMA_ALPHA: f64 = 0.2;

impl Ewma {
    fn update(&mut self, watts: f64, cycles: f64) {
        let mix =
            |old: f64, new: f64| if old == 0.0 { new } else { old * (1.0 - EWMA_ALPHA) + new * EWMA_ALPHA };
        self.watts = mix(self.watts, watts);
        self.cycles = mix(self.cycles, cycles);
    }
}

/// The concurrent query server (see the module docs).
pub struct QueryServer {
    db: Arc<Database>,
    cfg: QueryServerConfig,
    /// Fleet-wide in-flight morsel gate, attached to every granted
    /// query under [`GovernorPolicy::EnergyCap`].
    gate: Arc<MorselGate>,
    active: AtomicUsize,
    rejected: AtomicUsize,
    /// Largest budget ever set on the gate.
    budget_high: AtomicUsize,
    /// P-state currently "in effect" (what `OnDemand` steps from).
    current_pstate: Mutex<PStateId>,
    ewma: Mutex<Ewma>,
    /// Latency and energy of every completed query.
    done: Mutex<Vec<(Duration, Joules)>>,
}

impl QueryServer {
    /// Creates a server over a shared database. Queries execute on the
    /// database's own worker pool ([`Database::pool`]); the server adds
    /// scheduling, not threads.
    pub fn new(db: Arc<Database>, cfg: QueryServerConfig) -> QueryServer {
        let workers = db.pool().workers();
        let initial_budget = match cfg.governor {
            // Until a query completes there is no power observation;
            // start from the governor's own core cap under the budget.
            GovernorPolicy::EnergyCap(_) => {
                let d = decide(
                    cfg.governor,
                    db.machine().pstates(),
                    GovernorInput {
                        queued: 0,
                        busy_cores: 0,
                        total_cores: workers,
                        head_work_cycles: 0,
                        current: db.machine().pstates().fastest(),
                    },
                );
                d.core_cap.max(1)
            }
            _ => workers.max(1),
        };
        let current = db.machine().pstates().fastest();
        QueryServer {
            gate: MorselGate::new(initial_budget),
            budget_high: AtomicUsize::new(initial_budget),
            db,
            cfg,
            active: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
            current_pstate: Mutex::new(current),
            ewma: Mutex::new(Ewma { watts: 0.0, cycles: 0.0 }),
            done: Mutex::new(Vec::new()),
        }
    }

    /// The server's configuration.
    pub fn config(&self) -> &QueryServerConfig {
        &self.cfg
    }

    /// The fleet-wide morsel gate (for structural assertions: its
    /// high-water mark never exceeds [`ServerStats::budget_high`]).
    pub fn gate(&self) -> &Arc<MorselGate> {
        &self.gate
    }

    /// Queries in flight right now.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Maps the governor's decision onto the engine's knobs for one
    /// query, given `active` queries in flight (including this one).
    ///
    /// The real machine has no DVFS, so the `(pstate, core_cap)`
    /// decision becomes a *cycle-throughput budget*: `core_cap`
    /// full-speed-equivalent cores scaled by the chosen frequency,
    /// divided evenly among active queries — race-to-idle grants the
    /// whole pool, pace-to-deadline proportionally less the slower its
    /// chosen P-state, energy-cap whatever core count fit the budget.
    /// Morsels shrink as concurrency rises so grants interleave
    /// fairly, and under `EnergyCap` the shared gate re-targets to the
    /// measured-power budget and rides along in the options.
    fn grant(&self, active: usize) -> ExecOpts {
        let table = self.db.machine().pstates();
        let workers = self.db.pool().workers();
        let ewma = {
            let e = self.ewma.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            Ewma { watts: e.watts, cycles: e.cycles }
        };
        let input = GovernorInput {
            queued: self.db.pool().queued_tasks(),
            busy_cores: self.gate.inflight().min(workers),
            total_cores: workers,
            head_work_cycles: ewma.cycles as u64,
            current: *self.current_pstate.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
        };
        let d = decide(self.cfg.governor, table, input);
        *self.current_pstate.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = d.pstate;

        let freq_ratio =
            table.state(d.pstate).frequency().hertz() / table.state(table.fastest()).frequency().hertz();
        let throughput_cores = (d.core_cap as f64 * freq_ratio).max(1.0);
        let dop = ((throughput_cores / active.max(1) as f64).round() as usize).clamp(1, workers);
        // Shrink morsels as concurrency rises: finer units interleave
        // concurrent queries more fairly on the shared pool.
        let morsel_rows = (self.cfg.morsel_rows / active.max(1)).max(1);

        let gate = match self.cfg.governor {
            GovernorPolicy::EnergyCap(cap) => {
                if ewma.watts > 0.0 {
                    // Measured power per morsel stream → how many
                    // streams fit under the cap, fleet-wide.
                    let budget = ((cap.watts() / ewma.watts).floor() as usize).clamp(1, workers);
                    self.budget_high.fetch_max(budget, Ordering::Relaxed);
                    self.gate.set_budget(budget);
                }
                Some(Arc::clone(&self.gate))
            }
            _ => None,
        };
        ExecOpts { dop, morsel_rows, gate }
    }

    /// Admits, grants, pins and executes one query.
    ///
    /// # Errors
    ///
    /// [`ServerError::Overloaded`] when admission control rejects it;
    /// [`ServerError::Db`] when the engine fails it.
    pub fn execute(&self, query: &Query) -> Result<ServedQuery, ServerError> {
        let limit = self.cfg.max_concurrent;
        let admitted =
            self.active.fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| (n < limit).then_some(n + 1));
        let active = match admitted {
            Ok(prev) => prev + 1,
            Err(n) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServerError::Overloaded { active: n, limit });
            }
        };
        // Release the admission slot however the query exits.
        struct Slot<'a>(&'a AtomicUsize);
        impl Drop for Slot<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::AcqRel);
            }
        }
        let _slot = Slot(&self.active);

        let started = Instant::now();
        let opts = self.grant(active);
        let snap = self.db.begin_snapshot();
        let result = snap.execute_opts(query, &opts).map_err(ServerError::Db)?;
        let latency = started.elapsed();

        let modeled_secs = result.modeled_time.as_secs_f64();
        if modeled_secs > 0.0 {
            self.ewma
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .update(result.energy.joules() / modeled_secs, result.profile.cpu_cycles.count() as f64);
        }
        self.done.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push((latency, result.energy));
        Ok(ServedQuery { result, dop: opts.dop, morsel_rows: opts.morsel_rows, latency })
    }

    /// A snapshot of the server's lifetime counters.
    pub fn stats(&self) -> ServerStats {
        let done = self.done.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut lat: Vec<Duration> = done.iter().map(|&(l, _)| l).collect();
        lat.sort_unstable();
        let pct = |p: f64| -> Duration {
            if lat.is_empty() {
                return Duration::ZERO;
            }
            let idx = ((lat.len() as f64 - 1.0) * p).round() as usize;
            lat[idx.min(lat.len() - 1)]
        };
        ServerStats {
            completed: done.len(),
            rejected: self.rejected.load(Ordering::Relaxed),
            energy: done.iter().fold(Joules::new(0.0), |a, &(_, e)| a + e),
            p50: pct(0.50),
            p99: pct(0.99),
            gate_high_water: self.gate.high_water(),
            budget_high: self.budget_high.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for QueryServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryServer")
            .field("governor", &self.cfg.governor)
            .field("max_concurrent", &self.cfg.max_concurrent)
            .field("active", &self.active())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haec_energy::units::Watts;
    use haecdb::prelude::*;

    fn db_with_rows(rows: i64) -> Arc<Database> {
        let db = Database::new();
        db.create_table("t", &[("id", DataType::Int64), ("v", DataType::Int64)]).unwrap();
        db.set_merge_threshold("t", usize::MAX).unwrap();
        for i in 0..rows {
            db.insert("t", &Record::new().with("id", i).with("v", i % 100)).unwrap();
        }
        db.merge("t").unwrap();
        Arc::new(db)
    }

    fn sum_query() -> Query {
        Query::scan("t").aggregate(AggKind::Sum, "v")
    }

    fn expected_sum(rows: i64) -> f64 {
        (0..rows).map(|i| (i % 100) as f64).sum()
    }

    #[test]
    fn serves_correct_answers_under_every_policy() {
        let rows = 150_000;
        let db = db_with_rows(rows);
        for governor in [
            GovernorPolicy::RaceToIdle,
            GovernorPolicy::PaceToDeadline(Duration::from_millis(100)),
            GovernorPolicy::OnDemand,
            GovernorPolicy::EnergyCap(Watts::new(40.0)),
        ] {
            let srv = QueryServer::new(Arc::clone(&db), QueryServerConfig { governor, ..Default::default() });
            for _ in 0..3 {
                let out = srv.execute(&sum_query()).unwrap();
                assert_eq!(out.result.rows.row(0).unwrap()[0].as_float(), Some(expected_sum(rows)));
                assert!(out.dop >= 1);
                assert!(out.result.energy.joules() > 0.0);
            }
            let stats = srv.stats();
            assert_eq!(stats.completed, 3, "{governor}");
            assert!(stats.energy.joules() > 0.0);
            assert!(stats.p99 >= stats.p50);
        }
    }

    #[test]
    fn admission_control_rejects_beyond_limit() {
        let db = db_with_rows(10_000);
        let srv = QueryServer::new(db, QueryServerConfig { max_concurrent: 0, ..Default::default() });
        let err = srv.execute(&sum_query()).unwrap_err();
        assert!(matches!(err, ServerError::Overloaded { limit: 0, .. }), "{err}");
        assert_eq!(srv.stats().rejected, 1);
        assert_eq!(srv.stats().completed, 0);
    }

    #[test]
    fn energy_cap_gate_never_exceeds_budget_high() {
        let rows = 200_000;
        let db = db_with_rows(rows);
        let srv = QueryServer::new(
            db,
            QueryServerConfig { governor: GovernorPolicy::EnergyCap(Watts::new(30.0)), ..Default::default() },
        );
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..4 {
                        let out = srv.execute(&sum_query()).unwrap();
                        assert_eq!(out.result.rows.row(0).unwrap()[0].as_float(), Some(expected_sum(rows)));
                    }
                });
            }
        });
        let stats = srv.stats();
        assert_eq!(stats.completed, 16);
        assert!(stats.gate_high_water >= 1, "capped queries must flow through the gate");
        assert!(
            stats.gate_high_water <= stats.budget_high,
            "gate admitted {} concurrent morsels, budget never exceeded {}",
            stats.gate_high_water,
            stats.budget_high
        );
    }

    #[test]
    fn pace_grants_no_more_than_race() {
        let db = db_with_rows(150_000);
        let race = QueryServer::new(
            Arc::clone(&db),
            QueryServerConfig { governor: GovernorPolicy::RaceToIdle, ..Default::default() },
        );
        // A lenient deadline lets pace pick a slow P-state, which must
        // translate into a smaller (or equal) parallelism grant.
        let pace = QueryServer::new(
            db,
            QueryServerConfig {
                governor: GovernorPolicy::PaceToDeadline(Duration::from_secs(10)),
                ..Default::default()
            },
        );
        let rd = race.execute(&sum_query()).unwrap();
        // Seed pace's work EWMA so the deadline math sees real cycles.
        let pd0 = pace.execute(&sum_query()).unwrap();
        let pd = pace.execute(&sum_query()).unwrap();
        assert!(pd.dop <= rd.dop, "pace granted {} > race {}", pd.dop, rd.dop);
        let _ = pd0;
    }

    #[test]
    fn snapshot_isolation_under_concurrent_writes() {
        // A query admitted mid-insert still answers for a consistent
        // prefix: sum(v) of the first n rows for some n, never a torn
        // read.
        let db = db_with_rows(50_000);
        let srv = QueryServer::new(Arc::clone(&db), QueryServerConfig::default());
        std::thread::scope(|s| {
            let writer = s.spawn(|| {
                for i in 50_000..58_000i64 {
                    db.insert("t", &Record::new().with("id", i).with("v", i % 100)).unwrap();
                }
            });
            for _ in 0..8 {
                let out = srv.execute(&sum_query()).unwrap();
                let got = out.result.rows.row(0).unwrap()[0].as_float().unwrap();
                // sum over a prefix of length n has closed form; find n.
                let mut acc = 0.0;
                let mut matched = false;
                for i in 0..=58_000i64 {
                    if acc == got {
                        matched = true;
                        break;
                    }
                    acc += (i % 100) as f64;
                }
                assert!(matched, "sum {got} is not any insertion-order prefix");
            }
            writer.join().unwrap();
        });
    }
}
