//! Bounded exponential backoff for clients retrying an overloaded
//! server.
//!
//! [`crate::qserver::ServerError::Overloaded`] now carries a
//! `retry_after` hint derived from the server's latency EWMA; this
//! helper turns that hint into a correct client retry loop — exponential
//! growth so synchronized clients spread out, a hard cap so nobody
//! sleeps forever, and the server hint as a floor so clients never
//! hammer faster than the server said a slot will free. Deterministic
//! on purpose (no jitter entropy): experiment e24 replays byte-for-byte.
//!
//! ```
//! use haec_sched::backoff::Backoff;
//! use std::time::Duration;
//!
//! let mut b = Backoff::new(Duration::from_millis(1), Duration::from_millis(64));
//! assert_eq!(b.next_delay(None), Duration::from_millis(1));
//! assert_eq!(b.next_delay(None), Duration::from_millis(2));
//! // A server hint floors the delay.
//! assert_eq!(b.next_delay(Some(Duration::from_millis(50))), Duration::from_millis(50));
//! // Growth is capped.
//! for _ in 0..20 { b.next_delay(None); }
//! assert_eq!(b.next_delay(None), Duration::from_millis(64));
//! ```

use std::time::Duration;

/// Bounded exponential backoff state for one client's retry loop.
#[derive(Clone, Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
}

impl Backoff {
    /// Backoff starting at `base` and never exceeding `cap`.
    pub fn new(base: Duration, cap: Duration) -> Backoff {
        Backoff { base, cap, attempt: 0 }
    }

    /// The delay to sleep before the next retry: `base · 2^attempt`,
    /// floored by the server's `retry_after` hint (when given) and
    /// capped at `cap`. Each call counts one attempt.
    pub fn next_delay(&mut self, retry_after: Option<Duration>) -> Duration {
        let exp = self.base.saturating_mul(1u32.checked_shl(self.attempt).unwrap_or(u32::MAX)).min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        // The hint is a floor even past the cap: the cap bounds *our*
        // schedule, but the server knows when a slot will actually free.
        exp.max(retry_after.unwrap_or(Duration::ZERO))
    }

    /// Retries attempted so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Resets after a success, so the next burst starts from `base`.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_until_cap() {
        let mut b = Backoff::new(Duration::from_millis(2), Duration::from_millis(16));
        let delays: Vec<u128> = (0..6).map(|_| b.next_delay(None).as_millis()).collect();
        assert_eq!(delays, vec![2, 4, 8, 16, 16, 16]);
        assert_eq!(b.attempts(), 6);
        b.reset();
        assert_eq!(b.next_delay(None).as_millis(), 2);
    }

    #[test]
    fn hint_floors_the_delay_even_past_cap() {
        let mut b = Backoff::new(Duration::from_millis(1), Duration::from_millis(8));
        // The server's hint wins when it is larger than the schedule…
        assert_eq!(b.next_delay(Some(Duration::from_millis(30))).as_millis(), 30);
        // …and the schedule wins when it is larger than the hint.
        b.reset();
        for _ in 0..5 {
            b.next_delay(None);
        }
        assert_eq!(b.next_delay(Some(Duration::from_millis(1))).as_millis(), 8);
    }

    #[test]
    fn huge_attempt_counts_saturate() {
        let mut b = Backoff::new(Duration::from_secs(1), Duration::from_secs(4));
        for _ in 0..100 {
            let d = b.next_delay(None);
            assert!(d <= Duration::from_secs(4));
        }
    }
}
