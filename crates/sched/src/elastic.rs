//! Elasticity in the large: cluster-level scale-out/in under a varying
//! load trace (experiment E12).
//!
//! The paper calls "data-as-a-service … elasticity in the large" a core
//! requirement (§II). This module simulates a cluster of identical
//! nodes under a diurnal load curve and compares static provisioning
//! against an elastic controller, reporting energy, SLA violations and
//! the energy-proportionality of each policy.

use haec_energy::machine::MachineSpec;
use haec_energy::units::Joules;
use std::fmt;
use std::time::Duration;

/// Provisioning policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Provisioning {
    /// A fixed node count, sized for peak.
    Static(
        /// Number of nodes, always on.
        usize,
    ),
    /// Scale to keep utilization near `target`, within `[min, max]`
    /// nodes; booting a node takes `boot_steps` trace steps.
    Elastic {
        /// Desired per-node utilization (0–1).
        target_utilization: f64,
        /// Lower node bound.
        min_nodes: usize,
        /// Upper node bound.
        max_nodes: usize,
        /// Steps a booting node needs before serving load.
        boot_steps: usize,
    },
}

impl fmt::Display for Provisioning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Provisioning::Static(n) => write!(f, "static({n})"),
            Provisioning::Elastic { target_utilization, .. } => {
                write!(f, "elastic(u*={target_utilization:.2})")
            }
        }
    }
}

/// A synthetic diurnal load trace in queries/second, one value per step.
pub fn diurnal_trace(steps: usize, peak_qps: f64) -> Vec<f64> {
    (0..steps)
        .map(|i| {
            let phase = i as f64 / steps as f64 * 2.0 * std::f64::consts::PI;
            // Trough at ~20% of peak, mid-day peak, slight evening bump;
            // clamped so `peak_qps` really is the maximum.
            let base = (0.6 - 0.4 * phase.cos() + 0.08 * (2.0 * phase).sin()).clamp(0.0, 1.0);
            base * peak_qps
        })
        .collect()
}

/// Result of one cluster simulation.
#[derive(Clone, Debug)]
pub struct ClusterSimResult {
    /// Total cluster energy over the trace.
    pub energy: Joules,
    /// Trace steps in which offered load exceeded capacity.
    pub sla_violations: usize,
    /// Mean number of powered nodes.
    pub avg_nodes: f64,
    /// Energy proportionality: ratio of energy at the trough step to
    /// energy at the peak step (1.0 = no proportionality, →0 = ideal).
    pub trough_peak_energy_ratio: f64,
    /// Per-step powered node counts (for plotting).
    pub nodes_per_step: Vec<usize>,
}

/// Simulates `trace` (one step = `step` of wall time) over nodes of
/// `machine`'s power profile, each able to serve `node_capacity_qps`.
pub fn run_cluster_sim(
    machine: &MachineSpec,
    policy: Provisioning,
    trace: &[f64],
    node_capacity_qps: f64,
    step: Duration,
) -> ClusterSimResult {
    assert!(node_capacity_qps > 0.0, "node capacity must be positive");
    let idle_w = machine.idle_floor().watts();
    let peak_w = machine.peak_power().watts();
    let step_s = step.as_secs_f64();

    let mut energy = 0.0;
    let mut violations = 0usize;
    let mut node_steps = 0.0;
    let mut nodes_per_step = Vec::with_capacity(trace.len());
    let mut step_energy = Vec::with_capacity(trace.len());

    let mut active = match policy {
        Provisioning::Static(n) => n,
        Provisioning::Elastic { min_nodes, .. } => min_nodes,
    };
    // Nodes booting: vector of remaining boot steps.
    let mut booting: Vec<usize> = Vec::new();

    for &qps in trace {
        // Elastic controller: decide before serving this step (it sees
        // the current load, reacting with boot delay).
        if let Provisioning::Elastic { target_utilization, min_nodes, max_nodes, boot_steps } = policy {
            let desired = ((qps / (node_capacity_qps * target_utilization)).ceil() as usize)
                .clamp(min_nodes, max_nodes);
            let committed = active + booting.len();
            if desired > committed {
                for _ in committed..desired {
                    booting.push(boot_steps);
                }
            } else if desired < active {
                // Shut down instantly (drain ignored at this granularity).
                active = desired;
            }
            // Progress boots.
            for b in &mut booting {
                *b = b.saturating_sub(1);
            }
            let ready = booting.iter().filter(|&&b| b == 0).count();
            active += ready;
            booting.retain(|&b| b > 0);
        }

        let capacity = active as f64 * node_capacity_qps;
        if qps > capacity {
            violations += 1;
        }
        let utilization = if capacity > 0.0 { (qps / capacity).min(1.0) } else { 1.0 };
        // Linear power model per node between idle floor and peak; a
        // booting node burns idle power.
        let node_w = idle_w + (peak_w - idle_w) * utilization;
        let e = (active as f64 * node_w + booting.len() as f64 * idle_w) * step_s;
        energy += e;
        step_energy.push(e);
        node_steps += active as f64;
        nodes_per_step.push(active);
    }

    // Proportionality: trough vs peak step energy.
    let trough = step_energy.iter().copied().fold(f64::INFINITY, f64::min);
    let peak = step_energy.iter().copied().fold(0.0, f64::max);
    ClusterSimResult {
        energy: Joules::new(energy),
        sla_violations: violations,
        avg_nodes: node_steps / trace.len().max(1) as f64,
        trough_peak_energy_ratio: if peak > 0.0 { trough / peak } else { 1.0 },
        nodes_per_step,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineSpec {
        MachineSpec::commodity_2013()
    }

    #[test]
    fn diurnal_trace_shape() {
        let t = diurnal_trace(96, 1000.0);
        assert_eq!(t.len(), 96);
        let min = t.iter().copied().fold(f64::INFINITY, f64::min);
        let max = t.iter().copied().fold(0.0, f64::max);
        assert!(min >= 0.0);
        assert!(max <= 1100.0);
        assert!(max / min.max(1.0) > 3.0, "diurnal swing too small: {min}..{max}");
        // Peak is mid-trace (afternoon), not at the edges.
        let peak_idx = t.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert!(peak_idx > 20 && peak_idx < 80, "peak at {peak_idx}");
    }

    #[test]
    fn elastic_saves_energy_vs_static_peak() {
        let m = machine();
        let trace = diurnal_trace(96, 800.0);
        let static_peak =
            run_cluster_sim(&m, Provisioning::Static(8), &trace, 100.0, Duration::from_secs(900));
        let elastic = run_cluster_sim(
            &m,
            Provisioning::Elastic { target_utilization: 0.85, min_nodes: 1, max_nodes: 8, boot_steps: 1 },
            &trace,
            100.0,
            Duration::from_secs(900),
        );
        assert!(
            elastic.energy.joules() < static_peak.energy.joules() * 0.85,
            "elastic {} J vs static {} J",
            elastic.energy.joules(),
            static_peak.energy.joules()
        );
        assert!(elastic.avg_nodes < static_peak.avg_nodes);
    }

    #[test]
    fn static_peak_has_no_violations() {
        let m = machine();
        let trace = diurnal_trace(96, 800.0);
        let r = run_cluster_sim(&m, Provisioning::Static(8), &trace, 100.0, Duration::from_secs(900));
        assert_eq!(r.sla_violations, 0);
    }

    #[test]
    fn static_underprovisioned_violates() {
        let m = machine();
        let trace = diurnal_trace(96, 800.0);
        let r = run_cluster_sim(&m, Provisioning::Static(2), &trace, 100.0, Duration::from_secs(900));
        assert!(r.sla_violations > 10, "violations {}", r.sla_violations);
    }

    #[test]
    fn boot_delay_costs_violations() {
        let m = machine();
        // A sharper trace with fast ramp.
        let trace = diurnal_trace(48, 1000.0);
        let fast = run_cluster_sim(
            &m,
            Provisioning::Elastic { target_utilization: 0.8, min_nodes: 1, max_nodes: 10, boot_steps: 1 },
            &trace,
            100.0,
            Duration::from_secs(900),
        );
        let slow = run_cluster_sim(
            &m,
            Provisioning::Elastic { target_utilization: 0.8, min_nodes: 1, max_nodes: 10, boot_steps: 6 },
            &trace,
            100.0,
            Duration::from_secs(900),
        );
        assert!(
            slow.sla_violations >= fast.sla_violations,
            "{} vs {}",
            slow.sla_violations,
            fast.sla_violations
        );
    }

    #[test]
    fn elastic_improves_energy_proportionality() {
        let m = machine();
        let trace = diurnal_trace(96, 800.0);
        let stat = run_cluster_sim(&m, Provisioning::Static(8), &trace, 100.0, Duration::from_secs(900));
        let elas = run_cluster_sim(
            &m,
            Provisioning::Elastic { target_utilization: 0.7, min_nodes: 1, max_nodes: 8, boot_steps: 1 },
            &trace,
            100.0,
            Duration::from_secs(900),
        );
        assert!(
            elas.trough_peak_energy_ratio < stat.trough_peak_energy_ratio,
            "elastic {} vs static {}",
            elas.trough_peak_energy_ratio,
            stat.trough_peak_energy_ratio
        );
    }

    #[test]
    fn nodes_track_load() {
        let m = machine();
        let trace = diurnal_trace(96, 800.0);
        let r = run_cluster_sim(
            &m,
            Provisioning::Elastic { target_utilization: 0.7, min_nodes: 1, max_nodes: 8, boot_steps: 1 },
            &trace,
            100.0,
            Duration::from_secs(900),
        );
        let peak_load_idx = trace.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        let trough_load_idx =
            trace.iter().enumerate().min_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert!(r.nodes_per_step[peak_load_idx] > r.nodes_per_step[trough_load_idx]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        run_cluster_sim(&machine(), Provisioning::Static(1), &[1.0], 0.0, Duration::from_secs(1));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Provisioning::Static(4)), "static(4)");
        let e = Provisioning::Elastic { target_utilization: 0.7, min_nodes: 1, max_nodes: 8, boot_steps: 2 };
        assert!(format!("{e}").contains("0.70"));
    }
}
