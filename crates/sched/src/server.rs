//! The single-node query server simulation: Poisson arrivals, a core
//! pool under a DVFS governor, and full energy integration over virtual
//! time.
//!
//! This is the machine that regenerates the paper's Fig. 2: sweep the
//! energy (power) budget, watch response time and throughput react.

use crate::governor::{decide, GovernorDecision, GovernorInput, GovernorPolicy};
use haec_energy::machine::MachineSpec;
use haec_energy::meter::{Domain, EnergyMeter};
use haec_energy::pstate::{CState, PStateId};
use haec_energy::units::{Joules, Watts};
use haec_sim::engine::EventQueue;
use haec_sim::rng::SimRng;
use haec_sim::stats::Histogram;
use haec_sim::time::SimTime;
use std::collections::VecDeque;
use std::time::Duration;

/// Configuration of one server-simulation run.
#[derive(Clone, Debug)]
pub struct ServerSimConfig {
    /// The machine model.
    pub machine: MachineSpec,
    /// The DVFS/parking policy.
    pub governor: GovernorPolicy,
    /// Mean query arrival rate (queries/second, Poisson).
    pub arrival_rate: f64,
    /// Mean per-query work in cycles (exponentially distributed).
    pub mean_work_cycles: f64,
    /// Simulated horizon.
    pub horizon: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl ServerSimConfig {
    /// A light OLAP mix: 50 q/s averaging 100M cycles on the default
    /// 8-core machine, 60 simulated seconds.
    pub fn default_mix() -> Self {
        ServerSimConfig {
            machine: MachineSpec::commodity_2013(),
            governor: GovernorPolicy::RaceToIdle,
            arrival_rate: 50.0,
            mean_work_cycles: 1.0e8,
            horizon: Duration::from_secs(60),
            seed: 42,
        }
    }
}

/// Results of one run.
#[derive(Clone, Debug)]
pub struct ServerSimResult {
    /// Queries completed within the horizon.
    pub completed: u64,
    /// Queries still queued/running at the horizon.
    pub unfinished: u64,
    /// Response-time histogram (nanoseconds).
    pub response: Histogram,
    /// Total energy over the horizon.
    pub energy: Joules,
    /// Average power over the horizon.
    pub avg_power: Watts,
    /// Completed queries per second.
    pub throughput: f64,
    /// Energy per completed query.
    pub energy_per_query: Joules,
    /// Mean core-busy fraction.
    pub utilization: f64,
}

#[derive(Clone, Copy, Debug)]
enum Event {
    Arrival,
    Done { core: usize },
}

#[derive(Clone, Copy, Debug)]
struct Query {
    arrived: SimTime,
    cycles: u64,
}

#[derive(Clone, Copy, Debug)]
struct Running {
    pstate: PStateId,
}

/// Runs the simulation.
pub fn run_server_sim(cfg: &ServerSimConfig) -> ServerSimResult {
    let table = cfg.machine.pstates().clone();
    let cores = cfg.machine.cores();
    let mut rng = SimRng::seed(cfg.seed);
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut waiting: VecDeque<Query> = VecDeque::new();
    let mut running: Vec<Option<Running>> = vec![None; cores];
    let mut meter = EnergyMeter::new();
    let mut response = Histogram::new();
    let mut completed = 0u64;
    let mut busy_core_seconds = 0.0;
    let mut current_decision = decide(
        cfg.governor,
        &table,
        GovernorInput {
            queued: 0,
            busy_cores: 0,
            total_cores: cores,
            head_work_cycles: 0,
            current: table.slowest(),
        },
    );
    let horizon = SimTime::ZERO + cfg.horizon;
    let mut last = SimTime::ZERO;

    // Pre-schedule the arrival process.
    let mut t = SimTime::ZERO;
    loop {
        let gap = Duration::from_secs_f64(rng.exponential(1.0 / cfg.arrival_rate));
        t += gap;
        if t > horizon {
            break;
        }
        queue.schedule_at(t, Event::Arrival);
    }

    // Power integration between events.
    let integrate = |meter: &mut EnergyMeter,
                     running: &[Option<Running>],
                     decision: &GovernorDecision,
                     machine: &MachineSpec,
                     table: &haec_energy::pstate::PStateTable,
                     from: SimTime,
                     to: SimTime,
                     busy_core_seconds: &mut f64| {
        if to <= from {
            return;
        }
        let dt = to - from;
        let mut core_w = 0.0;
        let mut busy = 0usize;
        for r in running.iter() {
            match r {
                Some(run) => {
                    core_w += table.core_power(run.pstate, CState::Active).watts();
                    busy += 1;
                }
                None => {
                    core_w += table.core_power(decision.pstate, decision.idle_cstate).watts();
                }
            }
        }
        *busy_core_seconds += busy as f64 * dt.as_secs_f64();
        meter.integrate(Domain::Cores, Watts::new(core_w), dt);
        meter.integrate(Domain::Dram, machine.dram().static_power(), dt);
        let platform_w = machine.platform_power().watts() + machine.nic().idle_power().watts();
        meter.integrate(Domain::Nic, Watts::new(platform_w), dt);
        meter.advance(dt);
    };

    while let Some(next_time) = queue.peek_time() {
        if next_time > horizon {
            break;
        }
        let (now, event) = queue.pop().expect("peeked");
        integrate(
            &mut meter,
            &running,
            &current_decision,
            &cfg.machine,
            &table,
            last,
            now,
            &mut busy_core_seconds,
        );
        last = now;

        match event {
            Event::Arrival => {
                let cycles = rng.exponential(cfg.mean_work_cycles).max(1.0) as u64;
                waiting.push_back(Query { arrived: now, cycles });
            }
            Event::Done { core } => {
                running[core] = None;
            }
        }

        // Re-decide and dispatch as many queued queries as the core cap
        // allows.
        loop {
            let busy = running.iter().filter(|r| r.is_some()).count();
            let head = waiting.front().map_or(0, |q| q.cycles);
            current_decision = decide(
                cfg.governor,
                &table,
                GovernorInput {
                    queued: waiting.len(),
                    busy_cores: busy,
                    total_cores: cores,
                    head_work_cycles: head,
                    current: current_decision.pstate,
                },
            );
            if waiting.is_empty() || busy >= current_decision.core_cap {
                break;
            }
            let Some(core) = running.iter().position(Option::is_none) else {
                break;
            };
            let q = waiting.pop_front().expect("non-empty");
            let freq = table.state(current_decision.pstate).frequency();
            let service = Duration::from_secs_f64(q.cycles as f64 / freq.hertz());
            running[core] = Some(Running { pstate: current_decision.pstate });
            queue.schedule_at(now + service, Event::Done { core });
            // Response time = completion - arrival; queries whose
            // completion falls past the horizon count as unfinished.
            if now + service <= horizon {
                response.record_duration((now + service) - q.arrived);
                completed += 1;
            }
        }
    }
    // Integrate the tail to the horizon.
    integrate(
        &mut meter,
        &running,
        &current_decision,
        &cfg.machine,
        &table,
        last,
        horizon,
        &mut busy_core_seconds,
    );

    let horizon_s = cfg.horizon.as_secs_f64();
    let energy = meter.grand_total();
    let unfinished = waiting.len() as u64 + running.iter().filter(|r| r.is_some()).count() as u64;
    ServerSimResult {
        completed,
        unfinished,
        response,
        energy,
        avg_power: Watts::new(energy.joules() / horizon_s),
        throughput: completed as f64 / horizon_s,
        energy_per_query: if completed == 0 { Joules::ZERO } else { energy / completed as f64 },
        utilization: busy_core_seconds / (cores as f64 * horizon_s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ServerSimConfig {
        ServerSimConfig { horizon: Duration::from_secs(20), ..ServerSimConfig::default_mix() }
    }

    #[test]
    fn completes_offered_load_when_unconstrained() {
        let cfg = base();
        let r = run_server_sim(&cfg);
        // Offered: 50 q/s for 20 s = ~1000; essentially all complete.
        assert!(r.completed > 900, "completed {}", r.completed);
        assert!(r.throughput > 45.0, "throughput {}", r.throughput);
        assert!(r.utilization > 0.05 && r.utilization < 0.9, "util {}", r.utilization);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = base();
        let a = run_server_sim(&cfg);
        let b = run_server_sim(&cfg);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.energy, b.energy);
    }

    #[test]
    fn race_to_idle_faster_than_pace() {
        let mut race = base();
        race.governor = GovernorPolicy::RaceToIdle;
        let mut pace = base();
        pace.governor = GovernorPolicy::PaceToDeadline(Duration::from_millis(200));
        let rr = run_server_sim(&race);
        let rp = run_server_sim(&pace);
        let p50_race = rr.response.quantile(0.5).unwrap();
        let p50_pace = rp.response.quantile(0.5).unwrap();
        assert!(p50_race < p50_pace, "race p50 {p50_race} vs pace p50 {p50_pace}");
    }

    #[test]
    fn pace_saves_core_energy_at_low_load() {
        let mut race = base();
        race.arrival_rate = 10.0;
        race.governor = GovernorPolicy::RaceToIdle;
        let mut pace = race.clone();
        pace.governor = GovernorPolicy::PaceToDeadline(Duration::from_millis(500));
        let rr = run_server_sim(&race);
        let rp = run_server_sim(&pace);
        // Pacing runs slower but at a more efficient voltage point; with
        // parked idle cores both are close, but pace must not burn MORE
        // core energy.
        assert!(
            rp.energy.joules() <= rr.energy.joules() * 1.05,
            "pace {} J vs race {} J",
            rp.energy.joules(),
            rr.energy.joules()
        );
    }

    #[test]
    fn energy_cap_enforces_average_power() {
        let mut cfg = base();
        cfg.arrival_rate = 200.0; // saturating load
        let unconstrained = run_server_sim(&cfg);
        let cap = Watts::new(unconstrained.avg_power.watts() * 0.6);
        cfg.governor = GovernorPolicy::EnergyCap(cap);
        let capped = run_server_sim(&cfg);
        assert!(
            capped.avg_power.watts() <= unconstrained.avg_power.watts(),
            "capped {} W vs unconstrained {} W",
            capped.avg_power.watts(),
            unconstrained.avg_power.watts()
        );
        // The constraint costs throughput or latency (Fig. 2).
        let t_ok = capped.throughput <= unconstrained.throughput + 1e-9;
        assert!(t_ok);
    }

    #[test]
    fn tighter_caps_raise_latency() {
        let mut cfg = base();
        cfg.arrival_rate = 100.0;
        let peak = cfg.machine.peak_power().watts();
        let mut last_p95 = 0u64;
        // Sweep from generous to tight; p95 response must not improve.
        for frac in [1.0, 0.6, 0.35] {
            cfg.governor = GovernorPolicy::EnergyCap(Watts::new(peak * frac));
            let r = run_server_sim(&cfg);
            let p95 = r.response.quantile(0.95).unwrap_or(0);
            assert!(p95 >= last_p95 || last_p95 == 0, "p95 improved when cap tightened: {p95} < {last_p95}");
            last_p95 = p95;
        }
    }

    #[test]
    fn ondemand_runs() {
        let mut cfg = base();
        cfg.governor = GovernorPolicy::OnDemand;
        let r = run_server_sim(&cfg);
        assert!(r.completed > 0);
        assert!(r.energy.joules() > 0.0);
    }

    #[test]
    fn zero_load_burns_only_idle_power() {
        let mut cfg = base();
        cfg.arrival_rate = 0.001; // essentially no arrivals in 20 s
        let r = run_server_sim(&cfg);
        // Compare against the machine's idle floor.
        let floor = cfg.machine.idle_floor().watts();
        assert!(r.avg_power.watts() < floor * 1.5, "avg {} W vs floor {} W", r.avg_power.watts(), floor);
    }
}
