//! Bounded, priority-aware admission with shed-don't-stall overload
//! behavior — the front door of [`crate::qserver::QueryServer`].
//!
//! The server's original admission control was a bare counter: query
//! `max_concurrent + 1` got an instant rejection, even if a slot was
//! about to free. This module adds a **bounded wait queue** between
//! "admit now" and "reject now":
//!
//! * up to `limit` queries hold admission permits concurrently;
//! * up to `max_queued` more wait, ordered by priority (FIFO within a
//!   priority);
//! * everything beyond that is *shed* — and shedding always takes the
//!   **lowest-priority** entrant, whether that is the newcomer or a
//!   query already queued. Overload degrades the cheapest work first
//!   instead of stalling everyone behind an unbounded queue.
//!
//! Waiters are cooperative: each poll of the wait loop checks the
//! query's [`CancelToken`] and deadline, so a cancelled or expired
//! query leaves the queue (or hands back a just-granted slot) without
//! ever being counted in flight. Every exit path — grant, shed,
//! cancel, deadline, permit drop — funnels through one `promote` step
//! under the same lock, which is what the loom model checks: permits
//! release exactly once, no waiter is lost, and cancelled queries never
//! occupy a slot.
//!
//! The primitives come from the crate's internal `sync` module, so
//! `--cfg haec_loom` model-checks this exact code, not a port of it.

use crate::sync::{Condvar, Mutex, MutexGuard};
use haec_exec::cancel::CancelToken;
use std::fmt;
use std::time::Instant;

/// Why a query did not get (or keep) an admission slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// Both the in-flight set and the wait queue are full, and every
    /// queued query has priority at least as high as this one.
    Rejected {
        /// Queries holding permits at rejection.
        active: usize,
        /// Queries waiting at rejection.
        queued: usize,
    },
    /// The query was queued, then evicted to make room for
    /// higher-priority work (or because the energy budget tightened).
    Shed,
    /// The query's cancel token fired while it was waiting.
    Cancelled,
    /// The query's deadline passed while it was waiting.
    DeadlineExpired,
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::Rejected { active, queued } => {
                write!(f, "admission rejected: {active} active, {queued} queued")
            }
            AdmitError::Shed => write!(f, "shed from the admission queue"),
            AdmitError::Cancelled => write!(f, "cancelled while queued"),
            AdmitError::DeadlineExpired => write!(f, "deadline expired while queued"),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WaitState {
    Waiting,
    Admitted,
    Shed,
}

struct Waiter {
    ticket: u64,
    priority: u8,
    state: WaitState,
}

struct Inner {
    active: usize,
    next_ticket: u64,
    waiters: Vec<Waiter>,
    shed_total: u64,
}

impl Inner {
    fn waiting(&self) -> usize {
        self.waiters.iter().filter(|w| w.state == WaitState::Waiting).count()
    }

    /// Index of the waiter to evict next: lowest priority, youngest
    /// ticket among equals (the most recently queued cheap query goes
    /// first; older peers have waited longer).
    fn shed_victim(&self) -> Option<usize> {
        self.waiters
            .iter()
            .enumerate()
            .filter(|(_, w)| w.state == WaitState::Waiting)
            .min_by_key(|(_, w)| (w.priority, u64::MAX - w.ticket))
            .map(|(i, _)| i)
    }

    /// Index of the waiter to admit next: highest priority, oldest
    /// ticket among equals (FIFO within a priority level).
    fn admit_next(&self) -> Option<usize> {
        self.waiters
            .iter()
            .enumerate()
            .filter(|(_, w)| w.state == WaitState::Waiting)
            .max_by_key(|(_, w)| (w.priority, u64::MAX - w.ticket))
            .map(|(i, _)| i)
    }

    /// Hands free slots to the best waiting queries. Called under the
    /// lock on every state change; the single place slots are granted.
    fn promote(&mut self, limit: usize) {
        while self.active < limit {
            let Some(i) = self.admit_next() else { break };
            self.waiters[i].state = WaitState::Admitted;
            self.active += 1;
        }
    }

    fn remove(&mut self, ticket: u64) -> WaitState {
        let i = self
            .waiters
            .iter()
            .position(|w| w.ticket == ticket)
            .expect("a waiter is removed exactly once, by itself");
        self.waiters.swap_remove(i).state
    }
}

/// The admission gate: `limit` concurrent permits, `max_queued`
/// priority-ordered waiters, shed-lowest-first beyond that (see the
/// module docs).
pub struct AdmissionGate {
    limit: usize,
    max_queued: usize,
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl AdmissionGate {
    /// A gate granting `limit` concurrent permits and queueing at most
    /// `max_queued` more. `max_queued = 0` restores instant-reject
    /// admission control.
    pub fn new(limit: usize, max_queued: usize) -> AdmissionGate {
        AdmissionGate {
            limit,
            max_queued,
            inner: Mutex::new(Inner { active: 0, next_ticket: 0, waiters: Vec::new(), shed_total: 0 }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Permits out right now.
    pub fn active(&self) -> usize {
        self.lock().active
    }

    /// Queries waiting right now.
    pub fn queued(&self) -> usize {
        self.lock().waiting()
    }

    /// Lifetime count of waiters evicted by shedding.
    pub fn shed_total(&self) -> u64 {
        self.lock().shed_total
    }

    /// The concurrent-permit bound.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Wakes every waiter so it re-polls its cancel token / deadline.
    /// [`crate::qserver::QueryServer::cancel`] calls this after firing
    /// a token: the waiter itself removes its queue entry.
    pub fn poke(&self) {
        self.cv.notify_all();
    }

    /// Evicts up to `n` of the lowest-priority waiting queries (the
    /// energy governor calls this when its budget tightens: shrinking
    /// work should shed queued load, not stall everyone). Returns how
    /// many were shed.
    pub fn shed_lowest(&self, n: usize) -> usize {
        let mut inner = self.lock();
        let mut shed = 0;
        while shed < n {
            let Some(i) = inner.shed_victim() else { break };
            inner.waiters[i].state = WaitState::Shed;
            inner.shed_total += 1;
            shed += 1;
        }
        if shed > 0 {
            self.cv.notify_all();
        }
        shed
    }

    /// Acquires an admission slot, waiting in the bounded priority
    /// queue if the gate is full. Higher `priority` values outrank
    /// lower ones. The optional `cancel` token and `deadline` are
    /// polled at every wake-up; under overload the lowest-priority
    /// entrant (queued or this one) is shed.
    ///
    /// # Errors
    ///
    /// See [`AdmitError`] for the four refusal shapes.
    pub fn admit(
        &self,
        priority: u8,
        deadline: Option<Instant>,
        cancel: Option<&CancelToken>,
    ) -> Result<AdmitPermit<'_>, AdmitError> {
        let mut inner = self.lock();
        // Fast path: a free slot and nobody queued ahead of us.
        if inner.active < self.limit && inner.waiting() == 0 {
            inner.active += 1;
            return Ok(AdmitPermit { gate: self });
        }
        if inner.waiting() >= self.max_queued {
            // Full queue: the lowest-priority entrant goes. If that is
            // us, reject outright; otherwise evict the cheapest waiter
            // and take its place.
            let victim = inner.shed_victim().filter(|&i| inner.waiters[i].priority < priority);
            match victim {
                Some(i) => {
                    inner.waiters[i].state = WaitState::Shed;
                    inner.shed_total += 1;
                    self.cv.notify_all();
                }
                None => {
                    return Err(AdmitError::Rejected { active: inner.active, queued: inner.waiting() });
                }
            }
        }
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        inner.waiters.push(Waiter { ticket, priority, state: WaitState::Waiting });
        loop {
            // A release may have happened between our enqueue and this
            // check (or before we ever sleep): promotion runs on every
            // iteration, under the same lock as every other transition.
            inner.promote(self.limit);
            let state = inner
                .waiters
                .iter()
                .find(|w| w.ticket == ticket)
                .map(|w| w.state)
                .expect("own waiter entry lives until self-removal");
            // Cancellation and deadline outrank a grant: a query that
            // stops wanting the slot hands it straight back, so it is
            // never observably in flight.
            if cancel.is_some_and(CancelToken::is_cancelled) {
                return Err(self.bail(inner, ticket, AdmitError::Cancelled));
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(self.bail(inner, ticket, AdmitError::DeadlineExpired));
            }
            match state {
                WaitState::Admitted => {
                    inner.remove(ticket);
                    return Ok(AdmitPermit { gate: self });
                }
                WaitState::Shed => {
                    inner.remove(ticket);
                    return Err(AdmitError::Shed);
                }
                WaitState::Waiting => {}
            }
            inner = self.wait(inner, deadline);
        }
    }

    /// Removes `ticket` on a cancel/deadline exit, returning a
    /// just-granted slot if promotion won the race, and waking peers.
    fn bail(&self, mut inner: MutexGuard<'_, Inner>, ticket: u64, err: AdmitError) -> AdmitError {
        if inner.remove(ticket) == WaitState::Admitted {
            inner.active -= 1;
            inner.promote(self.limit);
        }
        self.cv.notify_all();
        err
    }

    /// One blocking park. Outside loom a deadline bounds the sleep so
    /// expiry is noticed promptly; the loom shim's condvar has no
    /// `wait_timeout` (models are untimed), so modeled builds always
    /// wait for a notification.
    #[cfg(not(haec_loom))]
    fn wait<'g>(&self, guard: MutexGuard<'g, Inner>, deadline: Option<Instant>) -> MutexGuard<'g, Inner> {
        match deadline.map(|d| d.saturating_duration_since(Instant::now())) {
            Some(timeout) => {
                self.cv.wait_timeout(guard, timeout).unwrap_or_else(std::sync::PoisonError::into_inner).0
            }
            None => self.cv.wait(guard).unwrap_or_else(std::sync::PoisonError::into_inner),
        }
    }

    #[cfg(haec_loom)]
    fn wait<'g>(&self, guard: MutexGuard<'g, Inner>, _deadline: Option<Instant>) -> MutexGuard<'g, Inner> {
        self.cv.wait(guard).unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Permit-drop path: free the slot and promote the best waiter.
    fn release(&self) {
        let mut inner = self.lock();
        inner.active -= 1;
        inner.promote(self.limit);
        self.cv.notify_all();
    }
}

impl fmt::Debug for AdmissionGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.lock();
        f.debug_struct("AdmissionGate")
            .field("limit", &self.limit)
            .field("max_queued", &self.max_queued)
            .field("active", &inner.active)
            .field("queued", &inner.waiting())
            .field("shed_total", &inner.shed_total)
            .finish()
    }
}

/// An admission slot; releases (and promotes the next waiter) on drop.
pub struct AdmitPermit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for AdmitPermit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

impl fmt::Debug for AdmitPermit<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdmitPermit").finish_non_exhaustive()
    }
}

#[cfg(all(test, not(haec_loom)))]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn grants_up_to_limit_then_queues_then_rejects() {
        let gate = AdmissionGate::new(2, 1);
        let a = gate.admit(0, None, None).unwrap();
        let b = gate.admit(0, None, None).unwrap();
        assert_eq!(gate.active(), 2);
        // Queue full of equal-priority work: the newcomer is the one
        // shed (it is the lowest-priority entrant).
        std::thread::scope(|s| {
            let h = s.spawn(|| gate.admit(0, None, None));
            while gate.queued() == 0 {
                std::thread::yield_now();
            }
            let err = gate.admit(0, None, None).unwrap_err();
            assert!(matches!(err, AdmitError::Rejected { active: 2, queued: 1 }), "{err}");
            drop(a);
            let c = h.join().unwrap().unwrap();
            assert_eq!(gate.active(), 2);
            drop((b, c));
        });
        assert_eq!(gate.active(), 0);
        assert_eq!(gate.queued(), 0);
    }

    #[test]
    fn higher_priority_newcomer_sheds_queued_low() {
        let gate = AdmissionGate::new(1, 1);
        let held = gate.admit(0, None, None).unwrap();
        std::thread::scope(|s| {
            let low = s.spawn(|| gate.admit(1, None, None));
            while gate.queued() == 0 {
                std::thread::yield_now();
            }
            let high = s.spawn(|| gate.admit(9, None, None));
            // The high-priority newcomer evicts the queued low one.
            assert_eq!(low.join().unwrap().unwrap_err(), AdmitError::Shed);
            drop(held);
            let p = high.join().unwrap().unwrap();
            assert_eq!(gate.shed_total(), 1);
            drop(p);
        });
        assert_eq!(gate.active(), 0);
    }

    #[test]
    fn priority_orders_the_queue() {
        let gate = AdmissionGate::new(1, 4);
        let held = gate.admit(0, None, None).unwrap();
        std::thread::scope(|s| {
            let low = s.spawn(|| gate.admit(1, None, None).map(|p| (1, gate.active(), p)));
            while gate.queued() < 1 {
                std::thread::yield_now();
            }
            let high = s.spawn(|| gate.admit(5, None, None).map(|p| (5, gate.active(), p)));
            while gate.queued() < 2 {
                std::thread::yield_now();
            }
            drop(held);
            // The high-priority waiter wins the freed slot even though
            // it queued later.
            let (_, _, hp) = high.join().unwrap().unwrap();
            assert_eq!(gate.queued(), 1, "low waiter still queued");
            drop(hp);
            let (_, _, lp) = low.join().unwrap().unwrap();
            drop(lp);
        });
        assert_eq!(gate.active(), 0);
    }

    #[test]
    fn cancel_while_queued_exits_without_slot() {
        let gate = AdmissionGate::new(1, 2);
        let held = gate.admit(0, None, None).unwrap();
        let token = CancelToken::new();
        std::thread::scope(|s| {
            let h = s.spawn(|| gate.admit(0, None, Some(&token)));
            while gate.queued() == 0 {
                std::thread::yield_now();
            }
            token.cancel();
            gate.poke();
            assert_eq!(h.join().unwrap().unwrap_err(), AdmitError::Cancelled);
            drop(held);
        });
        assert_eq!(gate.active(), 0);
        assert_eq!(gate.queued(), 0);
    }

    #[test]
    fn deadline_while_queued_expires() {
        let gate = AdmissionGate::new(1, 2);
        let held = gate.admit(0, None, None).unwrap();
        let deadline = Instant::now() + Duration::from_millis(20);
        let err = gate.admit(0, Some(deadline), None).unwrap_err();
        assert_eq!(err, AdmitError::DeadlineExpired);
        drop(held);
        assert_eq!(gate.active(), 0);
        assert_eq!(gate.queued(), 0);
    }

    #[test]
    fn shed_lowest_takes_cheapest_waiters() {
        let gate = AdmissionGate::new(1, 4);
        let held = gate.admit(0, None, None).unwrap();
        std::thread::scope(|s| {
            let low = s.spawn(|| gate.admit(1, None, None));
            while gate.queued() < 1 {
                std::thread::yield_now();
            }
            let high = s.spawn(|| gate.admit(7, None, None));
            while gate.queued() < 2 {
                std::thread::yield_now();
            }
            assert_eq!(gate.shed_lowest(1), 1);
            assert_eq!(low.join().unwrap().unwrap_err(), AdmitError::Shed);
            drop(held);
            drop(high.join().unwrap().unwrap());
        });
        assert_eq!(gate.active(), 0);
        assert_eq!(gate.shed_total(), 1);
    }

    #[test]
    fn zero_queue_restores_instant_reject() {
        let gate = AdmissionGate::new(1, 0);
        let held = gate.admit(0, None, None).unwrap();
        let err = gate.admit(9, None, None).unwrap_err();
        assert!(matches!(err, AdmitError::Rejected { active: 1, queued: 0 }), "{err}");
        drop(held);
    }
}
