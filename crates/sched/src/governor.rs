//! DVFS governors: the policies that pick a P-state (and core budget)
//! for the work at hand.
//!
//! The paper's Fig. 2 story is that the runtime must "flexibly balance
//! query response time minimization and throughput maximization under a
//! given energy constraint". These governors are the concrete policies
//! the experiments compare:
//!
//! * [`GovernorPolicy::RaceToIdle`] — always run flat out, park
//!   everything when done (classic latency-first).
//! * [`GovernorPolicy::PaceToDeadline`] — run just fast enough to meet a
//!   response-time target (classic energy-first under deadline).
//! * [`GovernorPolicy::OnDemand`] — utilization-driven stepping, the OS
//!   default of the era.
//! * [`GovernorPolicy::EnergyCap`] — the paper's case: never exceed a
//!   power budget; throughput and latency degrade gracefully.

use haec_energy::pstate::{CState, PStateId, PStateTable};
use haec_energy::units::{Hertz, Watts};
use std::fmt;
use std::time::Duration;

/// The governor policies compared by experiments E2 and E11.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GovernorPolicy {
    /// Fastest P-state always.
    RaceToIdle,
    /// Slowest P-state that finishes the queued work within the target.
    PaceToDeadline(
        /// Per-query response-time target.
        Duration,
    ),
    /// Step up when the queue builds, down when idle.
    OnDemand,
    /// Fastest P-state whose all-busy power stays under the cap.
    EnergyCap(
        /// The node power budget.
        Watts,
    ),
}

impl fmt::Display for GovernorPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GovernorPolicy::RaceToIdle => f.write_str("race-to-idle"),
            GovernorPolicy::PaceToDeadline(d) => write!(f, "pace({} ms)", d.as_millis()),
            GovernorPolicy::OnDemand => f.write_str("ondemand"),
            GovernorPolicy::EnergyCap(w) => write!(f, "cap({:.0} W)", w.watts()),
        }
    }
}

/// What the governor sees when making a decision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GovernorInput {
    /// Queries waiting (not yet running).
    pub queued: usize,
    /// Cores currently busy.
    pub busy_cores: usize,
    /// Total usable cores.
    pub total_cores: usize,
    /// Work remaining in the queue head (cycles), if known.
    pub head_work_cycles: u64,
    /// The P-state currently in effect.
    pub current: PStateId,
}

/// The governor's decision: which P-state to run and how many cores may
/// be concurrently busy (the cap matters only for `EnergyCap`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GovernorDecision {
    /// P-state to use for dispatches.
    pub pstate: PStateId,
    /// Maximum cores allowed busy simultaneously.
    pub core_cap: usize,
    /// Sleep state for idle cores.
    pub idle_cstate: CState,
}

/// Computes the decision for `policy` under `input` on `table`.
pub fn decide(policy: GovernorPolicy, table: &PStateTable, input: GovernorInput) -> GovernorDecision {
    let full = GovernorDecision {
        pstate: table.fastest(),
        core_cap: input.total_cores,
        idle_cstate: CState::Parked,
    };
    match policy {
        GovernorPolicy::RaceToIdle => full,
        GovernorPolicy::PaceToDeadline(target) => {
            // Frequency needed so the head query finishes within the
            // target on one core.
            let needed_hz = input.head_work_cycles as f64 / target.as_secs_f64().max(1e-9);
            GovernorDecision {
                pstate: table.slowest_at_least(Hertz::new(needed_hz)),
                core_cap: input.total_cores,
                idle_cstate: CState::Parked,
            }
        }
        GovernorPolicy::OnDemand => {
            let cur = input.current.0;
            let pstate = if input.queued > input.busy_cores {
                PStateId((cur + 1).min(table.fastest().0))
            } else if input.queued == 0 && input.busy_cores <= input.total_cores / 2 {
                PStateId(cur.saturating_sub(1))
            } else {
                input.current
            };
            GovernorDecision { pstate, core_cap: input.total_cores, idle_cstate: CState::Halt }
        }
        GovernorPolicy::EnergyCap(cap) => {
            // Find the best (pstate, cores) point: prefer more cores at
            // lower frequency (better throughput/watt thanks to V²
            // scaling), then raise frequency if headroom remains.
            let mut best: Option<(PStateId, usize)> = None;
            for (id, _) in table.iter() {
                let per_core = table.core_power(id, CState::Active).watts();
                if per_core <= 0.0 {
                    continue;
                }
                let max_cores = ((cap.watts() / per_core).floor() as usize).min(input.total_cores);
                if max_cores == 0 {
                    continue;
                }
                // Score: total cycles/s = cores * freq.
                let score = max_cores as f64 * table.state(id).frequency().hertz();
                let better = match best {
                    None => true,
                    Some((bid, bcores)) => {
                        let bscore = bcores as f64 * table.state(bid).frequency().hertz();
                        score > bscore
                    }
                };
                if better {
                    best = Some((id, max_cores));
                }
            }
            match best {
                Some((pstate, cores)) => {
                    GovernorDecision { pstate, core_cap: cores, idle_cstate: CState::Parked }
                }
                // Cap below even one slowest core: run one core slowest
                // (the budget is a soft constraint; we degrade, not halt).
                None => {
                    GovernorDecision { pstate: table.slowest(), core_cap: 1, idle_cstate: CState::Parked }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PStateTable {
        PStateTable::xeon_2013()
    }

    fn input(queued: usize, busy: usize) -> GovernorInput {
        GovernorInput {
            queued,
            busy_cores: busy,
            total_cores: 8,
            head_work_cycles: 1_000_000_000,
            current: PStateId(2),
        }
    }

    #[test]
    fn race_to_idle_always_fastest() {
        let t = table();
        let d = decide(GovernorPolicy::RaceToIdle, &t, input(0, 0));
        assert_eq!(d.pstate, t.fastest());
        assert_eq!(d.core_cap, 8);
        assert_eq!(d.idle_cstate, CState::Parked);
    }

    #[test]
    fn pace_picks_minimum_sufficient_frequency() {
        let t = table();
        // 1e9 cycles in 1 s → 1 GHz suffices → slowest (1.2 GHz) state.
        let d = decide(GovernorPolicy::PaceToDeadline(Duration::from_secs(1)), &t, input(1, 0));
        assert_eq!(d.pstate, t.slowest());
        // 1e9 cycles in 100 ms → 10 GHz: unattainable → fastest.
        let d = decide(GovernorPolicy::PaceToDeadline(Duration::from_millis(100)), &t, input(1, 0));
        assert_eq!(d.pstate, t.fastest());
        // 1e9 cycles in 500 ms → 2 GHz → exactly the 2.0 GHz state.
        let d = decide(GovernorPolicy::PaceToDeadline(Duration::from_millis(500)), &t, input(1, 0));
        assert_eq!(t.state(d.pstate).frequency().ghz(), 2.0);
    }

    #[test]
    fn ondemand_steps_with_load() {
        let t = table();
        let up = decide(GovernorPolicy::OnDemand, &t, input(9, 8));
        assert_eq!(up.pstate, PStateId(3), "stepped up from P2");
        let down = decide(GovernorPolicy::OnDemand, &t, input(0, 2));
        assert_eq!(down.pstate, PStateId(1), "stepped down from P2");
        let hold = decide(GovernorPolicy::OnDemand, &t, input(1, 6));
        assert_eq!(hold.pstate, PStateId(2));
        // Saturates at the ends.
        let mut i = input(9, 8);
        i.current = t.fastest();
        assert_eq!(decide(GovernorPolicy::OnDemand, &t, i).pstate, t.fastest());
        let mut i = input(0, 0);
        i.current = t.slowest();
        assert_eq!(decide(GovernorPolicy::OnDemand, &t, i).pstate, t.slowest());
    }

    #[test]
    fn energy_cap_respects_budget() {
        let t = table();
        for cap_w in [10.0, 30.0, 60.0, 120.0] {
            let d = decide(GovernorPolicy::EnergyCap(Watts::new(cap_w)), &t, input(4, 0));
            let power = t.core_power(d.pstate, CState::Active).watts() * d.core_cap as f64;
            assert!(
                power <= cap_w + 1e-9 || d.core_cap == 1,
                "cap {cap_w} W exceeded: {power} W with {} cores",
                d.core_cap
            );
        }
    }

    #[test]
    fn energy_cap_throughput_monotone_in_budget() {
        let t = table();
        let mut last = 0.0;
        for cap_w in [8.0, 16.0, 32.0, 64.0, 128.0] {
            let d = decide(GovernorPolicy::EnergyCap(Watts::new(cap_w)), &t, input(4, 0));
            let score = d.core_cap as f64 * t.state(d.pstate).frequency().hertz();
            assert!(score >= last, "throughput dropped when budget rose at {cap_w} W");
            last = score;
        }
    }

    #[test]
    fn energy_cap_tiny_budget_degrades_gracefully() {
        let t = table();
        let d = decide(GovernorPolicy::EnergyCap(Watts::new(0.5)), &t, input(4, 0));
        assert_eq!(d.core_cap, 1);
        assert_eq!(d.pstate, t.slowest());
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", GovernorPolicy::RaceToIdle), "race-to-idle");
        assert!(format!("{}", GovernorPolicy::EnergyCap(Watts::new(80.0))).contains("80"));
        assert!(format!("{}", GovernorPolicy::PaceToDeadline(Duration::from_millis(5))).contains("5 ms"));
    }
}
