//! # haec-sched
//!
//! Energy-aware scheduling: DVFS governors, core parking, the
//! energy-capped query server, and cluster elasticity — the runtime
//! policies of the `haecdb` reproduction of *Lehner, "Energy-Efficient
//! In-Memory Database Computing" (DATE 2013)*.
//!
//! This crate regenerates the paper's Fig. 2 ("Impact of Energy
//! Constraint on Query Optimization") and the idle-power argument:
//!
//! * [`governor`] — race-to-idle / pace-to-deadline / ondemand /
//!   energy-cap P-state policies.
//! * [`server`] — a deterministic single-node query-server simulation
//!   that integrates power over virtual time under a chosen governor
//!   (experiments E2 and E11).
//! * [`qserver`] — the **real** concurrent query server: admission
//!   control, per-query MVCC snapshots and governor-granted morsel
//!   parallelism over one shared `haecdb` database and worker pool
//!   (experiment E22).
//! * [`elastic`] — "elasticity in the large": diurnal load on a cluster,
//!   static vs elastic provisioning, energy proportionality
//!   (experiment E12).
//!
//! ## Example
//!
//! ```
//! use haec_sched::prelude::*;
//! use std::time::Duration;
//!
//! let mut cfg = ServerSimConfig::default_mix();
//! cfg.horizon = Duration::from_secs(5);
//! cfg.governor = GovernorPolicy::RaceToIdle;
//! let result = run_server_sim(&cfg);
//! assert!(result.completed > 0);
//! assert!(result.energy.joules() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod backoff;
pub mod elastic;
pub mod governor;
pub mod qserver;
pub mod server;
pub(crate) mod sync;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::admission::{AdmissionGate, AdmitError, AdmitPermit};
    pub use crate::backoff::Backoff;
    pub use crate::elastic::{diurnal_trace, run_cluster_sim, ClusterSimResult, Provisioning};
    pub use crate::governor::{decide, GovernorDecision, GovernorInput, GovernorPolicy};
    pub use crate::qserver::{
        QueryId, QueryOpts, QueryServer, QueryServerConfig, ServedQuery, ServerError, ServerStats,
    };
    pub use crate::server::{run_server_sim, ServerSimConfig, ServerSimResult};
}

pub use admission::{AdmissionGate, AdmitError};
pub use backoff::Backoff;
pub use elastic::{run_cluster_sim, Provisioning};
pub use governor::GovernorPolicy;
pub use qserver::{QueryId, QueryOpts, QueryServer, QueryServerConfig};
pub use server::{run_server_sim, ServerSimConfig, ServerSimResult};
