//! Criterion microbenchmarks over the engine's hot kernels — the
//! measured backbone of experiments E4, E5, E10 and E16.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use haec_columnar::bitmap::Bitmap;
use haec_columnar::encoding::{EncodedInts, Scheme};
use haec_columnar::value::CmpOp;
use haec_exec::agg::{parallel_group_sum, SyncStrategy};
use haec_exec::join::HashJoin;
use haec_exec::select::{select_positions, SelectKernel};

fn shuffled(n: usize) -> Vec<i64> {
    let mut v: Vec<i64> = (0..n as i64).collect();
    let mut state = 0x243F_6A88_85A3_08D3u64;
    for i in (1..v.len()).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        v.swap(i, j);
    }
    v
}

/// E5: the three selection kernels at the adversarial selectivity (0.5).
fn bench_select_kernels(c: &mut Criterion) {
    let n = 1_000_000;
    let data = shuffled(n);
    let lit = (n / 2) as i64;
    let mut g = c.benchmark_group("e05_select_kernels_sel0.5");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    for kernel in SelectKernel::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(kernel), &kernel, |b, &k| {
            b.iter(|| select_positions(&data, CmpOp::Lt, lit, k))
        });
    }
    g.finish();
}

/// E16: encode/decode/scan throughput per scheme on run-heavy data.
fn bench_compression(c: &mut Criterion) {
    let n = 1_000_000usize;
    let data: Vec<i64> = (0..n).map(|i| (i / 512) as i64 % 37).collect();
    let mut g = c.benchmark_group("e16_compression_runs");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    for scheme in Scheme::ALL {
        g.bench_with_input(BenchmarkId::new("encode", scheme), &scheme, |b, &s| {
            b.iter(|| EncodedInts::encode(&data, s))
        });
        let encoded = EncodedInts::encode(&data, scheme);
        g.bench_with_input(BenchmarkId::new("scan", scheme), &encoded, |b, e| {
            b.iter(|| {
                let mut bm = Bitmap::zeros(n);
                e.scan(CmpOp::Ge, 18, &mut bm);
                bm.count_ones()
            })
        });
    }
    g.finish();
}

/// E4: parallel aggregation synchronization strategies.
fn bench_sync_strategies(c: &mut Criterion) {
    let n = 1_000_000usize;
    let groups = 8usize;
    let keys: Vec<u32> = (0..n).map(|i| ((i * 2_654_435_761) % groups) as u32).collect();
    let values: Vec<i64> = (0..n).map(|i| (i % 1000) as i64).collect();
    let threads = std::thread::available_parallelism().map(|x| x.get()).unwrap_or(2);
    let mut g = c.benchmark_group("e04_parallel_group_sum");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    for strategy in SyncStrategy::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(strategy), &strategy, |b, &s| {
            b.iter(|| parallel_group_sum(&keys, &values, groups, threads, s))
        });
    }
    g.finish();
}

/// Joins: build+probe throughput (supports E1's cost constants).
fn bench_hash_join(c: &mut Criterion) {
    let build: Vec<i64> = (0..100_000).collect();
    let probe: Vec<i64> = (50_000..550_000).collect();
    let mut g = c.benchmark_group("join_hash");
    g.throughput(Throughput::Elements((build.len() + probe.len()) as u64));
    g.sample_size(10);
    g.bench_function("build_probe", |b| b.iter(|| HashJoin::build(&build).probe(&probe).len()));
    g.finish();
}

criterion_group!(benches, bench_select_kernels, bench_compression, bench_sync_strategies, bench_hash_join);
criterion_main!(benches);
