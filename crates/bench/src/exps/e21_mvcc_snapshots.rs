//! E21 — MVCC snapshot reads under a racing writer: reader threads pin
//! snapshots and scan while a writer inserts batches and swaps segment
//! sets with `merge()`. Because `begin_snapshot` pins `(segment set,
//! delta prefix, timestamp)` and merge publishes a new set atomically,
//! readers never block on the writer — the experiment measures reader
//! throughput and energy per query with and without the churn, and
//! proves the overlap structurally (queries completing *while* a merge
//! is in flight) rather than by brittle wall-clock ratios.
//!
//! Energy is billed honestly: each query reports its **own**
//! `CostEstimate` energy (the work it did, at the snapshot it pinned),
//! never a delta of the shared meter that concurrent queries would
//! pollute.

use crate::report::{fmt_joules, Report};
use haecdb::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Barrier;
use std::thread;
use std::time::Instant;

const PRELOAD: i64 = 64 * 1024;
const READERS: usize = 4;
const QUIET_QUERIES: usize = 64;
/// The writer always churns at least this many insert+merge rounds …
const CHURN_ROUNDS: usize = 4;
/// … and keeps going (bounded) until every reader has completed a query
/// with a merge in flight, so the non-blocking proof is structural, not
/// a scheduling coin-flip.
const MAX_ROUNDS: usize = 32;
const CHURN_BATCH: i64 = 16 * 1024;

fn amount(i: i64) -> i64 {
    (i * 31 + 7) % 1_000
}

fn fresh() -> Database {
    let db = Database::new();
    db.create_table("events", &[("id", DataType::Int64), ("amount", DataType::Int64)]).unwrap();
    db.set_merge_threshold("events", usize::MAX).unwrap();
    for i in 0..PRELOAD {
        db.insert("events", &Record::new().with("id", i).with("amount", amount(i))).unwrap();
    }
    db.merge("events").unwrap();
    db
}

/// One reader's tally: queries completed, joules across them, and how
/// many completed while a merge was in flight.
struct ReaderTally {
    queries: usize,
    joules: f64,
    overlapped: usize,
}

/// Runs one snapshot query and verifies the answer against the pinned
/// prefix (sum of `amount(0..n)` has a closed form, whatever layout
/// serves it), so throughput is never bought with wrong answers.
fn one_query(db: &Database, q: &Query) -> (usize, f64) {
    let snap = db.begin_snapshot();
    let n = snap.table("events").unwrap().rows();
    let out = snap.execute(q).unwrap();
    let got = out.rows.row(0).unwrap()[0].as_float().unwrap() as i64;
    let want: i64 = (0..n as i64).map(amount).sum();
    assert_eq!(got, want, "snapshot of {n} rows answered for a different prefix");
    (n, out.energy.joules())
}

/// Runs `READERS` reader threads against `db` until `stop` is set (or,
/// when `stop` is `None`, for a fixed query count per reader); the
/// writer closure runs on the caller thread between the barriers.
fn race<W: FnOnce()>(
    db: &Database,
    merging: &AtomicBool,
    overlaps: &[AtomicUsize],
    stop: Option<&AtomicBool>,
    writer: W,
) -> Vec<ReaderTally> {
    let q = Query::scan("events").aggregate(AggKind::Sum, "amount");
    let start = Barrier::new(READERS + 1);
    thread::scope(|scope| {
        let handles: Vec<_> = (0..READERS)
            .map(|r| {
                let q = q.clone();
                let start = &start;
                scope.spawn(move || {
                    start.wait();
                    let mut tally = ReaderTally { queries: 0, joules: 0.0, overlapped: 0 };
                    loop {
                        let in_flight = merging.load(Ordering::Acquire);
                        let (_, joules) = one_query(db, &q);
                        // A query that ran with a merge in flight at either
                        // end completed while the writer was inside
                        // merge() — readers do not block on the swap.
                        if in_flight || merging.load(Ordering::Acquire) {
                            tally.overlapped += 1;
                            overlaps[r].fetch_add(1, Ordering::Relaxed);
                        }
                        tally.queries += 1;
                        tally.joules += joules;
                        match stop {
                            Some(flag) => {
                                if flag.load(Ordering::Acquire) {
                                    break;
                                }
                            }
                            None => {
                                if tally.queries >= QUIET_QUERIES {
                                    break;
                                }
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        start.wait();
        writer();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Runs the experiment.
pub fn run() -> Report {
    let mut r = Report::new(
        "E21",
        "MVCC snapshot reads under a racing writer (64K-row merged table, 4 readers, SUM scan)",
        "begin_snapshot pins (segment set, delta prefix, timestamp); merge() swaps atomically — readers never block, answers stay exact, energy billed per query",
    );
    r.headers(["phase", "queries", "elapsed", "reader qps", "E/query", "overlapped"]);

    let db = fresh();
    let merging = AtomicBool::new(false);
    let overlaps: Vec<AtomicUsize> = (0..READERS).map(|_| AtomicUsize::new(0)).collect();
    let mut phases = Vec::new();

    // Quiet baseline: readers only, fixed query count each.
    let started = Instant::now();
    let quiet = race(&db, &merging, &overlaps, None, || {});
    phases.push(("quiet", quiet, started.elapsed()));

    // Churn: the same readers loop while the writer inserts batches and
    // merges — at least CHURN_ROUNDS rounds, continuing (bounded) until
    // every reader has completed a query with a merge in flight.
    let stop = AtomicBool::new(false);
    let merges_done = AtomicUsize::new(0);
    let started = Instant::now();
    let churn = race(&db, &merging, &overlaps, Some(&stop), || {
        let mut next = PRELOAD;
        for round in 0..MAX_ROUNDS {
            if round >= CHURN_ROUNDS && overlaps.iter().all(|o| o.load(Ordering::Relaxed) > 0) {
                break;
            }
            for _ in 0..CHURN_BATCH {
                db.insert("events", &Record::new().with("id", next).with("amount", amount(next))).unwrap();
                next += 1;
            }
            merging.store(true, Ordering::Release);
            db.merge("events").unwrap();
            merging.store(false, Ordering::Release);
            merges_done.fetch_add(1, Ordering::Relaxed);
        }
        stop.store(true, Ordering::Release);
    });
    phases.push(("churn", churn, started.elapsed()));

    let mut qps = Vec::new();
    for (label, tallies, elapsed) in &phases {
        let queries: usize = tallies.iter().map(|t| t.queries).sum();
        let joules: f64 = tallies.iter().map(|t| t.joules).sum();
        let overlapped: usize = tallies.iter().map(|t| t.overlapped).sum();
        let rate = queries as f64 / elapsed.as_secs_f64();
        qps.push(rate);
        r.row([
            (*label).to_string(),
            format!("{queries}"),
            format!("{:.0} ms", elapsed.as_secs_f64() * 1e3),
            format!("{rate:.0}"),
            fmt_joules(joules / queries as f64),
            format!("{overlapped}"),
        ]);
    }

    // Acceptance gates — structural, not wall-clock-ratio, so they hold
    // on loaded CI runners.
    let churn_tallies = &phases[1].1;
    assert!(merges_done.load(Ordering::Relaxed) >= CHURN_ROUNDS, "writer completed every merge");
    for (i, t) in churn_tallies.iter().enumerate() {
        assert!(t.queries > 0, "reader {i} starved during churn");
        assert!(
            t.overlapped > 0,
            "reader {i} never completed a query while a merge was in flight — readers appear to \
             block on the swap"
        );
    }
    let overlapped: usize = churn_tallies.iter().map(|t| t.overlapped).sum();

    r.note(format!(
        "churn vs quiet reader throughput: {:.2}x — snapshots pin Arc'd segment sets, so the merge \
         swap costs readers an epoch bump, not a lock wait ({} queries overlapped a merge in flight)",
        qps[1] / qps[0].max(f64::MIN_POSITIVE),
        overlapped,
    ));
    r.note(format!(
        "E/query rises slightly under churn because later snapshots see more rows (the writer \
         committed {} batches of {}K) — the per-query CostEstimate bills exactly the pinned \
         prefix scanned",
        merges_done.load(Ordering::Relaxed),
        CHURN_BATCH / 1024,
    ));
    r
}
