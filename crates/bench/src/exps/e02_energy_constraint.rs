//! E2 — **Fig. 2**: impact of an energy constraint on query processing:
//! response time and throughput under a sweeping power budget.

use crate::report::{fmt_joules, Report};
use haec_energy::units::Watts;
use haec_sched::governor::GovernorPolicy;
use haec_sched::server::{run_server_sim, ServerSimConfig};
use std::time::Duration;

/// Runs the experiment.
pub fn run() -> Report {
    let mut r = Report::new(
        "E2",
        "Fig. 2 — query processing under an energy constraint",
        "the system must flexibly trade response time vs throughput under a power budget (§IV, Fig. 2)",
    );
    r.headers(["budget (% peak)", "cap", "throughput q/s", "p50 resp", "p95 resp", "J/query", "avg power"]);

    // Offered load ≈ 78% of the 8-core machine's cycle capacity: stable
    // when unconstrained, so any degradation is the budget's doing.
    let mut cfg = ServerSimConfig::default_mix();
    cfg.arrival_rate = 90.0;
    cfg.mean_work_cycles = 2.0e8;
    cfg.horizon = Duration::from_secs(60);
    let peak = cfg.machine.peak_power().watts();

    let mut last_throughput = f64::INFINITY;
    let mut p95_unconstrained = 0.0;
    let mut p95_tightest = 0.0;
    for frac in [1.0, 0.8, 0.6, 0.5, 0.4, 0.3] {
        cfg.governor = GovernorPolicy::EnergyCap(Watts::new(peak * frac));
        let out = run_server_sim(&cfg);
        let p50 = out.response.quantile_duration(0.50).unwrap_or_default();
        let p95 = out.response.quantile_duration(0.95).unwrap_or_default();
        r.row([
            format!("{:.0}%", frac * 100.0),
            format!("{:.0} W", peak * frac),
            format!("{:.1}", out.throughput),
            format!("{:.1} ms", p50.as_secs_f64() * 1e3),
            format!("{:.1} ms", p95.as_secs_f64() * 1e3),
            fmt_joules(out.energy_per_query.joules()),
            format!("{:.0} W", out.avg_power.watts()),
        ]);
        assert!(out.throughput <= last_throughput + 1.0, "throughput rose as budget shrank");
        last_throughput = out.throughput;
        if frac == 1.0 {
            p95_unconstrained = p95.as_secs_f64();
        }
        if frac == 0.3 {
            p95_tightest = p95.as_secs_f64();
        }
    }
    r.note(format!(
        "tightening the budget to 30% of peak stretches p95 response {:.1}x — the Fig. 2 trade-off",
        p95_tightest / p95_unconstrained.max(1e-9)
    ));

    // Governor family comparison at a fixed moderate load.
    let mut g =
        Report::new("E2b", "governor comparison (same load)", "race-to-idle vs pace vs ondemand (§IV)");
    let _ = &mut g;
    for gov in [
        GovernorPolicy::RaceToIdle,
        GovernorPolicy::OnDemand,
        GovernorPolicy::PaceToDeadline(Duration::from_millis(400)),
    ] {
        cfg.governor = gov;
        let out = run_server_sim(&cfg);
        r.row([
            format!("{gov}"),
            "-".into(),
            format!("{:.1}", out.throughput),
            format!("{:.1} ms", out.response.quantile_duration(0.50).unwrap_or_default().as_secs_f64() * 1e3),
            format!("{:.1} ms", out.response.quantile_duration(0.95).unwrap_or_default().as_secs_f64() * 1e3),
            fmt_joules(out.energy_per_query.joules()),
            format!("{:.0} W", out.avg_power.watts()),
        ]);
    }
    r.note("last three rows: uncapped governors on the same load for reference");
    r
}
