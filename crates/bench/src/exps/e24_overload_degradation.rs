//! E24 — graceful degradation under overload: offered load swept far
//! past a deliberately tiny server capacity (2 concurrent, 4 queued),
//! comparing three client disciplines against the same engine:
//!
//! * **naive** — hammer on `Overloaded`: retry immediately, forever;
//! * **backoff** — retry under [`haec_sched::backoff::Backoff`],
//!   floored by the server's `retry_after` hint;
//! * **deadline** — per-attempt deadlines plus mixed priorities, so
//!   overload resolves by *shedding* (deadline expiry while queued,
//!   lowest-priority eviction) instead of unbounded waiting.
//!
//! Reported per round: goodput (completed queries per second), p99
//! latency, energy per completed query, and the rejection/cancel/shed
//! counters. Structural gates that hold on any machine:
//!
//! * every completed answer matches its closed form — degradation is
//!   never bought with wrong answers;
//! * the server's books balance: completed/cancelled counters equal the
//!   clients' own tallies, and after every round the admission gate and
//!   the fleet-wide morsel gate are empty (`active == queued ==
//!   inflight == 0`) — **zero permit leak** under rejection, retry,
//!   cancellation and shedding;
//! * past saturation the deadline discipline actually sheds (rejections
//!   or cancellations observed), rather than queueing without bound;
//! * the pool spawns zero threads across the whole sweep.
//!
//! Results are also emitted as machine-readable `BENCH_e24.json`.

use crate::report::{fmt_dur, fmt_joules, fmt_rate, Report};
use haec_energy::machine::MachineSpec;
use haec_energy::units::Watts;
use haec_sched::backoff::Backoff;
use haec_sched::governor::GovernorPolicy;
use haec_sched::qserver::{QueryOpts, QueryServer, QueryServerConfig, ServerError};
use haecdb::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

const WORKERS: usize = 4;
const ROWS: i64 = 32 * 1024;
const QUERIES_PER_CLIENT: usize = 4;
const CAP_WATTS: f64 = 30.0;
/// Deliberately tiny: the sweep is about what happens *past* capacity.
const MAX_CONCURRENT: usize = 2;
const MAX_QUEUED: usize = 4;
const ATTEMPT_DEADLINE: Duration = Duration::from_millis(5);

fn amount(i: i64) -> i64 {
    (i * 31 + 7) % 1_000
}

/// Client counts to sweep past capacity: 4→256, truncated by the
/// `E24_CLIENTS` environment variable (CI smoke runs small counts).
fn client_counts() -> Vec<usize> {
    let max = std::env::var("E24_CLIENTS").ok().and_then(|v| v.parse::<usize>().ok()).unwrap_or(256);
    [4usize, 16, 64, 256].into_iter().filter(|&c| c <= max.max(4)).collect()
}

fn fresh() -> Arc<Database> {
    let pool = Arc::new(WorkerPool::new(WORKERS));
    let db = Database::with_machine_and_pool(MachineSpec::commodity_2013().with_cores(WORKERS), pool);
    db.create_table("events", &[("id", DataType::Int64), ("amount", DataType::Int64)]).unwrap();
    db.set_merge_threshold("events", usize::MAX).unwrap();
    for i in 0..ROWS {
        db.insert("events", &Record::new().with("id", i).with("amount", amount(i))).unwrap();
    }
    db.merge("events").unwrap();
    Arc::new(db)
}

fn query(q: usize) -> Query {
    if q.is_multiple_of(2) {
        Query::scan("events").aggregate(AggKind::Sum, "amount")
    } else {
        Query::scan("events").filter("amount", CmpOp::Lt, 500).aggregate(AggKind::Count, "amount")
    }
}

fn check_answer(q: usize, got: f64) {
    if q.is_multiple_of(2) {
        let want: i64 = (0..ROWS).map(amount).sum();
        assert_eq!(got as i64, want, "SUM(amount) answered wrong under overload");
    } else {
        let want = (0..ROWS).filter(|&i| amount(i) < 500).count();
        assert_eq!(got as usize, want, "filtered COUNT answered wrong under overload");
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Naive,
    Backoff,
    Deadline,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Naive => "naive",
            Mode::Backoff => "backoff",
            Mode::Deadline => "deadline",
        }
    }
}

struct Round {
    mode: Mode,
    clients: usize,
    goodput: f64,
    p99: Duration,
    joules_per_completed: f64,
    completed: usize,
    dropped: usize,
    rejected: usize,
    shed: u64,
    retries: usize,
}

/// `clients` closed-loop threads each try [`QUERIES_PER_CLIENT`]
/// queries under `mode`'s retry discipline; returns the measured round.
fn run_round(db: &Arc<Database>, mode: Mode, clients: usize) -> Round {
    let srv = QueryServer::new(
        Arc::clone(db),
        QueryServerConfig {
            governor: GovernorPolicy::EnergyCap(Watts::new(CAP_WATTS)),
            max_concurrent: MAX_CONCURRENT,
            max_queued: MAX_QUEUED,
            ..Default::default()
        },
    );
    let start = Barrier::new(clients + 1);
    let successes = AtomicUsize::new(0);
    let dropped = AtomicUsize::new(0);
    let retries = AtomicUsize::new(0);
    let started = thread::scope(|scope| {
        for c in 0..clients {
            let srv = &srv;
            let start = &start;
            let successes = &successes;
            let dropped = &dropped;
            let retries = &retries;
            scope.spawn(move || {
                start.wait();
                let mut backoff = Backoff::new(Duration::from_micros(100), Duration::from_millis(5));
                for q in 0..QUERIES_PER_CLIENT {
                    loop {
                        let opts = match mode {
                            Mode::Naive | Mode::Backoff => QueryOpts::default(),
                            // Per-attempt deadline + mixed priorities:
                            // overload resolves by shedding the cheap.
                            Mode::Deadline => {
                                QueryOpts { deadline: Some(ATTEMPT_DEADLINE), priority: ((c + q) % 3) as u8 }
                            }
                        };
                        match srv.submit(&query(c + q), &opts) {
                            Ok(served) => {
                                check_answer(
                                    c + q,
                                    served.result.rows.row(0).unwrap()[0].as_float().unwrap(),
                                );
                                successes.fetch_add(1, Ordering::Relaxed);
                                backoff.reset();
                                break;
                            }
                            Err(err @ ServerError::Overloaded { .. }) => {
                                retries.fetch_add(1, Ordering::Relaxed);
                                match mode {
                                    Mode::Naive => thread::yield_now(),
                                    _ => thread::sleep(backoff.next_delay(err.retry_after())),
                                }
                            }
                            Err(err) if err.is_cancelled() => {
                                // Deadline expired (queued or running):
                                // the client gives this query up.
                                dropped.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(err) => panic!("unexpected server error: {err}"),
                        }
                    }
                }
            });
        }
        start.wait();
        std::time::Instant::now()
    });
    let elapsed = started.elapsed().max(Duration::from_micros(1));
    let stats = srv.stats();

    // The books balance: the server's counters are exactly the clients'
    // experience, and nothing is left admitted, queued or in flight.
    assert_eq!(stats.completed, successes.load(Ordering::Relaxed), "completed-count mismatch");
    assert_eq!(stats.cancelled, dropped.load(Ordering::Relaxed), "cancelled-count mismatch");
    assert_eq!(
        stats.completed + stats.cancelled,
        clients * QUERIES_PER_CLIENT,
        "every query must resolve as completed or dropped"
    );
    assert_eq!(srv.active(), 0, "admission slots leaked");
    assert_eq!(srv.queued(), 0, "admission queue not drained");
    assert_eq!(srv.gate().inflight(), 0, "morsel-gate permits leaked");
    if mode == Mode::Deadline && clients >= 16 * MAX_CONCURRENT {
        assert!(
            stats.rejected + stats.cancelled > 0,
            "far past capacity the deadline discipline must shed, not queue without bound"
        );
    }

    Round {
        mode,
        clients,
        goodput: stats.completed as f64 / elapsed.as_secs_f64(),
        p99: stats.p99,
        joules_per_completed: if stats.completed > 0 {
            stats.energy.joules() / stats.completed as f64
        } else {
            0.0
        },
        completed: stats.completed,
        dropped: stats.cancelled,
        rejected: stats.rejected,
        shed: stats.shed,
        retries: retries.load(Ordering::Relaxed),
    }
}

/// Runs the experiment.
pub fn run() -> Report {
    let mut r = Report::new(
        "E24",
        "Overload degradation: client sweep past a 2-slot server, naive vs backoff vs deadline",
        "bounded admission + retry_after hints + deadline shedding resolve overload with \
         exact answers, a stable per-query energy bill, and zero permit leaks",
    );
    r.headers([
        "mode",
        "clients",
        "goodput",
        "p99",
        "E/completed",
        "ok",
        "drop",
        "reject",
        "shed",
        "retries",
    ]);
    let db = fresh();

    // Warmup, then pin the thread baseline: overload handling must not
    // buy progress with hidden threads.
    {
        let srv = QueryServer::new(Arc::clone(&db), QueryServerConfig::default());
        for q in 0..2 {
            let served = srv.execute(&query(q)).unwrap();
            check_answer(q, served.result.rows.row(0).unwrap()[0].as_float().unwrap());
        }
    }
    let spawned_baseline = db.pool().threads_spawned();

    let mut rounds: Vec<Round> = Vec::new();
    for mode in [Mode::Naive, Mode::Backoff, Mode::Deadline] {
        for clients in client_counts() {
            rounds.push(run_round(&db, mode, clients));
            assert_eq!(db.pool().threads_spawned(), spawned_baseline, "pool spawned threads");
        }
    }

    for round in &rounds {
        r.row([
            round.mode.name().to_string(),
            format!("{}", round.clients),
            fmt_rate(round.goodput),
            fmt_dur(round.p99),
            fmt_joules(round.joules_per_completed),
            format!("{}", round.completed),
            format!("{}", round.dropped),
            format!("{}", round.rejected),
            format!("{}", round.shed),
            format!("{}", round.retries),
        ]);
    }

    let max_clients = client_counts().into_iter().max().unwrap_or(4);
    let at = |mode: Mode, clients: usize| rounds.iter().find(|r| r.mode == mode && r.clients == clients);
    if let (Some(naive), Some(backoff)) = (at(Mode::Naive, max_clients), at(Mode::Backoff, max_clients)) {
        r.note(format!(
            "{} clients on {MAX_CONCURRENT} slots: naive spin-retry took {} retries for {} \
             goodput; backoff (retry_after-floored) took {} retries for {} — which discipline \
             wastes less depends on how loaded the host is, but both drain to zero leaks",
            max_clients,
            naive.retries,
            fmt_rate(naive.goodput),
            backoff.retries,
            fmt_rate(backoff.goodput),
        ));
    }
    if let Some(dl) = at(Mode::Deadline, max_clients) {
        r.note(format!(
            "deadline discipline at {} clients: {} completed, {} dropped by expiry, {} \
             rejected, {} shed from the queue — overload resolves by shedding the cheapest \
             work, and the gates drained to zero after every round (no permit leak)",
            max_clients, dl.completed, dl.dropped, dl.rejected, dl.shed
        ));
    }
    r.note(format!(
        "pool threads spawned: {spawned_baseline} (= {WORKERS} workers), constant across the \
         sweep — rejection, retry, cancellation and shedding never create threads"
    ));

    write_json(&rounds);
    r.note("machine-readable results written to BENCH_e24.json");
    r
}

/// Emits the sweep as `BENCH_e24.json` (hand-rolled: no JSON dependency).
fn write_json(rounds: &[Round]) {
    let mut s = String::from("{\n  \"experiment\": \"e24_overload_degradation\",\n  \"rounds\": [\n");
    for (i, round) in rounds.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"mode\": \"{}\", \"clients\": {}, \"goodput_qps\": {:.2}, \"p99_us\": {:.1}, \
             \"joules_per_completed\": {:.6}, \"completed\": {}, \"dropped\": {}, \
             \"rejected\": {}, \"shed\": {}, \"retries\": {}}}{}\n",
            round.mode.name(),
            round.clients,
            round.goodput,
            round.p99.as_secs_f64() * 1e6,
            round.joules_per_completed,
            round.completed,
            round.dropped,
            round.rejected,
            round.shed,
            round.retries,
            if i + 1 < rounds.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write("BENCH_e24.json", s) {
        eprintln!("warning: could not write BENCH_e24.json: {e}");
    }
}
