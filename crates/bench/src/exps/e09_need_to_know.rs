//! E9 — the Need-to-Know principle: maintain an index only when someone
//! reads it (§IV.A).

use crate::report::{fmt_dur, time_it, Report};
use haecdb::index::{IndexMaintenance, SecondaryIndex};

fn drive(
    maintenance: IndexMaintenance,
    updates: u64,
    reads: u64,
) -> (u64, std::time::Duration, std::time::Duration) {
    let mut idx = SecondaryIndex::new(maintenance);
    let read_every = if reads == 0 { u64::MAX } else { updates / reads.max(1) };
    let mut first_read_latency = std::time::Duration::ZERO;
    let (_, total) = time_it(|| {
        let mut first = true;
        for i in 0..updates {
            idx.on_insert((i % 1024) as i64, i as u32);
            if read_every != u64::MAX && i > 0 && i % read_every == 0 {
                let (_, d) = time_it(|| idx.lookup((i % 1024) as i64));
                if first {
                    first_read_latency = d;
                    first = false;
                }
            }
        }
    });
    (idx.stats().maintenance_ops, total, first_read_latency)
}

/// Runs the experiment.
pub fn run() -> Report {
    let mut r = Report::new(
        "E9",
        "index maintenance: eager (ubiquity) vs need-to-know",
        "update the index only if an application indicated interest in reading it (§IV.A)",
    );
    r.headers(["readers / 1M writes", "discipline", "maintenance ops", "total time", "1st-read stall"]);

    let updates = 1_000_000u64;
    for reads in [0u64, 1, 100, 10_000] {
        for m in [IndexMaintenance::Eager, IndexMaintenance::NeedToKnow] {
            let (ops, total, stall) = drive(m, updates, reads);
            r.row([
                format!("{reads}"),
                format!("{m}"),
                format!("{ops}"),
                fmt_dur(total),
                if reads == 0 { "-".into() } else { fmt_dur(stall) },
            ]);
        }
    }
    // Write-only sanity: need-to-know must do zero maintenance.
    let (ops, _, _) = drive(IndexMaintenance::NeedToKnow, 10_000, 0);
    assert_eq!(ops, 0, "write-only workload must not maintain the index");
    r.note("with no readers, need-to-know eliminates all maintenance work (eager pays 1M ops)");
    r.note("the first reader pays a catch-up stall proportional to the backlog — the principle's price");
    r.note("with frequent readers the disciplines converge: backlog never grows");
    r
}
