//! E3 — ship intermediates compressed or raw, "decided on a
//! case-by-case basis" (§IV).

use crate::report::Report;
use haec_energy::units::ByteCount;
use haec_net::shipping::{decide, time_crossover_bandwidth, CompressorSpec, Objective};
use haec_net::topology::{LinkClass, LinkSpec};

/// Runs the experiment.
pub fn run() -> Report {
    let mut r = Report::new(
        "E3",
        "compressed vs raw shipping across link classes",
        "codec cost vs wire savings flips per link; time- and energy-optimal choices can differ (§IV)",
    );
    r.headers(["link", "payload", "codec", "raw", "compressed", "min-time", "min-energy"]);

    let payload = ByteCount::from_mib(256);
    let light = CompressorSpec::lightweight(4.0);
    let heavy = CompressorSpec::heavyweight(8.0);
    let links = [
        (LinkClass::IntraBoard, "intra-board"),
        (LinkClass::Optical, "optical"),
        (LinkClass::Ethernet10G, "10GbE"),
        (LinkClass::Wireless, "wireless"),
        (LinkClass::Ethernet1G, "1GbE"),
    ];
    let mut flips = 0;
    let mut prev: Option<bool> = None;
    for (class, name) in links {
        let spec = LinkSpec::default_for(class);
        for (codec, cname) in [(&light, "light 4x"), (&heavy, "heavy 8x")] {
            let t = decide(payload, codec, &spec, Objective::MinTime);
            let e = decide(payload, codec, &spec, Objective::MinEnergy);
            r.row([
                name.to_string(),
                format!("{payload}"),
                cname.to_string(),
                format!("{:.1} ms / {:.2} J", t.raw.time.as_secs_f64() * 1e3, t.raw.energy.joules()),
                format!(
                    "{:.1} ms / {:.2} J",
                    t.compressed.time.as_secs_f64() * 1e3,
                    t.compressed.energy.joules()
                ),
                if t.compress { "compress" } else { "raw" }.to_string(),
                if e.compress { "compress" } else { "raw" }.to_string(),
            ]);
            if cname == "light 4x" {
                if let Some(p) = prev {
                    if p != t.compress {
                        flips += 1;
                    }
                }
                prev = Some(t.compress);
            }
        }
    }
    assert!(flips >= 1, "decision never flipped across link classes");
    if let Some(bw) = time_crossover_bandwidth(&light) {
        r.note(format!("light-codec time crossover at ~{:.2} GB/s link bandwidth", bw / 1e9));
    }
    if let Some(bw) = time_crossover_bandwidth(&heavy) {
        r.note(format!("heavy-codec time crossover at ~{:.3} GB/s link bandwidth", bw / 1e9));
    }
    r.note("fast links ship raw, slow links compress — matching the paper's case-by-case argument");
    r
}
